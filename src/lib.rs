//! Cloud9-RS: parallel symbolic execution for automated software testing.
//!
//! This is the facade crate of the Cloud9-RS workspace, a from-scratch Rust
//! reproduction of *"Parallel Symbolic Execution for Automated Real-World
//! Software Testing"* (Bucur, Ureche, Zamfir, Candea — EuroSys 2011). It
//! re-exports the public API of the underlying crates:
//!
//! * [`expr`] / [`solver`] — symbolic bit-vector expressions and the
//!   constraint solver,
//! * [`ir`] — the program representation and builder,
//! * [`vm`] — the single-node symbolic execution engine (the KLEE stand-in),
//! * [`posix`] — the symbolic POSIX environment model and testing API,
//! * [`net`] — the transport-agnostic cluster runtime: wire messages, job
//!   encoding, and the in-process and TCP transports,
//! * [`core`] — the cluster-parallel engine (workers, job transfer, load
//!   balancing) that is the paper's main contribution,
//! * [`targets`] — the programs under test used by the evaluation,
//! * [`trace`] — the observability layer: leveled structured logging,
//!   spans, metrics histograms, and the machine-readable sinks behind
//!   `--trace-out` / `--trace-chrome` / `--report-out`.
//!
//! The `c9-worker` and `c9-coordinator` binaries of this crate run a
//! cluster as N OS processes over TCP — the paper's deployment; see
//! `README.md` ("Running a multi-process cluster").
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure. Runnable examples live in `examples/`.

pub use c9_core as core;
pub use c9_expr as expr;
pub use c9_ir as ir;
pub use c9_net as net;
pub use c9_posix as posix;
pub use c9_solver as solver;
pub use c9_targets as targets;
pub use c9_trace as trace;
pub use c9_vm as vm;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use c9_core::{Cluster, ClusterConfig, ClusterRunResult, Worker, WorkerConfig, WorkerId};
    pub use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Width};
    pub use c9_net::{InProcTransport, TcpTransport, Transport};
    pub use c9_posix::{nr, PosixConfig, PosixEnvironment};
    pub use c9_solver::{ConstraintSet, SatResult, Solver};
    pub use c9_vm::{
        sysno, DfsSearcher, Engine, EngineConfig, InterleavedSearcher, NullEnvironment,
        TerminationReason, TestCase,
    };
}
