//! `c9-worker`: one Cloud9 worker per OS process.
//!
//! Hosts a single symbolic-execution worker behind a TCP listener, exactly
//! as in the paper's deployment (§3.3). Two ways to meet the coordinator:
//!
//! * `--listen HOST:PORT` (static): wait for a coordinator to dial in and
//!   ship a run spec;
//! * `--join HOST:PORT` (elastic): dial a listening coordinator and attach
//!   to its — possibly already running — cluster. If the connection is
//!   lost, the daemon re-joins with its previous identity so the
//!   coordinator can fence off the stale incarnation; when a run finishes
//!   and `--once` was given, it sends a graceful `Leave` before exiting.
//!
//! Either way the worker then explores, exchanges job batches directly with
//! its peer workers, and reports status (with frontier snapshots for the
//! coordinator's crash-recovery ledger) and final results back to the
//! coordinator. The daemon keeps serving runs until killed.
//!
//! ```text
//! c9-worker --listen 127.0.0.1:9101
//! c9-worker --join 127.0.0.1:9100
//! ```

use c9_net::{send_leave, EnvSpec, TcpWorkerHost, WorkerEndpoint, WorkerId};
use c9_posix::PosixEnvironment;
use c9_vm::{Environment, NullEnvironment, ReplayCacheConfig};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    join: Option<String>,
    once: bool,
    quiet: bool,
    threads: Option<usize>,
    replay_cache: Option<ReplayCacheConfig>,
}

fn usage() -> ! {
    eprintln!(
        "usage: c9-worker [--listen HOST:PORT] [--join HOST:PORT] [--once] [--quiet]\n\
         \n\
         options:\n\
         \x20 --listen HOST:PORT  address to listen on (default 127.0.0.1:0)\n\
         \x20 --join HOST:PORT    attach to a listening coordinator (elastic membership)\n\
         \x20 --once              exit after serving one run instead of looping\n\
         \x20 --quiet             suppress per-run log lines\n\
         \x20 --threads N         executor threads (overrides the coordinator's run spec)\n\
         \x20 --replay-cache N[:BYTES]  prefix-anchor replay cache: keep up to N anchor\n\
         \x20                     snapshots (0 = replay every job from the root) within\n\
         \x20                     an optional byte budget; overrides the run spec"
    );
    std::process::exit(2);
}

/// Parses a `--replay-cache` argument: `CAPACITY` or `CAPACITY:MAX_BYTES`.
fn parse_replay_cache(arg: &str) -> Option<ReplayCacheConfig> {
    let mut parts = arg.splitn(2, ':');
    let capacity = parts.next()?.parse::<usize>().ok()?;
    let max_bytes = match parts.next() {
        Some(bytes) => bytes.parse::<u64>().ok()?,
        None => ReplayCacheConfig::default().max_bytes,
    };
    Some(ReplayCacheConfig {
        capacity,
        max_bytes,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: String::from("127.0.0.1:0"),
        join: None,
        once: false,
        quiet: false,
        threads: None,
        replay_cache: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => args.listen = it.next().unwrap_or_else(|| usage()),
            "--join" => args.join = Some(it.next().unwrap_or_else(|| usage())),
            "--once" => args.once = true,
            "--quiet" => args.quiet = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .map(|n| n.max(1))
                    .or_else(|| usage());
            }
            "--replay-cache" => {
                args.replay_cache = it
                    .next()
                    .as_deref()
                    .and_then(parse_replay_cache)
                    .map(Some)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn environment_for(spec: EnvSpec) -> Arc<dyn Environment> {
    match spec {
        EnvSpec::Null => Arc::new(NullEnvironment),
        EnvSpec::Posix => Arc::new(PosixEnvironment::new()),
    }
}

/// The elastic mode: join (and re-join) a listening coordinator.
fn run_elastic(args: &Args, coordinator: &str) -> ! {
    let mut previous: Option<(WorkerId, u64)> = None;
    loop {
        let host = match TcpWorkerHost::bind(&args.listen) {
            Ok(host) => host,
            Err(e) => {
                eprintln!("c9-worker: cannot listen on {}: {e}", args.listen);
                std::process::exit(1);
            }
        };
        if !args.quiet {
            eprintln!("c9-worker: joining coordinator at {coordinator}");
        }
        let mut endpoint =
            match host.join_coordinator(coordinator, previous, Duration::from_secs(30)) {
                Ok(endpoint) => endpoint,
                Err(e) => {
                    eprintln!("c9-worker: join failed: {e}; retrying");
                    std::thread::sleep(Duration::from_millis(500));
                    continue;
                }
            };
        previous = Some((endpoint.id(), endpoint.worker_epoch()));
        if !args.quiet {
            eprintln!(
                "c9-worker[{}]: joined (epoch {}, assigned strategy {})",
                endpoint.id(),
                endpoint.worker_epoch(),
                endpoint.assigned_strategy(),
            );
        }
        loop {
            // Wait in short slices, probing the coordinator connection in
            // between: an idle daemon must notice a dead coordinator and
            // re-join promptly, not block on a silent socket.
            let spec = loop {
                if let Some(spec) = endpoint.wait_start(Duration::from_secs(2)) {
                    break Some(spec);
                }
                if !endpoint.probe_coordinator() {
                    break None;
                }
            };
            let Some(spec) = spec else {
                eprintln!("c9-worker: connection lost while waiting for a run; re-joining");
                break;
            };
            let env = environment_for(spec.env);
            if !args.quiet {
                eprintln!(
                    "c9-worker[{}]: starting run (strategy {:?})",
                    endpoint.id(),
                    spec.strategy,
                );
            }
            c9_core::run_worker_from_spec_with(
                &mut endpoint,
                spec,
                env,
                args.threads,
                args.replay_cache,
            );
            if !args.quiet {
                eprintln!("c9-worker[{}]: run complete", endpoint.id());
            }
            if args.once {
                let _ = send_leave(&endpoint);
                std::process::exit(0);
            }
        }
        // The endpoint (and its listener) is dropped here; the next
        // iteration binds a fresh listener and re-joins as a new
        // incarnation, naming the previous one so it gets fenced off.
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() {
    let args = parse_args();
    if let Some(coordinator) = args.join.clone() {
        run_elastic(&args, &coordinator);
    }

    let host = match TcpWorkerHost::bind(&args.listen) {
        Ok(host) => host,
        Err(e) => {
            eprintln!("c9-worker: cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    // Scripts (and the multi-process test) parse this line to learn the
    // bound port when `--listen` used port 0.
    println!("c9-worker listening on {}", host.local_addr());
    std::io::stdout().flush().ok();

    // A daemon waits for its coordinator indefinitely.
    let accept_timeout = Duration::from_secs(60 * 60 * 24 * 365);
    let Some(mut endpoint) = host.accept_coordinator(accept_timeout) else {
        eprintln!("c9-worker: no coordinator connected");
        std::process::exit(1);
    };

    loop {
        let Some(spec) = endpoint.wait_start(accept_timeout) else {
            eprintln!("c9-worker: connection lost while waiting for a run");
            std::process::exit(1);
        };
        let env = environment_for(spec.env);
        if !args.quiet {
            eprintln!(
                "c9-worker[{}]: starting run ({} cluster members, strategy {:?})",
                endpoint.id(),
                endpoint.num_workers(),
                spec.strategy,
            );
        }
        c9_core::run_worker_from_spec_with(
            &mut endpoint,
            spec,
            env,
            args.threads,
            args.replay_cache,
        );
        if !args.quiet {
            eprintln!("c9-worker[{}]: run complete", endpoint.id());
        }
        if args.once {
            return;
        }
    }
}
