//! `c9-worker`: one Cloud9 worker per OS process.
//!
//! Hosts a single symbolic-execution worker behind a TCP listener, exactly
//! as in the paper's deployment (§3.3). Two ways to meet the coordinator:
//!
//! * `--listen HOST:PORT` (static): wait for a coordinator to dial in and
//!   ship a run spec;
//! * `--join HOST:PORT` (elastic): dial a listening coordinator and attach
//!   to its — possibly already running — cluster. If the connection is
//!   lost, the daemon re-joins with its previous identity so the
//!   coordinator can fence off the stale incarnation; when a run finishes
//!   and `--once` was given, it sends a graceful `Leave` before exiting.
//!
//! Either way the worker then explores, exchanges job batches directly with
//! its peer workers, and reports status (with frontier snapshots for the
//! coordinator's crash-recovery ledger) and final results back to the
//! coordinator. The daemon keeps serving runs until killed.
//!
//! ```text
//! c9-worker --listen 127.0.0.1:9101
//! c9-worker --join 127.0.0.1:9100
//! ```

use c9_net::{send_leave, EnvSpec, TcpWorkerHost, WorkerEndpoint, WorkerId};
use c9_posix::PosixEnvironment;
use c9_trace::{error, info, warn, Level};
use c9_vm::{Environment, NullEnvironment, ReplayCacheConfig};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    join: Option<String>,
    once: bool,
    threads: Option<usize>,
    replay_cache: Option<ReplayCacheConfig>,
    log_level: Option<Level>,
    quiet: bool,
    trace_out: Option<PathBuf>,
    trace_chrome: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: c9-worker [--listen HOST:PORT] [--join HOST:PORT] [--once] [--quiet]\n\
         \n\
         options:\n\
         \x20 --listen HOST:PORT  address to listen on (default 127.0.0.1:0)\n\
         \x20 --join HOST:PORT    attach to a listening coordinator (elastic membership)\n\
         \x20 --once              exit after serving one run instead of looping\n\
         \x20 --threads N         executor threads (overrides the coordinator's run spec)\n\
         \x20 --replay-cache N[:BYTES]  prefix-anchor replay cache: keep up to N anchor\n\
         \x20                     snapshots (0 = replay every job from the root) within\n\
         \x20                     an optional byte budget; overrides the run spec\n\
         \n\
         observability:\n\
         \x20 --log-level LEVEL   stderr log level: error|warn|info|debug|trace\n\
         \x20                     (default: C9_LOG or info)\n\
         \x20 --quiet             shorthand for --log-level error\n\
         \x20 --trace-out FILE    append structured events to FILE as JSON lines\n\
         \x20 --trace-chrome FILE write a Chrome-trace span timeline after each run"
    );
    std::process::exit(2);
}

/// Parses a `--replay-cache` argument: `CAPACITY` or `CAPACITY:MAX_BYTES`.
fn parse_replay_cache(arg: &str) -> Option<ReplayCacheConfig> {
    let mut parts = arg.splitn(2, ':');
    let capacity = parts.next()?.parse::<usize>().ok()?;
    let max_bytes = match parts.next() {
        Some(bytes) => bytes.parse::<u64>().ok()?,
        None => ReplayCacheConfig::default().max_bytes,
    };
    Some(ReplayCacheConfig {
        capacity,
        max_bytes,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: String::from("127.0.0.1:0"),
        join: None,
        once: false,
        threads: None,
        replay_cache: None,
        log_level: None,
        quiet: false,
        trace_out: None,
        trace_chrome: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => args.listen = it.next().unwrap_or_else(|| usage()),
            "--join" => args.join = Some(it.next().unwrap_or_else(|| usage())),
            "--once" => args.once = true,
            "--quiet" => args.quiet = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .map(|n| n.max(1))
                    .or_else(|| usage());
            }
            "--replay-cache" => {
                args.replay_cache = it
                    .next()
                    .as_deref()
                    .and_then(parse_replay_cache)
                    .map(Some)
                    .unwrap_or_else(|| usage());
            }
            "--log-level" => {
                let name = it.next().unwrap_or_else(|| usage());
                match name.parse::<Level>() {
                    Ok(level) => args.log_level = Some(level),
                    Err(e) => {
                        error!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--trace-chrome" => {
                args.trace_chrome = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                error!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn environment_for(spec: EnvSpec) -> Arc<dyn Environment> {
    match spec {
        EnvSpec::Null => Arc::new(NullEnvironment),
        EnvSpec::Posix => Arc::new(PosixEnvironment::new()),
    }
}

/// Drains the span buffers into `--trace-chrome` (latest run wins) and
/// flushes the JSONL event sink, so artifacts survive a later kill.
fn flush_trace(args: &Args) {
    if let Some(path) = &args.trace_chrome {
        let spans = c9_trace::drain_spans();
        if let Err(e) = c9_trace::write_chrome_trace(path, &spans, std::process::id() as u64) {
            error!("cannot write chrome trace {}: {e}", path.display());
        }
    }
    c9_trace::flush();
}

/// The elastic mode: join (and re-join) a listening coordinator.
fn run_elastic(args: &Args, coordinator: &str) -> ! {
    let mut previous: Option<(WorkerId, u64)> = None;
    loop {
        let host = match TcpWorkerHost::bind(&args.listen) {
            Ok(host) => host,
            Err(e) => {
                error!("cannot listen on {}: {e}", args.listen);
                std::process::exit(1);
            }
        };
        info!("joining coordinator at {coordinator}");
        let mut endpoint =
            match host.join_coordinator(coordinator, previous, Duration::from_secs(30)) {
                Ok(endpoint) => endpoint,
                Err(e) => {
                    warn!("join failed: {e}; retrying");
                    std::thread::sleep(Duration::from_millis(500));
                    continue;
                }
            };
        previous = Some((endpoint.id(), endpoint.worker_epoch()));
        info!(
            "worker {}: joined (epoch {}, assigned strategy {})",
            endpoint.id(),
            endpoint.worker_epoch(),
            endpoint.assigned_strategy(),
        );
        loop {
            // Wait in short slices, probing the coordinator connection in
            // between: an idle daemon must notice a dead coordinator and
            // re-join promptly, not block on a silent socket.
            let spec = loop {
                if let Some(spec) = endpoint.wait_start(Duration::from_secs(2)) {
                    break Some(spec);
                }
                if !endpoint.probe_coordinator() {
                    break None;
                }
            };
            let Some(spec) = spec else {
                warn!("connection lost while waiting for a run; re-joining");
                break;
            };
            let env = environment_for(spec.env);
            info!(
                "worker {}: starting run (strategy {:?})",
                endpoint.id(),
                spec.strategy,
            );
            c9_core::run_worker_from_spec_with(
                &mut endpoint,
                spec,
                env,
                args.threads,
                args.replay_cache,
            );
            info!("worker {}: run complete", endpoint.id());
            flush_trace(args);
            if args.once {
                let _ = send_leave(&endpoint);
                std::process::exit(0);
            }
        }
        // The endpoint (and its listener) is dropped here; the next
        // iteration binds a fresh listener and re-joins as a new
        // incarnation, naming the previous one so it gets fenced off.
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() {
    let args = parse_args();
    if args.quiet {
        c9_trace::set_level(Level::Error);
    } else if let Some(level) = args.log_level {
        c9_trace::set_level(level);
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = c9_trace::set_trace_out(path) {
            error!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if args.trace_chrome.is_some() {
        c9_trace::enable_spans(true);
    }
    if let Some(coordinator) = args.join.clone() {
        run_elastic(&args, &coordinator);
    }

    let host = match TcpWorkerHost::bind(&args.listen) {
        Ok(host) => host,
        Err(e) => {
            error!("cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    // Scripts (and the multi-process test) parse this line to learn the
    // bound port when `--listen` used port 0.
    println!("c9-worker listening on {}", host.local_addr());
    std::io::stdout().flush().ok();

    // A daemon waits for its coordinator indefinitely.
    let accept_timeout = Duration::from_secs(60 * 60 * 24 * 365);
    let Some(mut endpoint) = host.accept_coordinator(accept_timeout) else {
        error!("no coordinator connected");
        std::process::exit(1);
    };

    loop {
        let Some(spec) = endpoint.wait_start(accept_timeout) else {
            error!("connection lost while waiting for a run");
            std::process::exit(1);
        };
        let env = environment_for(spec.env);
        info!(
            "worker {}: starting run ({} cluster members, strategy {:?})",
            endpoint.id(),
            endpoint.num_workers(),
            spec.strategy,
        );
        c9_core::run_worker_from_spec_with(
            &mut endpoint,
            spec,
            env,
            args.threads,
            args.replay_cache,
        );
        info!("worker {}: run complete", endpoint.id());
        flush_trace(&args);
        if args.once {
            return;
        }
    }
}
