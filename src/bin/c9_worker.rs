//! `c9-worker`: one Cloud9 worker per OS process.
//!
//! Hosts a single symbolic-execution worker behind a TCP listener, exactly
//! as in the paper's deployment (§3.3): the worker waits for a coordinator
//! to connect and ship a run spec (program, environment, strategy), then
//! explores, exchanges job batches directly with its peer workers, and
//! reports status and final results back to the coordinator. The daemon
//! keeps serving runs until killed (pass `--once` to exit after one run).
//!
//! ```text
//! c9-worker --listen 127.0.0.1:9101
//! ```

use c9_net::{EnvSpec, TcpWorkerHost, WorkerEndpoint};
use c9_posix::PosixEnvironment;
use c9_vm::{Environment, NullEnvironment};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    once: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: c9-worker [--listen HOST:PORT] [--once] [--quiet]\n\
         \n\
         options:\n\
         \x20 --listen HOST:PORT  address to listen on (default 127.0.0.1:0)\n\
         \x20 --once              exit after serving one run instead of looping\n\
         \x20 --quiet             suppress per-run log lines"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: String::from("127.0.0.1:0"),
        once: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => args.listen = it.next().unwrap_or_else(|| usage()),
            "--once" => args.once = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let host = match TcpWorkerHost::bind(&args.listen) {
        Ok(host) => host,
        Err(e) => {
            eprintln!("c9-worker: cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    // Scripts (and the multi-process test) parse this line to learn the
    // bound port when `--listen` used port 0.
    println!("c9-worker listening on {}", host.local_addr());
    std::io::stdout().flush().ok();

    // A daemon waits for its coordinator indefinitely.
    let accept_timeout = Duration::from_secs(60 * 60 * 24 * 365);
    let Some(mut endpoint) = host.accept_coordinator(accept_timeout) else {
        eprintln!("c9-worker: no coordinator connected");
        std::process::exit(1);
    };

    loop {
        let Some(spec) = endpoint.wait_start(accept_timeout) else {
            eprintln!("c9-worker: connection lost while waiting for a run");
            std::process::exit(1);
        };
        let env: Arc<dyn Environment> = match spec.env {
            EnvSpec::Null => Arc::new(NullEnvironment),
            EnvSpec::Posix => Arc::new(PosixEnvironment::new()),
        };
        if !args.quiet {
            eprintln!(
                "c9-worker[{}]: starting run ({} cluster members, strategy {:?})",
                endpoint.id(),
                endpoint.num_workers(),
                spec.strategy,
            );
        }
        c9_core::run_worker_from_spec(&mut endpoint, spec, env);
        if !args.quiet {
            eprintln!("c9-worker[{}]: run complete", endpoint.id());
        }
        if args.once {
            return;
        }
    }
}
