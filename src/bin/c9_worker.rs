//! `c9-worker`: one Cloud9 worker daemon per OS process.
//!
//! Hosts symbolic-execution runs behind a TCP listener, exactly as in the
//! paper's deployment (§3.3). Two ways to meet the coordinator:
//!
//! * `--listen HOST:PORT` (static): wait for a coordinator to dial in and
//!   ship run specs. The daemon is *multi-tenant*: a `c9-coordinator
//!   --serve` run service can admit several concurrent runs, and the daemon
//!   time-slices execution quanta across all of them, keeping every run's
//!   tree, solver, and peers separate.
//! * `--join HOST:PORT` (elastic): dial a listening coordinator and attach
//!   to its — possibly already running — cluster. If the connection is
//!   lost, the daemon re-joins with its previous identity so the
//!   coordinator can fence off the stale incarnation; when a run finishes
//!   and `--once` was given, it sends a graceful `Leave` before exiting.
//!   Elastic mode serves one run at a time (joiners attach to a specific
//!   run's cluster).
//!
//! Either way the worker then explores, exchanges job batches directly with
//! its peer workers, and reports status (with frontier snapshots for the
//! coordinator's crash-recovery ledger) and final results back to the
//! coordinator. The daemon keeps serving runs until killed.
//!
//! ```text
//! c9-worker --listen 127.0.0.1:9101
//! c9-worker --join 127.0.0.1:9100
//! ```

use c9_core::config::{parse_worker_args, WorkerArgs};
use c9_core::WorkerService;
use c9_net::{send_leave, EnvSpec, TcpWorkerHost, WorkerEndpoint, WorkerId};
use c9_posix::PosixEnvironment;
use c9_trace::{error, info, warn, Level};
use c9_vm::{Environment, NullEnvironment};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: c9-worker [--listen HOST:PORT] [--join HOST:PORT] [--once] [--quiet]\n\
         \n\
         options:\n\
         \x20 --listen HOST:PORT  address to listen on (default 127.0.0.1:0)\n\
         \x20 --join HOST:PORT    attach to a listening coordinator (elastic membership)\n\
         \x20 --once              exit once the hosted runs drain instead of serving forever\n\
         \x20 --threads N         executor threads (overrides the coordinator's run spec)\n\
         \x20 --replay-cache N[:BYTES]  prefix-anchor replay cache: keep up to N anchor\n\
         \x20                     snapshots (0 = replay every job from the root) within\n\
         \x20                     an optional byte budget; overrides the run spec\n\
         \x20 --solver-cache CAP  solver query-cache capacity in entries (0 disables\n\
         \x20                     the cache); overrides the coordinator's run spec\n\
         \n\
         observability:\n\
         \x20 --log-level LEVEL   stderr log level: error|warn|info|debug|trace\n\
         \x20                     (default: C9_LOG or info)\n\
         \x20 --quiet             shorthand for --log-level error\n\
         \x20 --trace-out FILE    append structured events to FILE as JSON lines\n\
         \x20 --trace-chrome FILE write a Chrome-trace span timeline after each run"
    );
    std::process::exit(2);
}

fn environment_for(spec: EnvSpec) -> Arc<dyn Environment> {
    match spec {
        EnvSpec::Null => Arc::new(NullEnvironment),
        EnvSpec::Posix => Arc::new(PosixEnvironment::new()),
    }
}

/// Drains the span buffers into `--trace-chrome` (latest run wins) and
/// flushes the JSONL event sink, so artifacts survive a later kill.
fn flush_trace(args: &WorkerArgs) {
    if let Some(path) = &args.common.trace_chrome {
        let spans = c9_trace::drain_spans();
        if let Err(e) = c9_trace::write_chrome_trace(path, &spans, std::process::id() as u64) {
            error!("cannot write chrome trace {}: {e}", path.display());
        }
    }
    c9_trace::flush();
}

/// The elastic mode: join (and re-join) a listening coordinator. A joiner
/// attaches to one specific run's cluster, so this mode serves runs
/// one at a time.
fn run_elastic(args: &WorkerArgs, coordinator: &str) -> ! {
    let mut previous: Option<(WorkerId, u64)> = None;
    loop {
        let host = match TcpWorkerHost::bind(&args.listen) {
            Ok(host) => host,
            Err(e) => {
                error!("cannot listen on {}: {e}", args.listen);
                std::process::exit(1);
            }
        };
        info!("joining coordinator at {coordinator}");
        let mut endpoint =
            match host.join_coordinator(coordinator, previous, Duration::from_secs(30)) {
                Ok(endpoint) => endpoint,
                Err(e) => {
                    warn!("join failed: {e}; retrying");
                    std::thread::sleep(Duration::from_millis(500));
                    continue;
                }
            };
        previous = Some((endpoint.id(), endpoint.worker_epoch()));
        info!(
            "worker {}: joined (epoch {}, assigned strategy {})",
            endpoint.id(),
            endpoint.worker_epoch(),
            endpoint.assigned_strategy(),
        );
        loop {
            // Wait in short slices, probing the coordinator connection in
            // between: an idle daemon must notice a dead coordinator and
            // re-join promptly, not block on a silent socket.
            let spec = loop {
                if let Some(spec) = endpoint.wait_start(Duration::from_secs(2)) {
                    break Some(spec);
                }
                if !endpoint.probe_coordinator() {
                    break None;
                }
            };
            let Some(spec) = spec else {
                warn!("connection lost while waiting for a run; re-joining");
                break;
            };
            let env = environment_for(spec.env);
            info!(
                "worker {}: starting run {} (strategy {:?})",
                endpoint.id(),
                spec.run,
                spec.strategy,
            );
            c9_core::run_worker_from_spec_with(
                &mut endpoint,
                spec,
                env,
                args.common.threads,
                args.common.replay_cache,
                args.common.solver_cache,
            );
            info!("worker {}: run complete", endpoint.id());
            flush_trace(args);
            if args.once {
                let _ = send_leave(&endpoint);
                std::process::exit(0);
            }
        }
        // The endpoint (and its listener) is dropped here; the next
        // iteration binds a fresh listener and re-joins as a new
        // incarnation, naming the previous one so it gets fenced off.
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_worker_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            if !argv.iter().any(|a| a == "--help" || a == "-h") {
                error!("{e}");
            }
            usage();
        }
    };
    if args.common.quiet {
        c9_trace::set_level(Level::Error);
    } else if let Some(level) = args.common.log_level {
        c9_trace::set_level(level);
    }
    if let Some(path) = &args.common.trace_out {
        if let Err(e) = c9_trace::set_trace_out(path) {
            error!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if args.common.trace_chrome.is_some() {
        c9_trace::enable_spans(true);
    }
    if let Some(coordinator) = args.join.clone() {
        run_elastic(&args, &coordinator);
    }

    let host = match TcpWorkerHost::bind(&args.listen) {
        Ok(host) => host,
        Err(e) => {
            error!("cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    // Scripts (and the multi-process test) parse this line to learn the
    // bound port when `--listen` used port 0.
    println!("c9-worker listening on {}", host.local_addr());
    std::io::stdout().flush().ok();

    // A daemon waits for its coordinator indefinitely.
    let accept_timeout = Duration::from_secs(60 * 60 * 24 * 365);
    let Some(mut endpoint) = host.accept_coordinator(accept_timeout) else {
        error!("no coordinator connected");
        std::process::exit(1);
    };

    // The multi-run service loop: admit every run the coordinator starts,
    // time-slice quanta across the admitted runs, drain them as they are
    // stopped. Returns when the coordinator disconnects, tells the whole
    // daemon to stop, or (`--once`) the hosted runs drain.
    info!("worker {}: serving", endpoint.id());
    WorkerService::new(&mut endpoint, environment_for)
        .with_overrides(
            args.common.threads,
            args.common.replay_cache,
            args.common.solver_cache,
        )
        .exit_when_drained(args.once)
        .serve();
    info!("worker {}: service loop ended", endpoint.id());
    flush_trace(&args);
}
