//! `c9-coordinator`: drives a multi-process Cloud9 cluster.
//!
//! Workers are discovered two ways, combinable in one run: a static
//! `--workers host:port,...` list the coordinator dials, and/or a `--listen`
//! socket where workers attach themselves with a `Join` handshake (elastic
//! membership). The coordinator ships every member a run spec for the
//! selected target program, runs the load-balancing loop of §3.3
//! (queue-length classification, job transfer requests, global coverage),
//! detects dead workers by missed heartbeats and re-injects their pending
//! jobs into the survivors, periodically checkpoints the global frontier so
//! `--resume` can continue an interrupted run, and aggregates the final
//! per-worker reports into the same `ClusterRunResult` an in-process run
//! produces.
//!
//! ```text
//! # static membership
//! c9-worker --listen 127.0.0.1:9101 &
//! c9-worker --listen 127.0.0.1:9102 &
//! c9-coordinator --workers 127.0.0.1:9101,127.0.0.1:9102 --target memcached
//!
//! # elastic membership
//! c9-coordinator --listen 127.0.0.1:9100 --min-workers 2 --target memcached &
//! c9-worker --join 127.0.0.1:9100 &
//! c9-worker --join 127.0.0.1:9100 &
//! ```

use c9_core::{
    write_run_report, write_timeline_csv, Checkpoint, Cluster, ClusterConfig, CoordinatorRunOpts,
    EnvSpec, PortfolioConfig, ReplayCacheConfig, StrategyKind,
};
use c9_net::TcpCoordinatorEndpoint;
use c9_posix::PosixEnvironment;
use c9_targets::{named_workload, workload_names, WorkloadEnv};
use c9_trace::{error, info, Level};
use c9_vm::{Environment, NullEnvironment};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    workers: Vec<String>,
    listen: Option<String>,
    min_workers: Option<usize>,
    join_wait: Duration,
    target: String,
    time_limit: Option<Duration>,
    max_paths: Option<u64>,
    generate_tests: bool,
    connect_timeout: Duration,
    heartbeat_timeout: Option<Duration>,
    heartbeat_interval: Duration,
    snapshot_every: u32,
    checkpoint: Option<PathBuf>,
    checkpoint_interval: Duration,
    resume: Option<PathBuf>,
    quantum: Option<u64>,
    status_interval: Option<Duration>,
    balance_interval: Option<Duration>,
    strategy: Option<StrategyKind>,
    portfolio: Option<Vec<StrategyKind>>,
    portfolio_adapt: bool,
    threads: Option<usize>,
    replay_cache: Option<ReplayCacheConfig>,
    log_level: Option<Level>,
    quiet: bool,
    trace_out: Option<PathBuf>,
    trace_chrome: Option<PathBuf>,
    report_out: Option<PathBuf>,
    timeline_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: c9-coordinator [--workers HOST:PORT,...] [--listen HOST:PORT] --target NAME [options]\n\
         \n\
         membership:\n\
         \x20 --workers LIST         comma-separated worker addresses to dial\n\
         \x20 --listen HOST:PORT     accept elastic worker joins on this address\n\
         \x20 --min-workers N        wait for N members before starting (default: dialed count, or 1)\n\
         \x20 --join-wait SECS       how long to wait for --min-workers (default 60)\n\
         \x20 --connect-timeout S    seconds to keep retrying worker dials (default 15)\n\
         \n\
         fault tolerance:\n\
         \x20 --heartbeat-timeout S  declare a worker dead after S seconds of silence\n\
         \x20                        and re-inject its jobs (default: detector off)\n\
         \x20 --heartbeat-interval-ms MS  worker liveness heartbeat cadence (default 25)\n\
         \x20 --snapshot-every K     frontier snapshot on every K-th status report (default 1)\n\
         \x20 --checkpoint FILE      write the global frontier + stats here periodically\n\
         \x20 --checkpoint-interval S  periodic checkpoint cadence (default 1)\n\
         \x20 --resume FILE          continue the run recorded in FILE\n\
         \n\
         run:\n\
         \x20 --target NAME          program under test (required)\n\
         \x20 --time-limit SECS      stop after this much wall-clock time\n\
         \x20 --max-paths N          stop after N completed paths\n\
         \x20 --generate-tests       solve a concrete test case per path\n\
         \x20 --quantum N            instructions per worker quantum\n\
         \x20 --threads N            executor threads per worker (default: C9_THREADS or 1)\n\
         \x20 --replay-cache N[:BYTES]  per-worker prefix-anchor replay cache: keep up to\n\
         \x20                        N anchor snapshots (0 = replay every imported job\n\
         \x20                        from the root) within an optional byte budget\n\
         \x20 --status-interval-ms MS   worker status cadence\n\
         \x20 --balance-interval-ms MS  balancing cadence\n\
         \n\
         strategy portfolio:\n\
         \x20 --strategy NAME        run every worker with this strategy\n\
         \x20 --portfolio LIST       comma-separated strategy mix spread across the\n\
         \x20                        workers (e.g. dfs,random-path,cov-opt,cupa)\n\
         \x20 --portfolio-adapt      rebalance the mix by per-strategy coverage yield:\n\
         \x20                        starving strategies lose workers to productive ones\n\
         \n\
         observability:\n\
         \x20 --log-level LEVEL      stderr log level: error|warn|info|debug|trace\n\
         \x20                        (default: C9_LOG or info)\n\
         \x20 --quiet                shorthand for --log-level error\n\
         \x20 --trace-out FILE       append structured events to FILE as JSON lines\n\
         \x20 --trace-chrome FILE    write a Chrome-trace span timeline (Perfetto-loadable)\n\
         \x20 --report-out FILE      write the machine-readable run_report.json here\n\
         \x20 --timeline-out FILE    write the per-interval timeline as CSV\n\
         \n\
         targets: {}\n\
         strategies: {}",
        workload_names().join(", "),
        StrategyKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: Vec::new(),
        listen: None,
        min_workers: None,
        join_wait: Duration::from_secs(60),
        target: String::new(),
        time_limit: None,
        max_paths: None,
        generate_tests: false,
        connect_timeout: Duration::from_secs(15),
        heartbeat_timeout: None,
        heartbeat_interval: Duration::from_millis(25),
        snapshot_every: 1,
        checkpoint: None,
        checkpoint_interval: Duration::from_secs(1),
        resume: None,
        quantum: None,
        status_interval: None,
        balance_interval: None,
        strategy: None,
        portfolio: None,
        portfolio_adapt: false,
        threads: None,
        replay_cache: None,
        log_level: None,
        quiet: false,
        trace_out: None,
        trace_chrome: None,
        report_out: None,
        timeline_out: None,
    };
    let mut it = std::env::args().skip(1);
    fn next_f64(it: &mut impl Iterator<Item = String>) -> f64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    }
    fn next_u64(it: &mut impl Iterator<Item = String>) -> u64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let list = it.next().unwrap_or_else(|| usage());
                args.workers = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--listen" => args.listen = Some(it.next().unwrap_or_else(|| usage())),
            "--min-workers" => args.min_workers = Some(next_u64(&mut it) as usize),
            "--join-wait" => args.join_wait = Duration::from_secs_f64(next_f64(&mut it)),
            "--target" => args.target = it.next().unwrap_or_else(|| usage()),
            "--time-limit" => args.time_limit = Some(Duration::from_secs_f64(next_f64(&mut it))),
            "--max-paths" => args.max_paths = Some(next_u64(&mut it)),
            "--generate-tests" => args.generate_tests = true,
            "--connect-timeout" => {
                args.connect_timeout = Duration::from_secs(next_u64(&mut it));
            }
            "--heartbeat-timeout" => {
                args.heartbeat_timeout = Some(Duration::from_secs_f64(next_f64(&mut it)));
            }
            "--heartbeat-interval-ms" => {
                args.heartbeat_interval = Duration::from_millis(next_u64(&mut it));
            }
            "--snapshot-every" => args.snapshot_every = next_u64(&mut it) as u32,
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = Duration::from_secs_f64(next_f64(&mut it));
            }
            "--resume" => {
                args.resume = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--quantum" => args.quantum = Some(next_u64(&mut it)),
            "--threads" => args.threads = Some((next_u64(&mut it) as usize).max(1)),
            "--replay-cache" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let mut parts = spec.splitn(2, ':');
                let capacity = parts
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                let max_bytes = match parts.next() {
                    Some(bytes) => bytes.parse::<u64>().ok().unwrap_or_else(|| usage()),
                    None => ReplayCacheConfig::default().max_bytes,
                };
                args.replay_cache = Some(ReplayCacheConfig {
                    capacity,
                    max_bytes,
                });
            }
            "--status-interval-ms" => {
                args.status_interval = Some(Duration::from_millis(next_u64(&mut it)));
            }
            "--balance-interval-ms" => {
                args.balance_interval = Some(Duration::from_millis(next_u64(&mut it)));
            }
            "--strategy" => {
                let name = it.next().unwrap_or_else(|| usage());
                match name.parse::<StrategyKind>() {
                    Ok(kind) => args.strategy = Some(kind),
                    Err(e) => {
                        error!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--portfolio" => {
                let list = it.next().unwrap_or_else(|| usage());
                match PortfolioConfig::parse_mix(&list) {
                    Ok(mix) => args.portfolio = Some(mix),
                    Err(e) => {
                        error!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--portfolio-adapt" => args.portfolio_adapt = true,
            "--log-level" => {
                let name = it.next().unwrap_or_else(|| usage());
                match name.parse::<Level>() {
                    Ok(level) => args.log_level = Some(level),
                    Err(e) => {
                        error!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--quiet" => args.quiet = true,
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--trace-chrome" => {
                args.trace_chrome = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--report-out" => {
                args.report_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--timeline-out" => {
                args.timeline_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                error!("unknown argument: {other}");
                usage();
            }
        }
    }
    if (args.workers.is_empty() && args.listen.is_none()) || args.target.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    if args.quiet {
        c9_trace::set_level(Level::Error);
    } else if let Some(level) = args.log_level {
        c9_trace::set_level(level);
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = c9_trace::set_trace_out(path) {
            error!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if args.trace_chrome.is_some() {
        c9_trace::enable_spans(true);
    }
    let Some(workload) = named_workload(&args.target) else {
        error!(
            "unknown target {:?}; known targets: {}",
            args.target,
            workload_names().join(", ")
        );
        std::process::exit(2);
    };

    let resume = args
        .resume
        .as_ref()
        .map(|path| match Checkpoint::load(path) {
            Ok(checkpoint) => {
                if checkpoint.target != args.target {
                    error!(
                        "checkpoint is for target {:?}, not {:?}",
                        checkpoint.target, args.target
                    );
                    std::process::exit(2);
                }
                checkpoint
            }
            Err(e) => {
                error!("cannot load checkpoint {}: {e}", path.display());
                std::process::exit(1);
            }
        });

    let mut config = ClusterConfig {
        num_workers: args.workers.len().max(1),
        time_limit: args.time_limit,
        max_total_paths: args.max_paths,
        failure_timeout: args.heartbeat_timeout,
        heartbeat_interval: args.heartbeat_interval,
        snapshot_every: args.snapshot_every,
        checkpoint_path: args.checkpoint.clone(),
        checkpoint_interval: args.checkpoint_interval,
        resume,
        ..ClusterConfig::default()
    };
    config.worker.generate_test_cases = args.generate_tests;
    if let Some(strategy) = args.strategy {
        config.worker.strategy = strategy;
    }
    if let Some(mix) = &args.portfolio {
        config.portfolio = Some(PortfolioConfig {
            mix: mix.clone(),
            adapt: args.portfolio_adapt,
        });
    } else if args.portfolio_adapt {
        error!("--portfolio-adapt requires --portfolio");
        std::process::exit(2);
    }
    if let Some(quantum) = args.quantum {
        config.quantum = quantum;
    }
    if let Some(threads) = args.threads {
        config.worker.threads = threads;
    }
    if let Some(replay_cache) = args.replay_cache {
        config.worker.replay_cache = replay_cache;
    }
    if let Some(interval) = args.status_interval {
        config.status_interval = interval;
    }
    if let Some(interval) = args.balance_interval {
        config.balance_interval = interval;
    }

    let (env_spec, env): (EnvSpec, Arc<dyn Environment>) = match workload.env {
        WorkloadEnv::Null => (EnvSpec::Null, Arc::new(NullEnvironment)),
        WorkloadEnv::Posix => (EnvSpec::Posix, Arc::new(PosixEnvironment::new())),
    };

    let mut coordinator = if args.workers.is_empty() {
        TcpCoordinatorEndpoint::detached()
    } else {
        info!(
            "connecting to {} workers: {}",
            args.workers.len(),
            args.workers.join(", ")
        );
        match TcpCoordinatorEndpoint::connect(&args.workers, args.connect_timeout) {
            Ok(endpoint) => endpoint,
            Err(e) => {
                error!("{e}");
                std::process::exit(1);
            }
        }
    };
    if let Some(listen) = &args.listen {
        match coordinator.listen_on(listen) {
            Ok(addr) => {
                // Scripts (and the elastic tests) parse this line to learn
                // the bound port when `--listen` used port 0.
                println!("c9-coordinator listening on {addr}");
                use std::io::Write;
                std::io::stdout().flush().ok();
            }
            Err(e) => {
                error!("cannot listen on {listen}: {e}");
                std::process::exit(1);
            }
        }
    }

    let program = Arc::new(workload.program);
    let cluster = Cluster::new(program.clone(), env, config.clone());
    // A wall-clock epoch fences this run's frames off from stale messages
    // of earlier runs the worker daemons may have served.
    let run_epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    let opts = CoordinatorRunOpts {
        env: env_spec,
        run_epoch,
        initial_workers: args.workers.clone(),
        min_workers: args
            .min_workers
            .unwrap_or_else(|| args.workers.len().max(1)),
        join_wait: args.join_wait,
        target: args.target.clone(),
    };
    info!("run started ({})", workload.description);

    let result = cluster.run_coordinator(&mut coordinator, opts);
    let s = &result.summary;
    if let Some(path) = &args.report_out {
        if let Err(e) = write_run_report(path, s) {
            error!("cannot write run report {}: {e}", path.display());
        }
    }
    if let Some(path) = &args.timeline_out {
        if let Err(e) = write_timeline_csv(path, &s.timeline) {
            error!("cannot write timeline {}: {e}", path.display());
        }
    }
    if let Some(path) = &args.trace_chrome {
        let spans = c9_trace::drain_spans();
        if let Err(e) = c9_trace::write_chrome_trace(path, &spans, std::process::id() as u64) {
            error!("cannot write chrome trace {}: {e}", path.display());
        }
    }
    c9_trace::flush();
    println!("target:            {}", args.target);
    println!("workers:           {}", s.num_workers);
    println!("elapsed:           {:.2}s", s.elapsed.as_secs_f64());
    println!("total paths:       {}", s.paths_completed());
    println!("exhausted:         {}", s.exhausted);
    println!("goal reached:      {}", s.goal_reached);
    println!("coverage:          {:.1}%", 100.0 * s.coverage_ratio());
    println!("bugs found:        {}", s.bugs_found);
    println!("jobs transferred:  {}", s.jobs_transferred());
    println!("workers failed:    {}", s.workers_failed);
    println!("workers joined:    {}", s.workers_joined);
    println!("jobs reclaimed:    {}", s.jobs_reclaimed);
    if let Some(mix) = &args.portfolio {
        println!(
            "portfolio:         {} (adapt: {}, rebalances: {})",
            mix.iter().map(|k| k.name()).collect::<Vec<_>>().join(","),
            args.portfolio_adapt,
            s.strategy_rebalances,
        );
    }
    println!(
        "useful/replay:     {} / {}",
        s.useful_instructions(),
        s.replay_instructions()
    );
    println!(
        "replay saved:      {} instructions skipped via prefix anchors \
         ({:.1}% anchor hit-rate, {} divergences)",
        s.replay_saved_instructions(),
        100.0 * s.anchor_hit_rate(),
        s.replay_divergences(),
    );
    let solver = s.solver_stats();
    println!(
        "solver queries:    {} ({:.1}% cache hits, {} searches, {} independence slices)",
        solver.queries,
        100.0 * solver.cache_hit_rate(),
        solver.searches,
        solver.independence_slices,
    );
    for (i, w) in s.worker_stats.iter().enumerate() {
        println!(
            "  worker {i}: threads {:>2}  paths {:>6}  sent {:>5}  received {:>5}  useful {:>9}  \
             replay {:>9}  saved {:>9}  anchors {:>5.1}%  queries {:>8}  cache {:>5.1}%",
            w.threads,
            w.paths_completed,
            w.jobs_sent,
            w.jobs_received,
            w.useful_instructions,
            w.replay_instructions,
            w.replay_saved_instructions,
            100.0 * w.anchor_hit_rate(),
            w.solver.queries,
            100.0 * w.solver.cache_hit_rate(),
        );
    }
    // A run that lost workers is still successful when recovery kept the
    // exploration complete. Failure means the loop gave up early: no goal
    // reached and the time limit (if any) not responsible for the stop.
    let stopped_by_time_limit = args
        .time_limit
        .map(|limit| s.elapsed >= limit)
        .unwrap_or(false);
    if !s.goal_reached && !stopped_by_time_limit {
        error!("run ended without reaching its goal (cluster lost?)");
        c9_trace::flush();
        std::process::exit(1);
    }
}
