//! `c9-coordinator`: drives a multi-process Cloud9 cluster.
//!
//! Discovers workers from a `--workers host:port,...` list, ships every one
//! a run spec for the selected target program, runs the load-balancing loop
//! of §3.3 (queue-length classification, job transfer requests, global
//! coverage), and aggregates the final per-worker reports into the same
//! `ClusterRunResult` an in-process run produces.
//!
//! ```text
//! c9-worker --listen 127.0.0.1:9101 &
//! c9-worker --listen 127.0.0.1:9102 &
//! c9-coordinator --workers 127.0.0.1:9101,127.0.0.1:9102 --target memcached
//! ```

use c9_core::{Cluster, ClusterConfig, EnvSpec, TcpTransport, Transport};
use c9_posix::PosixEnvironment;
use c9_targets::{named_workload, workload_names, WorkloadEnv};
use c9_vm::{Environment, NullEnvironment};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    workers: Vec<String>,
    target: String,
    time_limit: Option<Duration>,
    max_paths: Option<u64>,
    generate_tests: bool,
    connect_timeout: Duration,
}

fn usage() -> ! {
    eprintln!(
        "usage: c9-coordinator --workers HOST:PORT,... --target NAME [options]\n\
         \n\
         options:\n\
         \x20 --workers LIST       comma-separated worker addresses (required)\n\
         \x20 --target NAME        program under test (required)\n\
         \x20 --time-limit SECS    stop after this much wall-clock time\n\
         \x20 --max-paths N        stop after N completed paths\n\
         \x20 --generate-tests     solve a concrete test case per path\n\
         \x20 --connect-timeout S  seconds to keep retrying worker dials (default 15)\n\
         \n\
         targets: {}",
        workload_names().join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: Vec::new(),
        target: String::new(),
        time_limit: None,
        max_paths: None,
        generate_tests: false,
        connect_timeout: Duration::from_secs(15),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let list = it.next().unwrap_or_else(|| usage());
                args.workers = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--target" => args.target = it.next().unwrap_or_else(|| usage()),
            "--time-limit" => {
                let secs: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                args.time_limit = Some(Duration::from_secs_f64(secs));
            }
            "--max-paths" => {
                args.max_paths = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--generate-tests" => args.generate_tests = true,
            "--connect-timeout" => {
                let secs: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                args.connect_timeout = Duration::from_secs(secs);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if args.workers.is_empty() || args.target.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let Some(workload) = named_workload(&args.target) else {
        eprintln!(
            "c9-coordinator: unknown target {:?}; known targets: {}",
            args.target,
            workload_names().join(", ")
        );
        std::process::exit(2);
    };

    let n = args.workers.len();
    let mut config = ClusterConfig {
        num_workers: n,
        time_limit: args.time_limit,
        max_total_paths: args.max_paths,
        ..ClusterConfig::default()
    };
    config.worker.generate_test_cases = args.generate_tests;

    let (env_spec, env): (EnvSpec, Arc<dyn Environment>) = match workload.env {
        WorkloadEnv::Null => (EnvSpec::Null, Arc::new(NullEnvironment)),
        WorkloadEnv::Posix => (EnvSpec::Posix, Arc::new(PosixEnvironment::new())),
    };

    eprintln!(
        "c9-coordinator: connecting to {n} workers: {}",
        args.workers.join(", ")
    );
    let endpoints =
        match TcpTransport::connect(args.workers.clone(), args.connect_timeout).establish(n) {
            Ok(endpoints) => endpoints,
            Err(e) => {
                eprintln!("c9-coordinator: {e}");
                std::process::exit(1);
            }
        };
    let mut coordinator = endpoints.coordinator;

    let program = Arc::new(workload.program);
    let cluster = Cluster::new(program.clone(), env, config.clone());
    // A wall-clock epoch fences this run's frames off from stale messages
    // of earlier runs the worker daemons may have served.
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    if let Err(e) = coordinator.broadcast_start(|w| config.run_spec(&program, env_spec, w, epoch)) {
        eprintln!("c9-coordinator: failed to start workers: {e}");
        std::process::exit(1);
    }
    eprintln!("c9-coordinator: run started ({})", workload.description);

    let result = cluster.run_coordinator(&mut coordinator);
    let s = &result.summary;
    println!("target:            {}", args.target);
    println!("workers:           {}", s.num_workers);
    println!("elapsed:           {:.2}s", s.elapsed.as_secs_f64());
    println!("total paths:       {}", s.paths_completed());
    println!("exhausted:         {}", s.exhausted);
    println!("goal reached:      {}", s.goal_reached);
    println!("coverage:          {:.1}%", 100.0 * s.coverage_ratio());
    println!("bugs found:        {}", s.bugs_found);
    println!("jobs transferred:  {}", s.jobs_transferred());
    println!(
        "useful/replay:     {} / {}",
        s.useful_instructions(),
        s.replay_instructions()
    );
    for (i, w) in s.worker_stats.iter().enumerate() {
        println!(
            "  worker {i}: paths {:>6}  sent {:>5}  received {:>5}  useful {:>9}  replay {:>9}",
            w.paths_completed,
            w.jobs_sent,
            w.jobs_received,
            w.useful_instructions,
            w.replay_instructions,
        );
    }
    if result.summary.worker_stats.len() < n {
        eprintln!(
            "c9-coordinator: warning: only {} of {n} final reports arrived",
            result.summary.worker_stats.len()
        );
        std::process::exit(1);
    }
}
