//! `c9-coordinator`: drives a multi-process Cloud9 cluster.
//!
//! Workers are discovered two ways, combinable in one run: a static
//! `--workers host:port,...` list the coordinator dials, and/or a `--listen`
//! socket where workers attach themselves with a `Join` handshake (elastic
//! membership). The coordinator ships every member a run spec for the
//! selected target program, runs the load-balancing loop of §3.3
//! (queue-length classification, job transfer requests, global coverage),
//! detects dead workers by missed heartbeats and re-injects their pending
//! jobs into the survivors, periodically checkpoints the global frontier so
//! `--resume` can continue an interrupted run, and aggregates the final
//! per-worker reports into the same `ClusterRunResult` an in-process run
//! produces.
//!
//! With `--serve HOST:PORT` the binary becomes a *run service* instead:
//! a registry of runs multiplexed over the same worker fleet, driven
//! through a newline-delimited JSON front door (submit/list/status/cancel/
//! preempt/resume/results/shutdown — see `c9_core::frontdoor` for the
//! protocol).
//!
//! ```text
//! # static membership, single run
//! c9-worker --listen 127.0.0.1:9101 &
//! c9-worker --listen 127.0.0.1:9102 &
//! c9-coordinator --workers 127.0.0.1:9101,127.0.0.1:9102 --target memcached
//!
//! # elastic membership
//! c9-coordinator --listen 127.0.0.1:9100 --min-workers 2 --target memcached &
//! c9-worker --join 127.0.0.1:9100 &
//! c9-worker --join 127.0.0.1:9100 &
//!
//! # run service: many targets, one fleet
//! c9-coordinator --workers 127.0.0.1:9101,127.0.0.1:9102 --serve 127.0.0.1:9000 &
//! printf '{"cmd":"submit","target":"memcached"}\n' | nc 127.0.0.1 9000
//! ```

use c9_core::config::{parse_coordinator_args, CoordinatorArgs};
use c9_core::frontdoor;
use c9_core::{
    write_run_report, write_timeline_csv, Checkpoint, Cluster, ClusterConfig, CoordinatorRunOpts,
    EnvSpec, FederationConfig, RunId, RunService, RunServiceConfig, RunSubmission,
    SolverBackendKind, StrategyKind, SubCoordinator,
};
use c9_net::{TcpCoordinatorEndpoint, TcpWorkerHost, WorkerEndpoint};
use c9_posix::PosixEnvironment;
use c9_targets::{named_workload, workload_names, WorkloadEnv};
use c9_trace::json::Json;
use c9_trace::{error, info, Level};
use c9_vm::{Environment, NullEnvironment};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: c9-coordinator [--workers HOST:PORT,...] [--listen HOST:PORT] --target NAME [options]\n\
         \x20      c9-coordinator [--workers ...] [--listen ...] --serve HOST:PORT [options]\n\
         \x20      c9-coordinator --sub ROOT:PORT [--workers ...] [--listen ...] [options]\n\
         \n\
         membership:\n\
         \x20 --workers LIST         comma-separated worker addresses to dial\n\
         \x20 --listen HOST:PORT     accept elastic worker joins on this address\n\
         \x20 --min-workers N        wait for N members before starting (default: dialed count, or 1)\n\
         \x20 --join-wait SECS       how long to wait for --min-workers (default 60)\n\
         \x20 --connect-timeout S    seconds to keep retrying worker dials (default 15)\n\
         \n\
         federation:\n\
         \x20 --sub ROOT:PORT        run as a federated sub-coordinator: join the root\n\
         \x20                        coordinator at ROOT:PORT as a worker and coordinate\n\
         \x20                        the local group (--workers/--listen) on its behalf;\n\
         \x20                        the root sees one worker per group\n\
         \n\
         run service:\n\
         \x20 --serve HOST:PORT      run the multi-tenant run service with its NDJSON\n\
         \x20                        front door on this address (instead of --target)\n\
         \x20 --max-runs N           concurrent run slots (default 2)\n\
         \x20 --report-dir DIR       write per-run run-<id>.json reports into DIR\n\
         \n\
         fault tolerance:\n\
         \x20 --heartbeat-timeout S  declare a worker dead after S seconds of silence\n\
         \x20                        and re-inject its jobs (default: detector off)\n\
         \x20 --heartbeat-interval-ms MS  worker liveness heartbeat cadence (default 25)\n\
         \x20 --snapshot-every K     frontier snapshot on every K-th status report (default 1)\n\
         \x20 --checkpoint FILE      write the global frontier + stats here periodically\n\
         \x20 --checkpoint-interval S  periodic checkpoint cadence (default 1)\n\
         \x20 --resume FILE          continue the run recorded in FILE\n\
         \n\
         run:\n\
         \x20 --target NAME          program under test (required without --serve)\n\
         \x20 --time-limit SECS      stop after this much wall-clock time\n\
         \x20 --max-paths N          stop after N completed paths\n\
         \x20 --generate-tests       solve a concrete test case per path\n\
         \x20 --quantum N            instructions per worker quantum\n\
         \x20 --threads N            executor threads per worker (default: C9_THREADS or 1)\n\
         \x20 --replay-cache N[:BYTES]  per-worker prefix-anchor replay cache: keep up to\n\
         \x20                        N anchor snapshots (0 = replay every imported job\n\
         \x20                        from the root) within an optional byte budget\n\
         \x20 --export-order ORDER   which candidates workers export on balancing\n\
         \x20                        transfers: shallowest (default) or deepest\n\
         \x20 --solver-cache CAP     per-worker solver query-cache capacity in entries\n\
         \x20                        (0 disables the cache)\n\
         \x20 --solver-backend KIND  solver strategy: canonical (default), bitblast, or\n\
         \x20                        race (bit-blast witness finder in front of the\n\
         \x20                        canonical search; identical path sets either way)\n\
         \x20 --cache-gossip on|off  cross-worker constraint-cache sharing: slices ride\n\
         \x20                        job batches and status reports, the coordinator\n\
         \x20                        rebroadcasts the cluster hot set (default on)\n\
         \x20 --status-interval-ms MS   worker status cadence\n\
         \x20 --balance-interval-ms MS  balancing cadence\n\
         \n\
         strategy portfolio:\n\
         \x20 --strategy NAME        run every worker with this strategy\n\
         \x20 --portfolio LIST       comma-separated strategy mix spread across the\n\
         \x20                        workers (e.g. dfs,random-path,cov-opt,cupa)\n\
         \x20 --portfolio-adapt      rebalance the mix by per-strategy coverage yield:\n\
         \x20                        starving strategies lose workers to productive ones\n\
         \n\
         observability:\n\
         \x20 --log-level LEVEL      stderr log level: error|warn|info|debug|trace\n\
         \x20                        (default: C9_LOG or info)\n\
         \x20 --quiet                shorthand for --log-level error\n\
         \x20 --trace-out FILE       append structured events to FILE as JSON lines\n\
         \x20 --trace-chrome FILE    write a Chrome-trace span timeline (Perfetto-loadable)\n\
         \x20 --report-out FILE      write the machine-readable run_report.json here\n\
         \x20 --timeline-out FILE    write the per-interval timeline as CSV\n\
         \n\
         targets: {}\n\
         strategies: {}",
        workload_names().join(", "),
        StrategyKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn env_for(env: WorkloadEnv) -> (EnvSpec, Arc<dyn Environment>) {
    match env {
        WorkloadEnv::Null => (EnvSpec::Null, Arc::new(NullEnvironment)),
        WorkloadEnv::Posix => (EnvSpec::Posix, Arc::new(PosixEnvironment::new())),
    }
}

fn connect(args: &CoordinatorArgs) -> TcpCoordinatorEndpoint {
    let mut coordinator = if args.workers.is_empty() {
        TcpCoordinatorEndpoint::detached()
    } else {
        info!(
            "connecting to {} workers: {}",
            args.workers.len(),
            args.workers.join(", ")
        );
        match TcpCoordinatorEndpoint::connect(&args.workers, args.connect_timeout) {
            Ok(endpoint) => endpoint,
            Err(e) => {
                error!("{e}");
                std::process::exit(1);
            }
        }
    };
    if let Some(listen) = &args.listen {
        match coordinator.listen_on(listen) {
            Ok(addr) => {
                // Scripts (and the elastic tests) parse this line to learn
                // the bound port when `--listen` used port 0.
                println!("c9-coordinator listening on {addr}");
                use std::io::Write;
                std::io::stdout().flush().ok();
            }
            Err(e) => {
                error!("cannot listen on {listen}: {e}");
                std::process::exit(1);
            }
        }
    }
    coordinator
}

/// Translates a front-door `submit` payload into a run: the named workload
/// plus optional per-run overrides on top of the daemon's flag defaults.
fn submission_from_json(cmd: &Json, defaults: &ClusterConfig) -> Result<RunSubmission, String> {
    let target = cmd
        .get("target")
        .and_then(Json::as_str)
        .ok_or_else(|| "submit needs a \"target\"".to_string())?;
    let workload = named_workload(target).ok_or_else(|| {
        format!(
            "unknown target {target:?}; known targets: {}",
            workload_names().join(", ")
        )
    })?;
    let mut config = defaults.clone();
    if let Some(secs) = cmd.get("time_limit_secs").and_then(Json::as_f64) {
        config.time_limit = Some(Duration::from_secs_f64(secs.max(0.0)));
    }
    if let Some(max_paths) = cmd.get("max_paths").and_then(Json::as_u64) {
        config.max_total_paths = Some(max_paths);
    }
    if let Some(target_ratio) = cmd.get("coverage_target").and_then(Json::as_f64) {
        config.coverage_target = Some(target_ratio);
    }
    if cmd.get("generate_tests").and_then(|v| match v {
        Json::Bool(b) => Some(*b),
        _ => None,
    }) == Some(true)
    {
        config.worker.generate_test_cases = true;
    }
    if let Some(capacity) = cmd.get("solver_cache").and_then(Json::as_u64) {
        config.worker.solver_cache = Some(capacity as usize);
    }
    if let Some(backend) = cmd.get("solver_backend").and_then(Json::as_str) {
        config.worker.solver_backend = backend
            .parse::<SolverBackendKind>()
            .map_err(|_| format!("unknown solver_backend {backend:?}"))?;
    }
    if let Some(Json::Bool(gossip)) = cmd.get("cache_gossip") {
        config.worker.cache_gossip = *gossip;
    }
    let (env_spec, _) = env_for(workload.env);
    Ok(RunSubmission {
        name: target.to_string(),
        program: Arc::new(workload.program),
        env: env_spec,
        config,
    })
}

/// The `--serve` mode: a run registry over the connected fleet, driven by
/// the NDJSON front door until a `shutdown` command arrives.
fn run_service(args: &CoordinatorArgs, serve_addr: &str) -> ! {
    let coordinator = connect(args);
    let listener = match std::net::TcpListener::bind(serve_addr) {
        Ok(listener) => listener,
        Err(e) => {
            error!("cannot listen on {serve_addr}: {e}");
            std::process::exit(1);
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| serve_addr.to_string());
    // Scripts parse this line to learn the bound port when port 0 was used.
    println!("c9-coordinator serving on {bound}");
    use std::io::Write;
    std::io::stdout().flush().ok();

    if let Some(dir) = &args.report_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            error!("cannot create report dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let mut service = RunService::new(
        coordinator,
        RunServiceConfig {
            max_concurrent: args.max_runs,
            report_dir: args.report_dir.clone(),
        },
    );
    for addr in &args.workers {
        service.add_worker(addr.clone());
    }
    let handle = service.handle();
    let defaults = args.cluster_config();
    let submit: frontdoor::SubmitFn = Box::new(move |cmd| submission_from_json(cmd, &defaults));
    std::thread::spawn(move || frontdoor::serve(listener, handle, submit));
    info!("run service up ({} static workers)", args.workers.len());
    let summary = service.run();
    println!("runs finished:     {}", summary.runs_finished);
    println!("service paths:     {}", summary.paths_completed);
    println!("service bugs:      {}", summary.bugs_found);
    println!(
        "service solver:    {} queries ({:.1}% cache hits, {:.1}% warm hits on {} imported entries)",
        summary.solver.queries,
        100.0 * summary.solver.cache_hit_rate(),
        100.0 * summary.solver.warm_hit_rate(),
        summary.solver.imported_cache_entries,
    );
    c9_trace::flush();
    // The connection thread that relayed the `shutdown` command is still
    // writing its `{"ok":true}` reply line; give it a moment before the
    // process exit tears the socket down under it.
    std::thread::sleep(Duration::from_millis(200));
    std::process::exit(0);
}

/// The `--sub ROOT:PORT` mode: a federated sub-coordinator. The group side
/// is wired exactly like a root's fleet (`--workers` dials, `--listen`
/// accepts elastic joins); the uplink side joins the root as an ordinary
/// worker over the unmodified wire protocol, so the root sees the whole
/// group as one member whose digests aggregate its members.
fn run_sub(args: &CoordinatorArgs, root_addr: &str) -> ! {
    let group = connect(args);
    info!("joining root coordinator at {root_addr}");
    let join_deadline = std::time::Instant::now() + args.connect_timeout;
    let mut uplink = loop {
        // `join_coordinator` consumes the host, so each attempt rebinds the
        // uplink socket; siblings dial the advertised address for
        // inter-group job batches.
        let host = match TcpWorkerHost::bind("127.0.0.1:0") {
            Ok(host) => host,
            Err(e) => {
                error!("cannot bind uplink socket: {e}");
                std::process::exit(1);
            }
        };
        match host.join_coordinator(root_addr, None, Duration::from_secs(30)) {
            Ok(endpoint) => break endpoint,
            Err(e) if std::time::Instant::now() < join_deadline => {
                info!("root at {root_addr} not ready ({e}); retrying");
                std::thread::sleep(Duration::from_millis(300));
            }
            Err(e) => {
                error!("cannot join root at {root_addr}: {e}");
                std::process::exit(1);
            }
        }
    };
    println!(
        "c9-coordinator sub joined {root_addr} as worker {}",
        uplink.id().index()
    );
    {
        use std::io::Write;
        std::io::stdout().flush().ok();
    }
    // Wait for the root to ship the run spec, probing its liveness the way
    // an elastic worker daemon does. Group members that join meanwhile
    // queue on the group endpoint and are admitted once the run starts.
    let spec = loop {
        if let Some(spec) = uplink.wait_start(Duration::from_secs(2)) {
            break spec;
        }
        if !uplink.probe_coordinator() {
            error!("root coordinator went away before the run started");
            std::process::exit(1);
        }
    };
    let config = args.cluster_config();
    let fed = FederationConfig {
        static_members: args.workers.clone(),
        min_members: args
            .min_workers
            .unwrap_or_else(|| args.workers.len().max(1)),
        join_wait: args.join_wait,
        failure_timeout: args.heartbeat_timeout,
        balance_interval: config.balance_interval,
        balancer: config.balancer,
        portfolio: config.portfolio.clone(),
        ..FederationConfig::default()
    };
    info!(
        "sub-coordinator up (run {}, {} static members, min {})",
        spec.run.0,
        args.workers.len(),
        fed.min_members
    );
    match SubCoordinator::new(uplink, group, fed).run_with_spec(spec) {
        Ok(summary) => {
            c9_trace::flush();
            println!("group workers:     {}", summary.workers);
            println!("workers failed:    {}", summary.workers_failed);
            println!("batches exported:  {}", summary.batches_exported);
            println!("batches imported:  {}", summary.batches_imported);
            println!("jobs reclaimed:    {}", summary.jobs_reclaimed);
            println!("digests sent:      {}", summary.digests_sent);
            std::process::exit(0);
        }
        Err(e) => {
            error!("sub-coordinator failed: {e}");
            c9_trace::flush();
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_coordinator_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            if !argv.iter().any(|a| a == "--help" || a == "-h") {
                error!("{e}");
            }
            usage();
        }
    };
    if args.common.quiet {
        c9_trace::set_level(Level::Error);
    } else if let Some(level) = args.common.log_level {
        c9_trace::set_level(level);
    }
    if let Some(path) = &args.common.trace_out {
        if let Err(e) = c9_trace::set_trace_out(path) {
            error!("cannot open {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if args.common.trace_chrome.is_some() {
        c9_trace::enable_spans(true);
    }

    if let Some(serve_addr) = args.serve.clone() {
        run_service(&args, &serve_addr);
    }
    if let Some(root_addr) = args.sub.clone() {
        run_sub(&args, &root_addr);
    }

    let Some(workload) = named_workload(&args.target) else {
        error!(
            "unknown target {:?}; known targets: {}",
            args.target,
            workload_names().join(", ")
        );
        std::process::exit(2);
    };

    let mut config = args.cluster_config();
    config.resume = args
        .resume
        .as_ref()
        .map(|path| match Checkpoint::load(path) {
            Ok(checkpoint) => {
                if checkpoint.target != args.target {
                    error!(
                        "checkpoint is for target {:?}, not {:?}",
                        checkpoint.target, args.target
                    );
                    std::process::exit(2);
                }
                checkpoint
            }
            Err(e) => {
                error!("cannot load checkpoint {}: {e}", path.display());
                std::process::exit(1);
            }
        });

    let (env_spec, env) = env_for(workload.env);
    let mut coordinator = connect(&args);

    let program = Arc::new(workload.program);
    let cluster = Cluster::new(program.clone(), env, config.clone());
    // A wall-clock run id fences this run's frames off from stale messages
    // of earlier runs the worker daemons may have served.
    let run = RunId(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            .max(1),
    );
    let opts = CoordinatorRunOpts {
        env: env_spec,
        run,
        initial_workers: args.workers.clone(),
        min_workers: args
            .min_workers
            .unwrap_or_else(|| args.workers.len().max(1)),
        join_wait: args.join_wait,
        target: args.target.clone(),
    };
    info!("run started ({})", workload.description);

    let result = cluster.run_coordinator(&mut coordinator, opts);
    let s = &result.summary;
    if let Some(path) = &args.report_out {
        if let Err(e) = write_run_report(path, run, s) {
            error!("cannot write run report {}: {e}", path.display());
        }
    }
    if let Some(path) = &args.timeline_out {
        if let Err(e) = write_timeline_csv(path, &s.timeline) {
            error!("cannot write timeline {}: {e}", path.display());
        }
    }
    if let Some(path) = &args.common.trace_chrome {
        let spans = c9_trace::drain_spans();
        if let Err(e) = c9_trace::write_chrome_trace(path, &spans, std::process::id() as u64) {
            error!("cannot write chrome trace {}: {e}", path.display());
        }
    }
    c9_trace::flush();
    println!("target:            {}", args.target);
    println!("workers:           {}", s.num_workers);
    println!("elapsed:           {:.2}s", s.elapsed.as_secs_f64());
    println!("total paths:       {}", s.paths_completed());
    println!("exhausted:         {}", s.exhausted);
    println!("goal reached:      {}", s.goal_reached);
    println!("coverage:          {:.1}%", 100.0 * s.coverage_ratio());
    println!("bugs found:        {}", s.bugs_found);
    println!("jobs transferred:  {}", s.jobs_transferred());
    println!("workers failed:    {}", s.workers_failed);
    println!("workers joined:    {}", s.workers_joined);
    println!("jobs reclaimed:    {}", s.jobs_reclaimed);
    if let Some(mix) = &args.portfolio {
        println!(
            "portfolio:         {} (adapt: {}, rebalances: {})",
            mix.iter().map(|k| k.name()).collect::<Vec<_>>().join(","),
            args.portfolio_adapt,
            s.strategy_rebalances,
        );
    }
    println!(
        "useful/replay:     {} / {}",
        s.useful_instructions(),
        s.replay_instructions()
    );
    println!(
        "replay saved:      {} instructions skipped via prefix anchors \
         ({:.1}% anchor hit-rate, {} divergences)",
        s.replay_saved_instructions(),
        100.0 * s.anchor_hit_rate(),
        s.replay_divergences(),
    );
    let solver = s.solver_stats();
    println!(
        "solver queries:    {} ({:.1}% cache hits, {} searches, {} independence slices)",
        solver.queries,
        100.0 * solver.cache_hit_rate(),
        solver.searches,
        solver.independence_slices,
    );
    let gossip_out: u64 = s.worker_stats.iter().map(|w| w.gossip_bytes_sent).sum();
    let gossip_in: u64 = s.worker_stats.iter().map(|w| w.gossip_bytes_received).sum();
    println!(
        "solver warm hits:  {} on {} imported cache entries ({:.1}% warm hit-rate, \
         gossip {} B out / {} B in)",
        solver.warm_hits,
        solver.imported_cache_entries,
        100.0 * solver.warm_hit_rate(),
        gossip_out,
        gossip_in,
    );
    for (i, w) in s.worker_stats.iter().enumerate() {
        println!(
            "  worker {i}: threads {:>2}  paths {:>6}  sent {:>5}  received {:>5}  useful {:>9}  \
             replay {:>9}  saved {:>9}  anchors {:>5.1}%  queries {:>8}  cache {:>5.1}%",
            w.threads,
            w.paths_completed,
            w.jobs_sent,
            w.jobs_received,
            w.useful_instructions,
            w.replay_instructions,
            w.replay_saved_instructions,
            100.0 * w.anchor_hit_rate(),
            w.solver.queries,
            100.0 * w.solver.cache_hit_rate(),
        );
    }
    // A run that lost workers is still successful when recovery kept the
    // exploration complete. Failure means the loop gave up early: no goal
    // reached and the time limit (if any) not responsible for the stop.
    let stopped_by_time_limit = args
        .time_limit
        .map(|limit| s.elapsed >= limit)
        .unwrap_or(false);
    if !s.goal_reached && !stopped_by_time_limit {
        error!("run ended without reaching its goal (cluster lost?)");
        c9_trace::flush();
        std::process::exit(1);
    }
}
