//! The scheduler facade: a [`Searcher`] wrapped for multi-threaded workers.
//!
//! A Cloud9 worker running `--threads N` steps up to `N` *disjoint* states
//! concurrently, one round (time slice) at a time. The round protocol is
//! single-threaded at the edges and parallel in the middle:
//!
//! 1. **Lease** — the dispatch thread asks the scheduler for up to `N`
//!    distinct states. Leasing removes the state from the underlying
//!    searcher, so no strategy can hand the same state to two threads.
//!    States still held from the previous round (the *sticky* set) are
//!    re-leased first: a state keeps running until it terminates, which
//!    preserves the classic one-state-per-quantum behaviour exactly when
//!    `N == 1`.
//! 2. **Step** — each leased state runs a slice on its own thread. The
//!    scheduler is not touched during this phase.
//! 3. **Merge** — the dispatch thread absorbs the round's outcomes:
//!    [`Scheduler::add`] for every forked sibling, [`Scheduler::release`]
//!    for leased states that are still active (they re-enter the searcher
//!    *and* the sticky set), and nothing for terminated states (a lease
//!    already detached them).
//!
//! Because every searcher call happens on the dispatch thread in a fixed
//! (slot-ordered) sequence, each strategy — DFS, random-path,
//! coverage-optimized, CUPA — remains deterministic per selection under a
//! fixed seed, regardless of how the slices interleaved in wall-clock time.

use crate::searcher::{Searcher, StateMeta};
use crate::state::StateId;
use std::collections::VecDeque;

/// Hands out disjoint states to executor threads round by round, and
/// absorbs forks and terminations back into the wrapped [`Searcher`].
pub struct Scheduler {
    searcher: Box<dyn Searcher>,
    /// States leased in a previous round and still active, in lease order;
    /// they are in the searcher between rounds and are re-leased first.
    sticky: VecDeque<StateId>,
}

impl Scheduler {
    /// Wraps a searcher.
    pub fn new(searcher: Box<dyn Searcher>) -> Scheduler {
        Scheduler {
            searcher,
            sticky: VecDeque::new(),
        }
    }

    /// Name of the wrapped strategy (for reports).
    pub fn strategy_name(&self) -> &'static str {
        self.searcher.name()
    }

    /// Registers a new runnable state (initial state, fork sibling, or
    /// materialized import). Callable from the merge phase only.
    pub fn add(&mut self, meta: StateMeta) {
        self.searcher.add(meta);
    }

    /// Unregisters a state that left the frontier outside the round
    /// protocol (exported to another worker); also forgets any stickiness.
    pub fn remove(&mut self, id: StateId) {
        self.searcher.remove(id);
        self.sticky.retain(|s| *s != id);
    }

    /// Leases the next state: sticky states first (in lease order), then
    /// whatever the strategy selects. The leased state is removed from the
    /// searcher, so consecutive leases within a round are always disjoint.
    /// Returns `None` when no registered state remains.
    pub fn lease(&mut self) -> Option<StateId> {
        if let Some(id) = self.sticky.pop_front() {
            self.searcher.remove(id);
            return Some(id);
        }
        let id = self.searcher.select()?;
        self.searcher.remove(id);
        Some(id)
    }

    /// Leases a specific state that was just registered (a freshly
    /// materialized job the dispatch loop wants to run immediately):
    /// detaching it from searcher and sticky set is exactly a removal.
    pub fn lease_specific(&mut self, id: StateId) {
        self.remove(id);
    }

    /// Returns a leased state that is still active at the end of its
    /// round: it re-enters the searcher and becomes sticky, so the next
    /// round continues it.
    pub fn release(&mut self, meta: StateMeta) {
        self.searcher.add(meta);
        self.sticky.push_back(meta.id);
    }

    /// Swaps the underlying searcher (a portfolio strategy reassignment),
    /// keeping the sticky set so in-flight continuations survive the swap.
    /// The caller re-registers every active state with [`Scheduler::add`]
    /// before the next round.
    pub fn replace_searcher(&mut self, searcher: Box<dyn Searcher>) {
        self.searcher = searcher;
    }

    /// Number of states currently registered in the searcher.
    pub fn len(&self) -> usize {
        self.searcher.len()
    }

    /// Whether no states are registered.
    pub fn is_empty(&self) -> bool {
        self.searcher.is_empty()
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("strategy", &self.searcher.name())
            .field("registered", &self.searcher.len())
            .field("sticky", &self.sticky)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::{build_searcher, StrategyKind};

    fn meta(id: u64, depth: usize) -> StateMeta {
        StateMeta {
            id: StateId(id),
            depth,
            new_coverage: 0,
            call_site: 0,
            query_cost: 0,
        }
    }

    #[test]
    fn leases_are_disjoint_for_every_strategy() {
        for kind in StrategyKind::ALL {
            let mut s = Scheduler::new(build_searcher(kind, 7));
            for id in 0..8 {
                s.add(meta(id, id as usize));
            }
            let mut leased = std::collections::BTreeSet::new();
            while let Some(id) = s.lease() {
                assert!(leased.insert(id), "{kind} leased {id:?} twice");
            }
            assert_eq!(leased.len(), 8, "{kind} lost states");
            assert!(s.is_empty());
        }
    }

    #[test]
    fn sticky_states_are_re_leased_first() {
        let mut s = Scheduler::new(build_searcher(StrategyKind::Dfs, 1));
        s.add(meta(1, 0));
        s.add(meta(2, 1));
        let first = s.lease().expect("state available");
        // Round ends, the state is still active.
        s.release(meta(first.0, 0));
        // The next round must continue the same state before consulting
        // the strategy.
        assert_eq!(s.lease(), Some(first));
    }

    #[test]
    fn removed_states_lose_stickiness() {
        let mut s = Scheduler::new(build_searcher(StrategyKind::Bfs, 1));
        s.add(meta(1, 0));
        s.add(meta(2, 0));
        let first = s.lease().expect("state available");
        s.release(meta(first.0, 0));
        s.remove(first); // exported to another worker
        let next = s.lease().expect("second state remains");
        assert_ne!(next, first);
        assert_eq!(s.lease(), None);
    }

    #[test]
    fn replace_searcher_keeps_sticky_continuations() {
        let mut s = Scheduler::new(build_searcher(StrategyKind::Dfs, 1));
        s.add(meta(1, 0));
        s.add(meta(2, 0));
        let leased = s.lease().expect("state available");
        s.release(meta(leased.0, 0));
        // Portfolio reassignment mid-run: rebuild with a different
        // strategy and re-register the active states.
        s.replace_searcher(build_searcher(StrategyKind::Random, 99));
        s.add(meta(1, 0));
        s.add(meta(2, 0));
        assert_eq!(s.lease(), Some(leased), "sticky continuation lost");
    }
}
