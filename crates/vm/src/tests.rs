//! Integration-style tests for the symbolic execution engine.

use crate::{
    sysno, BugKind, DfsSearcher, Engine, EngineConfig, Environment, ExecutionState, Executor,
    ExecutorConfig, NullEnvironment, PathChoice, StateId, StateIdGen, StepResult,
    TerminationReason,
};
use c9_ir::{AbortKind, BinaryOp, Operand, Program, ProgramBuilder, Width};
use std::sync::Arc;

fn run_program(program: Program, config: EngineConfig) -> crate::RunSummary {
    let mut engine = Engine::new(
        Arc::new(program),
        Arc::new(NullEnvironment),
        Box::new(DfsSearcher::new()),
        config,
    );
    engine.run()
}

fn run_default(program: Program) -> crate::RunSummary {
    run_program(program, EngineConfig::default())
}

/// A program with `n` symbolic input bytes; each byte is compared against a
/// distinct constant, giving 2^n paths.
fn branching_program(n: usize) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("branching");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(n as u32));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(n as u32)],
    );
    let counter = f.copy(Operand::word(0));
    let mut next = f.create_block();
    for i in 0..n {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        let byte = f.load(Operand::Reg(addr), Width::W8);
        let cond = f.binary(
            BinaryOp::Eq,
            Operand::Reg(byte),
            Operand::byte(b'A' + i as u8),
        );
        let then_bb = f.create_block();
        f.branch(Operand::Reg(cond), then_bb, next);
        f.switch_to(then_bb);
        let bumped = f.binary(BinaryOp::Add, Operand::Reg(counter), Operand::word(1));
        f.assign_to(counter, c9_ir::Rvalue::Use(Operand::Reg(bumped)));
        f.jump(next);
        f.switch_to(next);
        if i + 1 < n {
            next = f.create_block();
        }
    }
    f.ret(Some(Operand::Reg(counter)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

#[test]
fn concrete_program_runs_to_exit() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let a = f.copy(Operand::word(20));
    let b = f.binary(BinaryOp::Mul, Operand::Reg(a), Operand::word(2));
    let c = f.binary(BinaryOp::Add, Operand::Reg(b), Operand::word(2));
    f.ret(Some(Operand::Reg(c)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.paths_completed, 1);
    assert!(summary.exhausted);
    assert_eq!(summary.bugs.len(), 0);
    assert_eq!(
        summary.test_cases[0].termination,
        TerminationReason::Exit(42)
    );
}

#[test]
fn symbolic_branches_explore_all_paths() {
    for n in 1..=4usize {
        let summary = run_default(branching_program(n));
        assert_eq!(
            summary.paths_completed,
            1 << n,
            "expected 2^{n} paths for {n} symbolic bytes"
        );
        assert!(summary.exhausted);
    }
}

#[test]
fn test_cases_reproduce_path_constraints() {
    let summary = run_default(branching_program(3));
    // One of the paths must have all three bytes equal to 'A', 'B', 'C'.
    let all_match = summary.test_cases.iter().any(|tc| {
        let bytes = tc.bytes_with_prefix("sym0");
        bytes == vec![b'A', b'B', b'C']
    });
    assert!(all_match, "no test case drives the all-match path");
}

#[test]
fn coverage_accumulates_over_paths() {
    let summary = run_default(branching_program(2));
    assert!(summary.coverage.count() > 0);
    // Exhaustive exploration of this program covers every line.
    assert!(
        summary.coverage_ratio() > 0.95,
        "coverage {:.2} unexpectedly low",
        summary.coverage_ratio()
    );
}

#[test]
fn out_of_bounds_access_is_reported() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(4));
    let past_end = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(4));
    let _ = f.load(Operand::Reg(past_end), Width::W8);
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.bugs.len(), 1);
    assert!(matches!(
        summary.bugs[0].termination,
        TerminationReason::Bug(BugKind::OutOfBounds { .. })
    ));
}

#[test]
fn division_by_zero_is_reported() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let d = f.binary(BinaryOp::UDiv, Operand::word(10), Operand::word(0));
    f.ret(Some(Operand::Reg(d)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert!(matches!(
        summary.bugs[0].termination,
        TerminationReason::Bug(BugKind::DivisionByZero)
    ));
}

#[test]
fn abort_site_produces_bug_with_inputs() {
    // Crash only when the symbolic byte is '!': the generated test case must
    // contain exactly that byte.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(1)],
    );
    let b = f.load(Operand::Reg(buf), Width::W8);
    let cond = f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(b'!'));
    let crash_bb = f.create_block();
    let ok_bb = f.create_block();
    f.branch(Operand::Reg(cond), crash_bb, ok_bb);
    f.switch_to(crash_bb);
    f.abort(AbortKind::Crash, "boom");
    f.switch_to(ok_bb);
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.paths_completed, 2);
    assert_eq!(summary.bugs.len(), 1);
    let bug = &summary.bugs[0];
    assert_eq!(bug.bytes_with_prefix("sym0"), vec![b'!']);
}

#[test]
fn assert_failure_forks_a_bug_state() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(1)],
    );
    let b = f.load(Operand::Reg(buf), Width::W8);
    let cond = f.binary(BinaryOp::Ult, Operand::Reg(b), Operand::byte(200));
    f.assert_(Operand::Reg(cond), "byte must be small");
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.bugs.len(), 1);
    // The violating test case has a byte >= 200.
    let bytes = summary.bugs[0].bytes_with_prefix("sym0");
    assert!(bytes[0] >= 200);
    // And the passing path also completed.
    assert_eq!(summary.paths_completed, 2);
}

#[test]
fn assume_prunes_paths() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(1)],
    );
    let b = f.load(Operand::Reg(buf), Width::W8);
    let small = f.binary(BinaryOp::Ult, Operand::Reg(b), Operand::byte(10));
    f.syscall(sysno::ASSUME, vec![Operand::Reg(small)]);
    // After the assumption, this comparison can only be true.
    let cond = f.binary(BinaryOp::Ult, Operand::Reg(b), Operand::byte(50));
    let then_bb = f.create_block();
    let else_bb = f.create_block();
    f.branch(Operand::Reg(cond), then_bb, else_bb);
    f.switch_to(then_bb);
    f.ret(Some(Operand::word(1)));
    f.switch_to(else_bb);
    f.ret(Some(Operand::word(2)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.paths_completed, 1);
    assert_eq!(
        summary.test_cases[0].termination,
        TerminationReason::Exit(1)
    );
}

#[test]
fn infinite_loop_detected_as_hang() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let loop_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    f.jump(loop_bb);
    let main = f.finish();
    pb.set_entry(main);

    let config = EngineConfig {
        executor: ExecutorConfig {
            max_instructions_per_path: 10_000,
            ..ExecutorConfig::default()
        },
        ..EngineConfig::default()
    };
    let summary = run_program(pb.finish(), config);
    assert_eq!(summary.paths_completed, 1);
    assert_eq!(
        summary.test_cases[0].termination,
        TerminationReason::MaxInstructions
    );
}

#[test]
fn function_calls_pass_arguments_and_return_values() {
    let mut pb = ProgramBuilder::new();
    let add = {
        let mut f = pb.function("add", 2, Some(Width::W32));
        let a = f.param(0);
        let b = f.param(1);
        let sum = f.binary(BinaryOp::Add, Operand::Reg(a), Operand::Reg(b));
        f.ret(Some(Operand::Reg(sum)));
        f.finish()
    };
    let mut f = pb.function("main", 0, Some(Width::W32));
    let r = f.call(add, vec![Operand::word(40), Operand::word(2)]);
    f.ret(Some(Operand::Reg(r)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(
        summary.test_cases[0].termination,
        TerminationReason::Exit(42)
    );
}

#[test]
fn runaway_recursion_is_killed() {
    let mut pb = ProgramBuilder::new();
    let rec = pb.declare("rec", 0, Some(Width::W32));
    let mut f = pb.build_declared(rec);
    let r = f.call(rec, vec![]);
    f.ret(Some(Operand::Reg(r)));
    f.finish();
    let mut m = pb.function("main", 0, Some(Width::W32));
    let r = m.call(rec, vec![]);
    m.ret(Some(Operand::Reg(r)));
    let main = m.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.bugs.len(), 1);
}

// ---------------------------------------------------------------------------
// Threads, processes, shared memory.
// ---------------------------------------------------------------------------

/// Builds a program where a worker thread stores 7 into a shared cell and
/// notifies the main thread, which sleeps until the store happened.
fn producer_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let worker = pb.declare("worker", 1, None);

    let mut f = pb.function("main", 0, Some(Width::W32));
    let cell = f.alloc(Operand::word(8));
    f.syscall(sysno::MAKE_SHARED, vec![Operand::Reg(cell)]);
    let wlist = f.syscall(sysno::GET_WLIST, vec![]);
    // Store the wait list id into the shared cell's second word so the
    // worker can find it (simple calling convention for the test).
    let wl_slot = f.binary(BinaryOp::Add, Operand::Reg(cell), Operand::word(4));
    f.store(Operand::Reg(wl_slot), Operand::Reg(wlist), Width::W32);
    f.syscall(
        sysno::THREAD_CREATE,
        vec![
            Operand::Const(u64::from(worker.0), Width::W32),
            Operand::Reg(cell),
        ],
    );
    // Wait until the worker writes a non-zero value.
    let check_bb = f.create_block();
    let sleep_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(check_bb);
    f.switch_to(check_bb);
    let v = f.load(Operand::Reg(cell), Width::W32);
    let ready = f.binary(BinaryOp::Ne, Operand::Reg(v), Operand::word(0));
    f.branch(Operand::Reg(ready), done_bb, sleep_bb);
    f.switch_to(sleep_bb);
    f.syscall(sysno::THREAD_SLEEP, vec![Operand::Reg(wlist)]);
    f.jump(check_bb);
    f.switch_to(done_bb);
    let result = f.load(Operand::Reg(cell), Width::W32);
    f.ret(Some(Operand::Reg(result)));
    let main = f.finish();

    let mut w = pb.build_declared(worker);
    let cell = w.param(0);
    w.store(Operand::Reg(cell), Operand::word(7), Width::W32);
    let wl_slot = w.binary(BinaryOp::Add, Operand::Reg(cell), Operand::word(4));
    let wlist = w.load(Operand::Reg(wl_slot), Width::W32);
    w.syscall(
        sysno::THREAD_NOTIFY,
        vec![Operand::Reg(wlist), Operand::word(1)],
    );
    w.ret(None);
    w.finish();

    pb.set_entry(main);
    pb.finish()
}

#[test]
fn threads_sleep_and_notify() {
    let summary = run_default(producer_program());
    assert_eq!(summary.paths_completed, 1);
    assert_eq!(summary.bugs.len(), 0);
    assert_eq!(
        summary.test_cases[0].termination,
        TerminationReason::Exit(7)
    );
}

#[test]
fn deadlock_is_detected() {
    // Main sleeps on a wait list nobody ever notifies.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let wlist = f.syscall(sysno::GET_WLIST, vec![]);
    f.syscall(sysno::THREAD_SLEEP, vec![Operand::Reg(wlist)]);
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.bugs.len(), 1);
    assert!(matches!(
        summary.bugs[0].termination,
        TerminationReason::Bug(BugKind::Deadlock)
    ));
}

#[test]
fn process_fork_gives_child_zero_and_parent_child_pid() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let pid = f.syscall(sysno::PROCESS_FORK, vec![]);
    let is_child = f.binary(BinaryOp::Eq, Operand::Reg(pid), Operand::word(0));
    let child_bb = f.create_block();
    let parent_bb = f.create_block();
    f.branch(Operand::Reg(is_child), child_bb, parent_bb);
    f.switch_to(child_bb);
    // Child terminates its own process.
    f.syscall(sysno::PROCESS_TERMINATE, vec![Operand::word(0)]);
    f.ret(Some(Operand::word(0)));
    f.switch_to(parent_bb);
    f.ret(Some(Operand::Reg(pid)));
    let main = f.finish();
    pb.set_entry(main);

    let summary = run_default(pb.finish());
    assert_eq!(summary.paths_completed, 1);
    // The parent returns the child's pid (1).
    assert_eq!(
        summary.test_cases[0].termination,
        TerminationReason::Exit(1)
    );
}

#[test]
fn fork_all_scheduler_explores_interleavings() {
    // Two worker threads each increment a (non-shared per-thread) counter and
    // preempt; with the fork-all scheduler, every interleaving is explored, so
    // there is more than one completed path.
    let mut pb = ProgramBuilder::new();
    let worker = pb.declare("worker", 1, None);

    let mut f = pb.function("main", 0, Some(Width::W32));
    f.syscall(sysno::SET_SCHEDULER, vec![Operand::word(1)]);
    f.syscall(
        sysno::THREAD_CREATE,
        vec![
            Operand::Const(u64::from(worker.0), Width::W32),
            Operand::word(1),
        ],
    );
    f.syscall(
        sysno::THREAD_CREATE,
        vec![
            Operand::Const(u64::from(worker.0), Width::W32),
            Operand::word(2),
        ],
    );
    f.syscall(sysno::THREAD_PREEMPT, vec![]);
    f.syscall(sysno::THREAD_PREEMPT, vec![]);
    f.ret(Some(Operand::word(0)));
    let main = f.finish();

    let mut w = pb.build_declared(worker);
    w.syscall(sysno::THREAD_PREEMPT, vec![]);
    w.ret(None);
    w.finish();

    pb.set_entry(main);
    let summary = run_default(pb.finish());
    assert!(
        summary.paths_completed > 1,
        "fork-all scheduling should explore multiple interleavings, got {}",
        summary.paths_completed
    );
}

// ---------------------------------------------------------------------------
// Replay (job materialization).
// ---------------------------------------------------------------------------

#[test]
fn replaying_a_recorded_path_reaches_the_same_outcome() {
    let program = Arc::new(branching_program(3));
    let mut engine = Engine::new(
        program.clone(),
        Arc::new(NullEnvironment),
        Box::new(DfsSearcher::new()),
        EngineConfig::default(),
    );
    let summary = engine.run();
    assert_eq!(summary.paths_completed, 8);

    // Replay each recorded path on a fresh executor and check the recorded
    // path is reproduced exactly (no broken replays — the deterministic
    // allocator and symbol numbering guarantee this).
    #[allow(clippy::arc_with_non_send_sync)]
    let solver = Arc::new(c9_solver::Solver::new());
    let executor = crate::Executor::new(
        program,
        solver,
        Arc::new(NullEnvironment),
        ExecutorConfig::default(),
    );
    for tc in &summary.test_cases {
        let mut ids = StateIdGen::new();
        let id = ids.fresh();
        let mut state = executor.replay_state(id, tc.path.clone());
        loop {
            match executor.step(&mut state, &mut ids) {
                StepResult::Continue => continue,
                StepResult::Forked(_) => continue,
                StepResult::Terminated(reason) => {
                    assert_eq!(reason, tc.termination, "replay diverged");
                    break;
                }
            }
        }
        assert_eq!(state.path, tc.path, "replayed path differs from original");
        assert!(state.stats.replay_instructions > 0);
    }
}

#[test]
fn replayed_path_counts_as_replay_work_until_path_exhausted() {
    let program = Arc::new(branching_program(2));
    #[allow(clippy::arc_with_non_send_sync)]
    let solver = Arc::new(c9_solver::Solver::new());
    let executor = crate::Executor::new(
        program,
        solver,
        Arc::new(NullEnvironment),
        ExecutorConfig::default(),
    );
    // Build a partial path: only the first decision.
    let mut ids = StateIdGen::new();
    let id = ids.fresh();
    let mut state = executor.replay_state(id, vec![PathChoice::Branch(false)]);
    // Run a handful of steps: once the replay cursor is exhausted, further
    // instructions count as useful work again.
    for _ in 0..200 {
        match executor.step(&mut state, &mut ids) {
            StepResult::Terminated(_) => break,
            _ => continue,
        }
    }
    assert!(state.stats.replay_instructions > 0);
    assert!(state.stats.instructions > 0);
}

#[test]
fn state_ids_are_unique_across_forks() {
    let summary = run_default(branching_program(4));
    // Every test case ends a distinct path.
    assert_eq!(summary.test_cases.len(), 16);
    let mut paths: Vec<_> = summary
        .test_cases
        .iter()
        .map(|tc| tc.path.clone())
        .collect();
    paths.sort();
    paths.dedup();
    assert_eq!(paths.len(), 16, "duplicate paths explored");
}

/// The execution stack must be shareable across executor threads: states
/// move between threads, and the executor (program + solver + environment)
/// is borrowed by all of them simultaneously.
#[test]
fn execution_stack_is_thread_safe() {
    fn send<T: Send>() {}
    fn send_sync<T: Send + Sync>() {}
    send::<ExecutionState>();
    send::<StateIdGen>();
    send_sync::<Executor>();
    send_sync::<std::sync::Arc<dyn Environment>>();
    send_sync::<c9_solver::Solver>();
}

#[test]
fn strided_id_generators_produce_disjoint_lanes() {
    let mut lanes: Vec<StateIdGen> = (0..4).map(|k| StateIdGen::strided(10 + k, 4)).collect();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..32 {
        for lane in &mut lanes {
            assert!(seen.insert(lane.fresh()), "lane collision");
        }
    }
    // Stride 1 reproduces the dense single-thread sequence.
    let mut dense = StateIdGen::new();
    assert_eq!(dense.fresh(), StateId(0));
    assert_eq!(dense.fresh(), StateId(1));
    dense.advance_to(100);
    assert_eq!(dense.fresh(), StateId(100));
    dense.advance_to(50); // never moves backwards
    assert_eq!(dense.fresh(), StateId(101));
}
