//! The environment-model interface.
//!
//! The Cloud9 paper splits environment handling into a small set of *engine
//! primitives* (Table 1) built into the symbolic execution engine, and a
//! *model* (the POSIX model, §4) layered on top. In Cloud9-RS the engine
//! primitives are implemented directly by the executor (see
//! [`crate::sysno`]); everything else is routed to an [`Environment`]
//! implementation registered with the executor. The POSIX model in
//! `c9-posix` is one such implementation.
//!
//! Environment models keep their per-path data (file descriptor tables,
//! socket buffers, …) inside the execution state as a boxed [`EnvState`], so
//! that forking a state forks the modelled environment with it — the property
//! that makes modelled syscalls safe where concrete external calls are not
//! (§4.1).

use crate::errors::TerminationReason;
use crate::state::ExecutionState;
use crate::thread::WaitListId;
use crate::value::{ByteValue, Value};
use c9_expr::ExprRef;
use c9_solver::Solver;
use std::any::Any;
use std::fmt::Debug;

/// Per-state data owned by an environment model.
pub trait EnvState: Debug + Send {
    /// Clones the state into a new box (states are cloned on fork).
    fn clone_box(&self) -> Box<dyn EnvState>;
    /// Upcasts to [`Any`] for downcasting to the concrete model type.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts mutably.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn EnvState> {
    fn clone(&self) -> Box<dyn EnvState> {
        self.clone_box()
    }
}

/// A per-alternative update applied to the successor state of a forking
/// syscall (e.g. "this alternative consumed k bytes from the socket").
pub type AlternativeUpdate = std::sync::Arc<dyn Fn(&mut ExecutionState) + Send + Sync>;

/// One alternative outcome of a forking syscall (fault injection, symbolic
/// packet fragmentation, schedule exploration).
#[derive(Clone)]
pub struct SyscallAlternative {
    /// Human-readable label used in diagnostics (e.g. `"EINTR"`).
    pub label: String,
    /// Extra path constraint this alternative assumes, if any.
    pub constraint: Option<ExprRef>,
    /// The value the syscall returns in this alternative.
    pub retval: Value,
    /// Optional update applied to the state that takes this alternative,
    /// after the fork (the environment state is back inside the execution
    /// state at that point).
    pub apply: Option<AlternativeUpdate>,
}

impl Debug for SyscallAlternative {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyscallAlternative")
            .field("label", &self.label)
            .field("constraint", &self.constraint)
            .field("retval", &self.retval)
            .field("apply", &self.apply.is_some())
            .finish()
    }
}

impl SyscallAlternative {
    /// Creates an alternative with no extra constraint.
    pub fn new(label: &str, retval: Value) -> SyscallAlternative {
        SyscallAlternative {
            label: label.to_string(),
            constraint: None,
            retval,
            apply: None,
        }
    }

    /// Creates an alternative guarded by a constraint.
    pub fn with_constraint(label: &str, constraint: ExprRef, retval: Value) -> SyscallAlternative {
        SyscallAlternative {
            label: label.to_string(),
            constraint: Some(constraint),
            retval,
            apply: None,
        }
    }

    /// Attaches a state update executed on the successor taking this
    /// alternative.
    pub fn with_update(
        mut self,
        update: impl Fn(&mut ExecutionState) + Send + Sync + 'static,
    ) -> SyscallAlternative {
        self.apply = Some(std::sync::Arc::new(update));
        self
    }
}

/// The effect of a handled syscall, applied by the executor.
#[derive(Clone, Debug)]
pub enum SyscallEffect {
    /// Return a value to the calling thread and continue.
    Return(Value),
    /// Fork the state: one successor per (feasible) alternative. The chosen
    /// alternative index is recorded in the path for replay.
    Fork(Vec<SyscallAlternative>),
    /// Block the calling thread on a wait list.
    Sleep {
        /// The wait list to sleep on.
        wlist: WaitListId,
        /// When true, the same syscall instruction re-executes after the
        /// thread is woken (so the handler can re-check the condition it was
        /// waiting for); when false, the syscall completes with `retval` upon
        /// wakeup.
        restart: bool,
        /// Value returned if `restart` is false.
        retval: Value,
    },
    /// Terminate the entire state.
    Terminate(TerminationReason),
}

/// Context handed to environment syscall handlers.
///
/// The environment state is temporarily moved out of the execution state so
/// the handler can mutate both without aliasing.
pub struct SyscallContext<'a> {
    /// The execution state (memory, threads, constraints, …).
    pub state: &'a mut ExecutionState,
    /// The environment model's own per-path data.
    pub env: &'a mut dyn EnvState,
    /// The worker's solver, for concretization queries.
    pub solver: &'a Solver,
}

impl<'a> SyscallContext<'a> {
    /// Downcasts the environment data to the model's concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the type does not match.
    pub fn env_mut<T: 'static>(&mut self) -> &mut T {
        self.env
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("environment state has unexpected type")
    }

    /// Reads `len` guest bytes at `addr` from the current address space.
    pub fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<ByteValue>, crate::BugKind> {
        self.state
            .memory
            .read_bytes(self.state.current_space(), addr, len)
    }

    /// Writes guest bytes at `addr` in the current address space.
    pub fn write_guest(&mut self, addr: u64, data: &[ByteValue]) -> Result<(), crate::BugKind> {
        let space = self.state.current_space();
        self.state.memory.write_bytes(space, addr, data)
    }

    /// Reads a concrete NUL-terminated guest string.
    pub fn read_guest_cstring(&self, addr: u64, max_len: usize) -> Result<Vec<u8>, crate::BugKind> {
        self.state
            .memory
            .read_cstring(self.state.current_space(), addr, max_len)
    }

    /// Concretizes a value under the current path constraints, adding the
    /// binding constraint so later execution stays consistent.
    pub fn concretize(&mut self, value: &Value) -> u64 {
        match value.as_u64() {
            Some(v) => v,
            None => {
                let expr = value.to_expr();
                let v = self
                    .solver
                    .get_value(&self.state.constraints, &expr)
                    .unwrap_or(0);
                self.state.add_constraint(c9_expr::Expr::eq(
                    expr,
                    c9_expr::Expr::const_(v, value.width()),
                ));
                v
            }
        }
    }
}

/// The environment model registered with an executor.
pub trait Environment: Send + Sync {
    /// Creates the per-state environment data for a fresh initial state.
    fn create_state(&self) -> Box<dyn EnvState>;

    /// Handles a syscall with number `nr` (always ≥
    /// [`c9_ir::Program::ENV_SYSCALL_BASE`]).
    fn syscall(
        &self,
        ctx: &mut SyscallContext<'_>,
        nr: u32,
        args: &[Value],
    ) -> Result<SyscallEffect, TerminationReason>;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "environment"
    }
}

/// An environment with no state that rejects every syscall.
///
/// Useful for programs that only exercise pure computation, and as the
/// baseline in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEnvironment;

/// The (empty) per-state data of [`NullEnvironment`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEnvState;

impl EnvState for NullEnvState {
    fn clone_box(&self) -> Box<dyn EnvState> {
        Box::new(*self)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Environment for NullEnvironment {
    fn create_state(&self) -> Box<dyn EnvState> {
        Box::new(NullEnvState)
    }

    fn syscall(
        &self,
        _ctx: &mut SyscallContext<'_>,
        nr: u32,
        _args: &[Value],
    ) -> Result<SyscallEffect, TerminationReason> {
        Err(TerminationReason::Bug(crate::BugKind::UnknownSyscall(nr)))
    }

    fn name(&self) -> &str {
        "null"
    }
}
