//! The Cloud9-RS single-node symbolic execution engine.
//!
//! This crate is the stand-in for KLEE in the Cloud9 architecture (§3.1 of
//! the paper): it executes programs written in the [`c9_ir`] intermediate
//! representation with symbolic inputs, forking execution at branches whose
//! condition depends on symbolic data, and uses the [`c9_solver`] constraint
//! solver to keep only feasible paths and to produce concrete test cases.
//!
//! The crate provides:
//!
//! * symbolic [`Value`]s and copy-on-write symbolic [`memory`](Memory) with
//!   multiple address spaces per state and CoW domains (§4.2),
//! * [`ExecutionState`] — one node of the execution tree, including threads,
//!   processes, wait lists, the modelled environment, and the recorded
//!   [`PathChoice`] sequence used for job transfers,
//! * the [`Executor`] — a forking interpreter with the engine primitives of
//!   Table 1 (`make_shared`, thread/process management, sleep/notify),
//! * [`Searcher`] strategies (random-path, coverage-optimized, DFS, BFS, and
//!   their interleaving), and
//! * a single-node [`Engine`] equivalent to classic sequential symbolic
//!   execution, used as the baseline in the evaluation.
//!
//! # Examples
//!
//! Exhaustively explore a tiny program with one symbolic byte:
//!
//! ```
//! use std::sync::Arc;
//! use c9_ir::{BinaryOp, Operand, ProgramBuilder, Width};
//! use c9_vm::{sysno, Engine, EngineConfig, NullEnvironment, DfsSearcher};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0, Some(Width::W32));
//! let buf = f.alloc(Operand::word(1));
//! f.syscall(sysno::MAKE_SYMBOLIC, vec![Operand::Reg(buf), Operand::word(1)]);
//! let b = f.load(Operand::Reg(buf), Width::W8);
//! let is_a = f.binary(BinaryOp::Eq, Operand::Reg(b), Operand::byte(b'a'));
//! let then_bb = f.create_block();
//! let else_bb = f.create_block();
//! f.branch(Operand::Reg(is_a), then_bb, else_bb);
//! f.switch_to(then_bb);
//! f.ret(Some(Operand::word(1)));
//! f.switch_to(else_bb);
//! f.ret(Some(Operand::word(0)));
//! let main = f.finish();
//! pb.set_entry(main);
//!
//! let mut engine = Engine::new(
//!     Arc::new(pb.finish()),
//!     Arc::new(NullEnvironment),
//!     Box::new(DfsSearcher::new()),
//!     EngineConfig::default(),
//! );
//! let summary = engine.run();
//! assert_eq!(summary.paths_completed, 2);
//! assert!(summary.exhausted);
//! ```

#![deny(missing_docs)]

mod coverage;
mod engine;
mod env;
mod errors;
mod executor;
mod memory;
mod replay;
mod scheduler;
mod searcher;
mod state;
pub mod sysno;
mod testcase;
mod thread;
mod value;

pub use coverage::CoverageSet;
pub use engine::{Engine, EngineConfig, RunSummary};
pub use env::{
    AlternativeUpdate, EnvState, Environment, NullEnvState, NullEnvironment, SyscallAlternative,
    SyscallContext, SyscallEffect,
};
pub use errors::{BugKind, TerminationReason};
pub use executor::{Executor, ExecutorConfig, StepResult};
pub use memory::{AddressSpaceId, CowDomain, CowDomainId, MemObject, Memory};
pub use replay::{ReplayCacheConfig, ReplayEngine, ReplayProgress, ReplayRun};
pub use scheduler::Scheduler;
pub use searcher::{
    build_searcher, BfsSearcher, CoverageOptimizedSearcher, CupaSearcher, DfsSearcher,
    InterleavedSearcher, ParseStrategyError, RandomPathSearcher, RandomSearcher, Searcher,
    StateMeta, StrategyKind,
};
pub use state::{
    ExecutionState, PathChoice, ReplayCursor, SchedulerPolicy, StateId, StateIdGen, StateStats,
};
pub use testcase::{InputBinding, TestCase};
pub use thread::{
    Frame, Process, ProcessId, Thread, ThreadId, ThreadStatus, WaitListId, WaitLists,
};
pub use value::{ByteValue, Value};

#[cfg(test)]
mod tests;
