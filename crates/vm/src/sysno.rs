//! Engine-primitive syscall numbers.
//!
//! These are the "symbolic system calls" of Table 1 in the Cloud9 paper, plus
//! a handful of KLEE-style testing primitives (`make_symbolic`, `assume`,
//! `exit`). They are handled directly by the executor; numbers at or above
//! [`c9_ir::Program::ENV_SYSCALL_BASE`] are routed to the registered
//! [`crate::Environment`] instead.

/// `cloud9_make_shared(addr)` — share the object containing `addr` across the
/// process's CoW domain. Returns the object base address.
pub const MAKE_SHARED: u32 = 1;
/// `cloud9_thread_create(func_id, arg)` — create a thread running function
/// `func_id` with a single argument. Returns the new thread id.
pub const THREAD_CREATE: u32 = 2;
/// `cloud9_thread_terminate()` — terminate the calling thread.
pub const THREAD_TERMINATE: u32 = 3;
/// `cloud9_process_fork()` — fork the calling process *within* the state.
/// Returns the child pid in the parent and 0 in the child.
pub const PROCESS_FORK: u32 = 4;
/// `cloud9_process_terminate(code)` — terminate the calling process.
pub const PROCESS_TERMINATE: u32 = 5;
/// `cloud9_get_context()` — returns `(pid << 16) | tid`.
pub const GET_CONTEXT: u32 = 6;
/// `cloud9_thread_preempt()` — yield the processor at an explicit preemption
/// point.
pub const THREAD_PREEMPT: u32 = 7;
/// `cloud9_thread_sleep(wlist)` — sleep on a waiting queue.
pub const THREAD_SLEEP: u32 = 8;
/// `cloud9_thread_notify(wlist, all)` — wake one (`all = 0`) or all
/// (`all = 1`) threads from a waiting queue.
pub const THREAD_NOTIFY: u32 = 9;
/// `cloud9_get_wlist()` — create a new waiting queue and return its id.
pub const GET_WLIST: u32 = 10;
/// `cloud9_make_symbolic(addr, len)` — overwrite `len` guest bytes at `addr`
/// with fresh symbolic bytes.
pub const MAKE_SYMBOLIC: u32 = 11;
/// `exit(code)` — terminate the whole state with an exit code.
pub const EXIT: u32 = 12;
/// `assume(cond)` — add `cond != 0` to the path constraints; terminates the
/// path as infeasible if the assumption contradicts them.
pub const ASSUME: u32 = 13;
/// Debugging print; ignored by the engine.
pub const PRINT: u32 = 14;
/// `cloud9_set_max_heap(bytes)` — set the modelled heap limit.
pub const SET_MAX_HEAP: u32 = 15;
/// `cloud9_set_scheduler(policy)` — select the scheduling policy
/// (0 = round-robin, 1 = fork-all, otherwise context bound of `policy - 1`).
pub const SET_SCHEDULER: u32 = 16;
/// Returns a fresh symbolic value of the width given by the first argument
/// (in bits). A convenience wrapper over `MAKE_SYMBOLIC` for scalars.
pub const SYMBOLIC_VALUE: u32 = 17;
