//! Symbolic memory: objects, address spaces, and copy-on-write domains.
//!
//! Memory is byte-addressed. Every allocation becomes a [`MemObject`] placed
//! at a base address produced by the state's deterministic allocator (§6 of
//! the paper: a per-state allocator is required so that path replay on
//! another worker reconstructs identical addresses). Address spaces map base
//! addresses to reference-counted objects; cloning an address space is cheap
//! and object contents are copied only on write (`Arc::make_mut`).
//!
//! Objects can be marked *shared* within a copy-on-write domain (the engine
//! primitive `make_shared` of Table 1). Shared objects live in the domain,
//! not in any single address space, so writes through one process become
//! visible to every process of the domain — this is how the POSIX model
//! implements shared memory for IPC.

use crate::errors::BugKind;
use crate::value::{ByteValue, Value};
use c9_expr::{Expr, ExprRef, Width};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a copy-on-write domain (one per group of processes created
/// from the same initial process).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CowDomainId(pub u32);

/// A contiguous allocation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemObject {
    /// Base address of the object.
    pub base: u64,
    /// Contents, one entry per byte.
    pub bytes: Vec<ByteValue>,
    /// Whether the object has been freed (kept around to diagnose
    /// use-after-free).
    pub freed: bool,
}

impl MemObject {
    /// Creates a zero-initialized object of `size` bytes at `base`.
    pub fn zeroed(base: u64, size: usize) -> MemObject {
        MemObject {
            base,
            bytes: vec![ByteValue::Concrete(0); size],
            freed: false,
        }
    }

    /// Creates an object with the given concrete contents.
    pub fn from_bytes(base: u64, data: &[u8]) -> MemObject {
        MemObject {
            base,
            bytes: data.iter().map(|b| ByteValue::Concrete(*b)).collect(),
            freed: false,
        }
    }

    /// Size of the object in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

/// Result of resolving an address to an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Location {
    /// The object lives in the address space itself.
    Local(u64),
    /// The object lives in the CoW domain's shared store.
    Shared(u64),
}

/// A per-process view of memory.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    /// Objects owned by this address space, keyed by base address.
    objects: BTreeMap<u64, Arc<MemObject>>,
    /// The CoW domain this address space belongs to.
    pub domain: CowDomainId,
}

/// The shared-object store of a CoW domain.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CowDomain {
    /// Shared objects, keyed by base address; visible to every address space
    /// in the domain.
    objects: BTreeMap<u64, Arc<MemObject>>,
}

/// The full memory of an execution state: all address spaces plus all CoW
/// domains.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    /// Address spaces, indexed by [`AddressSpaceId`].
    spaces: Vec<AddressSpace>,
    /// CoW domains, indexed by [`CowDomainId`].
    domains: Vec<CowDomain>,
    /// Deterministic bump allocator cursor (shared across address spaces so
    /// that addresses never collide between processes of one state).
    next_addr: u64,
    /// Total bytes currently allocated (for the modelled heap limit).
    allocated_bytes: u64,
}

/// Identifier of an address space within a state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AddressSpaceId(pub u32);

/// Base address of the very first allocation. Address 0 is never mapped so
/// that null-pointer dereferences are always out of bounds.
const HEAP_BASE: u64 = 0x1000;
/// Alignment and guard gap between allocations.
const ALLOC_ALIGN: u64 = 16;

impl Memory {
    /// Creates memory with one empty address space in one CoW domain.
    pub fn new() -> Memory {
        Memory {
            spaces: vec![AddressSpace {
                objects: BTreeMap::new(),
                domain: CowDomainId(0),
            }],
            domains: vec![CowDomain::default()],
            next_addr: HEAP_BASE,
            allocated_bytes: 0,
        }
    }

    /// The initial address space.
    pub fn initial_space(&self) -> AddressSpaceId {
        AddressSpaceId(0)
    }

    /// Number of address spaces.
    pub fn num_spaces(&self) -> usize {
        self.spaces.len()
    }

    /// Total bytes currently allocated (live objects across all spaces).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Duplicates an address space (process fork): the new space shares every
    /// object through `Arc` until one side writes, and belongs to the same
    /// CoW domain.
    pub fn fork_space(&mut self, space: AddressSpaceId) -> AddressSpaceId {
        let cloned = self.spaces[space.0 as usize].clone();
        let id = AddressSpaceId(self.spaces.len() as u32);
        self.spaces.push(cloned);
        id
    }

    /// Allocates `size` bytes in `space` and returns the base address.
    pub fn alloc(&mut self, space: AddressSpaceId, size: usize) -> u64 {
        let base = self.next_addr;
        // Always advance by at least one byte so zero-sized allocations get
        // unique addresses.
        let advance = (size as u64).max(1);
        self.next_addr =
            (self.next_addr + advance).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN + ALLOC_ALIGN;
        self.allocated_bytes += size as u64;
        self.spaces[space.0 as usize]
            .objects
            .insert(base, Arc::new(MemObject::zeroed(base, size)));
        base
    }

    /// Allocates an object initialized with `data`.
    pub fn alloc_bytes(&mut self, space: AddressSpaceId, data: &[u8]) -> u64 {
        let base = self.alloc(space, data.len());
        let obj = self.object_mut(space, Location::Local(base));
        for (i, b) in data.iter().enumerate() {
            obj.bytes[i] = ByteValue::Concrete(*b);
        }
        base
    }

    /// Frees the object whose base address is `addr`.
    pub fn free(&mut self, space: AddressSpaceId, addr: u64) -> Result<(), BugKind> {
        let sp = &mut self.spaces[space.0 as usize];
        match sp.objects.get_mut(&addr) {
            Some(obj) if !obj.freed => {
                self.allocated_bytes = self.allocated_bytes.saturating_sub(obj.size() as u64);
                Arc::make_mut(obj).freed = true;
                Ok(())
            }
            Some(_) => Err(BugKind::InvalidFree { addr }),
            None => Err(BugKind::InvalidFree { addr }),
        }
    }

    /// Marks the object containing `addr` as shared within the space's CoW
    /// domain (engine primitive `make_shared`). Returns the object base.
    pub fn make_shared(&mut self, space: AddressSpaceId, addr: u64) -> Result<u64, BugKind> {
        let loc = self
            .resolve(space, addr, 1)
            .ok_or(BugKind::OutOfBounds { addr, size: 1 })?;
        match loc {
            Location::Shared(base) => Ok(base),
            Location::Local(base) => {
                let domain = self.spaces[space.0 as usize].domain;
                let obj = self.spaces[space.0 as usize]
                    .objects
                    .remove(&base)
                    .expect("resolved object must exist");
                self.domains[domain.0 as usize].objects.insert(base, obj);
                Ok(base)
            }
        }
    }

    fn resolve(&self, space: AddressSpaceId, addr: u64, size: usize) -> Option<Location> {
        let sp = &self.spaces[space.0 as usize];
        if let Some((base, obj)) = sp.objects.range(..=addr).next_back() {
            if !obj.freed && addr + size as u64 <= base + obj.size() as u64 {
                return Some(Location::Local(*base));
            }
        }
        let dom = &self.domains[sp.domain.0 as usize];
        if let Some((base, obj)) = dom.objects.range(..=addr).next_back() {
            if !obj.freed && addr + size as u64 <= base + obj.size() as u64 {
                return Some(Location::Shared(*base));
            }
        }
        None
    }

    /// Checks whether `[addr, addr+size)` lies entirely within a live object
    /// visible from `space`, and classifies the failure if not.
    fn resolve_or_bug(
        &self,
        space: AddressSpaceId,
        addr: u64,
        size: usize,
    ) -> Result<Location, BugKind> {
        if let Some(loc) = self.resolve(space, addr, size) {
            return Ok(loc);
        }
        // Distinguish use-after-free from plain out-of-bounds for nicer bug
        // reports.
        let sp = &self.spaces[space.0 as usize];
        if let Some((base, obj)) = sp.objects.range(..=addr).next_back() {
            if obj.freed && addr < base + obj.size() as u64 {
                return Err(BugKind::UseAfterFree { addr });
            }
        }
        Err(BugKind::OutOfBounds { addr, size })
    }

    fn object(&self, space: AddressSpaceId, loc: Location) -> &Arc<MemObject> {
        match loc {
            Location::Local(base) => &self.spaces[space.0 as usize].objects[&base],
            Location::Shared(base) => {
                let domain = self.spaces[space.0 as usize].domain;
                &self.domains[domain.0 as usize].objects[&base]
            }
        }
    }

    fn object_mut(&mut self, space: AddressSpaceId, loc: Location) -> &mut MemObject {
        match loc {
            Location::Local(base) => Arc::make_mut(
                self.spaces[space.0 as usize]
                    .objects
                    .get_mut(&base)
                    .expect("resolved object must exist"),
            ),
            Location::Shared(base) => {
                let domain = self.spaces[space.0 as usize].domain;
                Arc::make_mut(
                    self.domains[domain.0 as usize]
                        .objects
                        .get_mut(&base)
                        .expect("resolved object must exist"),
                )
            }
        }
    }

    /// Reads a single byte.
    pub fn read_byte(&self, space: AddressSpaceId, addr: u64) -> Result<ByteValue, BugKind> {
        let loc = self.resolve_or_bug(space, addr, 1)?;
        let obj = self.object(space, loc);
        Ok(obj.bytes[(addr - obj.base) as usize].clone())
    }

    /// Writes a single byte.
    pub fn write_byte(
        &mut self,
        space: AddressSpaceId,
        addr: u64,
        value: ByteValue,
    ) -> Result<(), BugKind> {
        let loc = self.resolve_or_bug(space, addr, 1)?;
        let obj = self.object_mut(space, loc);
        let offset = (addr - obj.base) as usize;
        obj.bytes[offset] = value;
        Ok(())
    }

    /// Reads a little-endian value of `width` bits starting at `addr`.
    pub fn read(&self, space: AddressSpaceId, addr: u64, width: Width) -> Result<Value, BugKind> {
        let size = width.bytes();
        let loc = self.resolve_or_bug(space, addr, size)?;
        let obj = self.object(space, loc);
        let offset = (addr - obj.base) as usize;
        let bytes = &obj.bytes[offset..offset + size];
        if bytes.iter().all(|b| b.as_concrete().is_some()) {
            let mut v: u64 = 0;
            for (i, b) in bytes.iter().enumerate() {
                v |= u64::from(b.as_concrete().unwrap()) << (8 * i);
            }
            Ok(Value::concrete(v, width))
        } else {
            let exprs: Vec<ExprRef> = bytes.iter().map(|b| b.to_expr()).collect();
            let word = Expr::from_le_bytes(&exprs);
            // The assembled word may be wider than requested when width is
            // not a multiple of 8; extract the low bits.
            let word = if word.width() == width {
                word
            } else {
                Expr::extract(word, 0, width)
            };
            Ok(Value::from_expr(word))
        }
    }

    /// Writes a little-endian value of `width` bits starting at `addr`.
    pub fn write(
        &mut self,
        space: AddressSpaceId,
        addr: u64,
        value: &Value,
        width: Width,
    ) -> Result<(), BugKind> {
        let size = width.bytes();
        let loc = self.resolve_or_bug(space, addr, size)?;
        let obj = self.object_mut(space, loc);
        let offset = (addr - obj.base) as usize;
        match value {
            Value::Concrete(c) => {
                let bits = c.value();
                for i in 0..size {
                    obj.bytes[offset + i] = ByteValue::Concrete(((bits >> (8 * i)) & 0xff) as u8);
                }
            }
            Value::Symbolic(e) => {
                let adjusted = if e.width() == width {
                    e.clone()
                } else {
                    Expr::extract(e.clone(), 0, width)
                };
                let parts = Expr::to_le_bytes(&adjusted);
                for (i, part) in parts.iter().enumerate().take(size) {
                    obj.bytes[offset + i] = ByteValue::from_expr(part.clone());
                }
            }
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(
        &self,
        space: AddressSpaceId,
        addr: u64,
        len: usize,
    ) -> Result<Vec<ByteValue>, BugKind> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let loc = self.resolve_or_bug(space, addr, len)?;
        let obj = self.object(space, loc);
        let offset = (addr - obj.base) as usize;
        Ok(obj.bytes[offset..offset + len].to_vec())
    }

    /// Writes a slice of byte values starting at `addr`.
    pub fn write_bytes(
        &mut self,
        space: AddressSpaceId,
        addr: u64,
        data: &[ByteValue],
    ) -> Result<(), BugKind> {
        if data.is_empty() {
            return Ok(());
        }
        let loc = self.resolve_or_bug(space, addr, data.len())?;
        let obj = self.object_mut(space, loc);
        let offset = (addr - obj.base) as usize;
        obj.bytes[offset..offset + data.len()].clone_from_slice(data);
        Ok(())
    }

    /// Reads a concrete, NUL-terminated string starting at `addr`.
    ///
    /// Symbolic bytes terminate the read (the result contains only the
    /// concrete prefix); the scan is bounded by `max_len`.
    pub fn read_cstring(
        &self,
        space: AddressSpaceId,
        addr: u64,
        max_len: usize,
    ) -> Result<Vec<u8>, BugKind> {
        let mut out = Vec::new();
        for i in 0..max_len {
            match self.read_byte(space, addr + i as u64)? {
                ByteValue::Concrete(0) => break,
                ByteValue::Concrete(b) => out.push(b),
                ByteValue::Symbolic(_) => break,
            }
        }
        Ok(out)
    }

    /// The size of the live object containing `addr`, if any.
    pub fn object_size(&self, space: AddressSpaceId, addr: u64) -> Option<usize> {
        self.resolve(space, addr, 1)
            .map(|loc| self.object(space, loc).size())
    }

    /// The base address of the live object containing `addr`, if any.
    pub fn object_base(&self, space: AddressSpaceId, addr: u64) -> Option<u64> {
        self.resolve(space, addr, 1).map(|loc| match loc {
            Location::Local(b) | Location::Shared(b) => b,
        })
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut mem = Memory::new();
        let space = mem.initial_space();
        let base = mem.alloc(space, 16);
        assert!(base >= HEAP_BASE);
        mem.write(
            space,
            base,
            &Value::concrete(0xdead_beef, Width::W32),
            Width::W32,
        )
        .unwrap();
        let v = mem.read(space, base, Width::W32).unwrap();
        assert_eq!(v.as_u64(), Some(0xdead_beef));
        // Byte-level little-endian layout.
        assert_eq!(
            mem.read(space, base, Width::W8).unwrap().as_u64(),
            Some(0xef)
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut mem = Memory::new();
        let space = mem.initial_space();
        let base = mem.alloc(space, 4);
        assert!(matches!(
            mem.read(space, base + 4, Width::W8),
            Err(BugKind::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.read(space, base, Width::W64),
            Err(BugKind::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.read(space, 0, Width::W8),
            Err(BugKind::OutOfBounds { .. })
        ));
    }

    #[test]
    fn use_after_free_detected() {
        let mut mem = Memory::new();
        let space = mem.initial_space();
        let base = mem.alloc(space, 8);
        mem.free(space, base).unwrap();
        assert!(matches!(
            mem.read(space, base, Width::W8),
            Err(BugKind::UseAfterFree { .. })
        ));
        assert!(matches!(
            mem.free(space, base),
            Err(BugKind::InvalidFree { .. })
        ));
    }

    #[test]
    fn forked_space_is_copy_on_write() {
        let mut mem = Memory::new();
        let parent = mem.initial_space();
        let base = mem.alloc_bytes(parent, b"hello");
        let child = mem.fork_space(parent);
        // Child sees the parent's data.
        assert_eq!(
            mem.read(child, base, Width::W8).unwrap().as_u64(),
            Some(u64::from(b'h'))
        );
        // Writing in the child does not affect the parent.
        mem.write(child, base, &Value::byte(b'H'), Width::W8)
            .unwrap();
        assert_eq!(
            mem.read(parent, base, Width::W8).unwrap().as_u64(),
            Some(u64::from(b'h'))
        );
        assert_eq!(
            mem.read(child, base, Width::W8).unwrap().as_u64(),
            Some(u64::from(b'H'))
        );
    }

    #[test]
    fn shared_objects_propagate_across_spaces() {
        let mut mem = Memory::new();
        let parent = mem.initial_space();
        let base = mem.alloc(parent, 8);
        mem.make_shared(parent, base).unwrap();
        let child = mem.fork_space(parent);
        // A write from the child is visible in the parent: the object lives
        // in the CoW domain.
        mem.write(child, base, &Value::concrete(77, Width::W32), Width::W32)
            .unwrap();
        assert_eq!(
            mem.read(parent, base, Width::W32).unwrap().as_u64(),
            Some(77)
        );
    }

    #[test]
    fn deterministic_allocation_sequence() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        let sa = a.initial_space();
        let sb = b.initial_space();
        let addrs_a: Vec<u64> = (0..10).map(|i| a.alloc(sa, i * 3 + 1)).collect();
        let addrs_b: Vec<u64> = (0..10).map(|i| b.alloc(sb, i * 3 + 1)).collect();
        assert_eq!(addrs_a, addrs_b);
    }

    #[test]
    fn cstring_reading() {
        let mut mem = Memory::new();
        let space = mem.initial_space();
        let base = mem.alloc_bytes(space, b"GET /index.html\0junk");
        let s = mem.read_cstring(space, base, 64).unwrap();
        assert_eq!(&s, b"GET /index.html");
    }
}
