//! Threads, processes, call frames, and wait lists.

use crate::memory::AddressSpaceId;
use crate::value::Value;
use c9_ir::{BlockId, FuncId, RegId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a thread within a state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

/// Identifier of a process within a state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

/// Identifier of a wait list (sleep queue), as returned by the `get_wlist`
/// engine primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WaitListId(pub u32);

/// One activation record on a thread's call stack.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The function being executed.
    pub func: FuncId,
    /// The block currently executing.
    pub block: BlockId,
    /// Index of the next instruction to execute within the block; equal to
    /// the block length when the terminator is next.
    pub instr_idx: usize,
    /// The register file.
    pub regs: Vec<Value>,
    /// Where the caller wants the return value, if anywhere.
    pub return_to: Option<RegId>,
}

impl Frame {
    /// Creates a frame positioned at the entry of `func`.
    pub fn new(func: FuncId, entry: BlockId, num_regs: usize, return_to: Option<RegId>) -> Frame {
        Frame {
            func,
            block: entry,
            instr_idx: 0,
            regs: vec![Value::concrete(0, c9_expr::Width::W64); num_regs],
            return_to,
        }
    }
}

/// Scheduling status of a thread.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadStatus {
    /// Ready to run.
    Runnable,
    /// Sleeping on a wait list.
    Sleeping(WaitListId),
    /// Finished (either returned from its start function or terminated).
    Terminated,
}

/// A symbolic thread: a call stack scheduled cooperatively by the engine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Thread {
    /// Identifier of the thread.
    pub tid: ThreadId,
    /// The process this thread belongs to.
    pub pid: ProcessId,
    /// The call stack; the last frame is the active one.
    pub frames: Vec<Frame>,
    /// Scheduling status.
    pub status: ThreadStatus,
    /// Set when the syscall that put this thread to sleep must be re-executed
    /// when the thread wakes up (blocking-syscall restart semantics).
    pub restart_syscall: bool,
}

impl Thread {
    /// Whether the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.status == ThreadStatus::Runnable
    }

    /// The active frame.
    pub fn top_frame(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The active frame, mutably.
    pub fn top_frame_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }
}

/// A process: an address space plus bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Identifier of the process.
    pub pid: ProcessId,
    /// Parent process, if any.
    pub parent: Option<ProcessId>,
    /// The address space of this process.
    pub space: AddressSpaceId,
    /// Whether the process has terminated.
    pub terminated: bool,
    /// Exit code, once terminated.
    pub exit_code: i64,
}

/// Wait lists: queues of sleeping threads, plus the id allocator.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitLists {
    next: u32,
    queues: BTreeMap<WaitListId, Vec<ThreadId>>,
}

impl WaitLists {
    /// Allocates a fresh wait list.
    pub fn create(&mut self) -> WaitListId {
        let id = WaitListId(self.next);
        self.next += 1;
        self.queues.insert(id, Vec::new());
        id
    }

    /// Enqueues a thread on a wait list (creating the list if needed, which
    /// lets the environment model use arbitrary identifiers).
    pub fn enqueue(&mut self, wlist: WaitListId, tid: ThreadId) {
        self.next = self.next.max(wlist.0 + 1);
        self.queues.entry(wlist).or_default().push(tid);
    }

    /// Dequeues one thread (FIFO), or all threads, from a wait list.
    pub fn dequeue(&mut self, wlist: WaitListId, all: bool) -> Vec<ThreadId> {
        match self.queues.get_mut(&wlist) {
            Some(queue) if !queue.is_empty() => {
                if all {
                    std::mem::take(queue)
                } else {
                    vec![queue.remove(0)]
                }
            }
            _ => Vec::new(),
        }
    }

    /// Number of threads currently waiting on `wlist`.
    pub fn waiting_on(&self, wlist: WaitListId) -> usize {
        self.queues.get(&wlist).map(|q| q.len()).unwrap_or(0)
    }

    /// Total number of sleeping thread entries.
    pub fn total_waiting(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_list_fifo_order() {
        let mut wl = WaitLists::default();
        let q = wl.create();
        wl.enqueue(q, ThreadId(1));
        wl.enqueue(q, ThreadId(2));
        wl.enqueue(q, ThreadId(3));
        assert_eq!(wl.waiting_on(q), 3);
        assert_eq!(wl.dequeue(q, false), vec![ThreadId(1)]);
        assert_eq!(wl.dequeue(q, true), vec![ThreadId(2), ThreadId(3)]);
        assert_eq!(wl.dequeue(q, false), vec![]);
    }

    #[test]
    fn wait_list_ids_are_unique() {
        let mut wl = WaitLists::default();
        let a = wl.create();
        let b = wl.create();
        assert_ne!(a, b);
    }

    #[test]
    fn enqueue_on_foreign_id_does_not_collide() {
        let mut wl = WaitLists::default();
        wl.enqueue(WaitListId(10), ThreadId(0));
        let next = wl.create();
        assert!(next.0 > 10);
    }
}
