//! Termination reasons and bug reports.

use c9_ir::AbortKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an execution state stopped executing.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationReason {
    /// The program exited normally with the given code.
    Exit(i64),
    /// All threads finished.
    Finished,
    /// A bug was detected on this path.
    Bug(BugKind),
    /// The branch taken was infeasible under the path constraints (should
    /// not normally happen; kept for robustness).
    Infeasible,
    /// The per-path instruction limit was hit — the hang-detection mechanism
    /// described in §7.3.3 of the paper.
    MaxInstructions,
    /// The state was silenced by the engine (e.g. exceeded memory limits).
    Killed(String),
    /// Replay of a transferred job diverged: the recorded decision sequence
    /// no longer matches the branch structure the replayed execution
    /// reached (a corrupted or stale job). The state must be discarded —
    /// never explored further, and never counted as a completed path.
    ReplayDivergence {
        /// How many recorded decisions had been consumed when the replay
        /// diverged.
        depth: usize,
        /// What disagreed (branch/schedule/syscall mismatch, early
        /// termination, …).
        detail: String,
    },
}

impl TerminationReason {
    /// Whether this termination represents a detected bug (including hangs
    /// and deadlocks).
    pub fn is_bug(&self) -> bool {
        matches!(
            self,
            TerminationReason::Bug(_) | TerminationReason::MaxInstructions
        )
    }
}

/// Kinds of bugs the engine can detect.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugKind {
    /// The program executed an `Abort` terminator.
    Abort {
        /// What kind of abort site it was.
        kind: AbortKind,
        /// The message attached to the abort site.
        message: String,
    },
    /// An `Assert` instruction failed.
    AssertFailure {
        /// The assertion message.
        message: String,
    },
    /// A memory access fell outside every live allocation.
    OutOfBounds {
        /// The accessed address.
        addr: u64,
        /// The access size in bytes.
        size: usize,
    },
    /// An access hit a freed allocation.
    UseAfterFree {
        /// The accessed address.
        addr: u64,
    },
    /// `Free` was called on an address that is not the base of a live
    /// allocation.
    InvalidFree {
        /// The freed address.
        addr: u64,
    },
    /// A division or remainder had a (possibly) zero divisor.
    DivisionByZero,
    /// No runnable thread exists and at least one thread is sleeping.
    Deadlock,
    /// The program invoked an unknown syscall number.
    UnknownSyscall(u32),
    /// The modelled heap limit (set via `set_max_heap`) was exceeded.
    OutOfMemory {
        /// The requested allocation size.
        requested: u64,
        /// The configured heap limit.
        limit: u64,
    },
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::Abort { kind, message } => write!(f, "abort ({kind:?}): {message}"),
            BugKind::AssertFailure { message } => write!(f, "assertion failed: {message}"),
            BugKind::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at {addr:#x}")
            }
            BugKind::UseAfterFree { addr } => write!(f, "use after free at {addr:#x}"),
            BugKind::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            BugKind::DivisionByZero => write!(f, "division by zero"),
            BugKind::Deadlock => write!(f, "deadlock: all threads sleeping"),
            BugKind::UnknownSyscall(nr) => write!(f, "unknown syscall {nr}"),
            BugKind::OutOfMemory { requested, limit } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds heap limit {limit}"
                )
            }
        }
    }
}
