//! Concrete test cases generated from explored paths.

use crate::errors::TerminationReason;
use crate::state::{ExecutionState, PathChoice};
use c9_expr::Assignment;
use c9_solver::Solver;
use serde::{Deserialize, Serialize};

/// One concrete input binding of a test case.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputBinding {
    /// Name of the symbolic input (e.g. `"packet0[3]"`).
    pub name: String,
    /// The concrete value the solver chose.
    pub value: u64,
    /// Width of the input in bits.
    pub width_bits: u32,
}

/// A concrete test case: inputs that drive the program down one explored
/// path, together with the path itself and how it ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestCase {
    /// Inputs in symbol-allocation order.
    pub inputs: Vec<InputBinding>,
    /// The decisions taken along the path.
    pub path: Vec<PathChoice>,
    /// How the path terminated.
    pub termination: TerminationReason,
    /// Instructions executed along the path.
    pub instructions: u64,
}

impl TestCase {
    /// Builds a test case for a terminated state by solving its path
    /// constraints. Returns `None` when the constraints cannot be solved
    /// (which normally cannot happen for a feasible path).
    pub fn from_state(state: &ExecutionState, solver: &Solver) -> Option<TestCase> {
        let termination = state.termination.clone()?;
        let model = if state.constraints.is_empty() {
            Assignment::new()
        } else {
            solver.get_model(&state.constraints)?
        };
        let inputs = state
            .symbols
            .iter()
            .map(|info| InputBinding {
                name: info.name.clone(),
                value: model.get(info.id).unwrap_or(0),
                width_bits: info.width.bits(),
            })
            .collect();
        Some(TestCase {
            inputs,
            path: state.path.clone(),
            termination,
            instructions: state.total_instructions(),
        })
    }

    /// Whether the test case exposes a bug.
    pub fn is_bug(&self) -> bool {
        self.termination.is_bug()
    }

    /// Reassembles the bytes of all inputs whose names start with `prefix`,
    /// in allocation order — e.g. the bytes of one symbolic packet.
    pub fn bytes_with_prefix(&self, prefix: &str) -> Vec<u8> {
        self.inputs
            .iter()
            .filter(|b| b.name.starts_with(prefix) && b.width_bits == 8)
            .map(|b| b.value as u8)
            .collect()
    }
}
