//! Exploration strategies (searchers).
//!
//! A searcher decides which active state to step next. The interface mirrors
//! KLEE's: the engine informs the searcher when states are added (initial
//! state, forks) and removed (termination), and asks it to `select` the next
//! state to run.
//!
//! The searchers provided here are the building blocks of the strategies the
//! paper uses in its evaluation (§7): an interleaving of random-path and
//! coverage-optimized search. The true random-path strategy walks the
//! execution tree from the root; in `c9-vm` (which has no global tree) it is
//! approximated by weighting states inversely to their depth, while the
//! cluster layer in `c9-core` implements the exact tree walk.

use crate::state::{ExecutionState, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Exploration strategy selector, shippable over the wire to remote workers.
///
/// The cluster layer maps each kind to the corresponding searcher
/// construction; the enum lives here so both the in-process worker
/// configuration and the `c9-net` run spec can share it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Interleaved random-path and coverage-optimized search (the paper's
    /// evaluation configuration).
    #[default]
    KleeDefault,
    /// Depth-first search.
    Dfs,
    /// Breadth-first search.
    Bfs,
    /// Uniform random state selection.
    Random,
}

/// Metadata about a state that searchers may use for prioritization.
#[derive(Clone, Copy, Debug)]
pub struct StateMeta {
    /// Identifier of the state.
    pub id: StateId,
    /// Depth in the execution tree.
    pub depth: usize,
    /// Number of lines newly covered by the state's most recent step.
    pub new_coverage: usize,
}

impl StateMeta {
    /// Extracts metadata from a state.
    pub fn of(state: &ExecutionState) -> StateMeta {
        StateMeta {
            id: state.id,
            depth: state.depth(),
            new_coverage: state.last_new_coverage,
        }
    }
}

/// A strategy for choosing the next state to execute.
pub trait Searcher: Send {
    /// Registers a new active state.
    fn add(&mut self, meta: StateMeta);
    /// Unregisters a state (terminated or transferred away).
    fn remove(&mut self, id: StateId);
    /// Chooses the next state to execute, or `None` if no states remain.
    fn select(&mut self) -> Option<StateId>;
    /// Number of states currently registered.
    fn len(&self) -> usize;
    /// Whether no states are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Name of the strategy (for reports).
    fn name(&self) -> &'static str;
}

/// Depth-first search: always runs the most recently added state.
#[derive(Debug, Default)]
pub struct DfsSearcher {
    stack: Vec<StateId>,
}

impl DfsSearcher {
    /// Creates an empty DFS searcher.
    pub fn new() -> DfsSearcher {
        DfsSearcher::default()
    }
}

impl Searcher for DfsSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.stack.push(meta.id);
    }
    fn remove(&mut self, id: StateId) {
        self.stack.retain(|s| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        self.stack.last().copied()
    }
    fn len(&self) -> usize {
        self.stack.len()
    }
    fn name(&self) -> &'static str {
        "dfs"
    }
}

/// Breadth-first search: runs states in the order they were created.
#[derive(Debug, Default)]
pub struct BfsSearcher {
    queue: VecDeque<StateId>,
}

impl BfsSearcher {
    /// Creates an empty BFS searcher.
    pub fn new() -> BfsSearcher {
        BfsSearcher::default()
    }
}

impl Searcher for BfsSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.queue.push_back(meta.id);
    }
    fn remove(&mut self, id: StateId) {
        self.queue.retain(|s| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        // Rotate so repeated selections cycle through states fairly.
        if let Some(front) = self.queue.pop_front() {
            self.queue.push_back(front);
            Some(front)
        } else {
            None
        }
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn name(&self) -> &'static str {
        "bfs"
    }
}

/// Uniformly random selection among active states.
#[derive(Debug)]
pub struct RandomSearcher {
    states: Vec<StateId>,
    rng: StdRng,
}

impl RandomSearcher {
    /// Creates a random searcher with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> RandomSearcher {
        RandomSearcher {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Searcher for RandomSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.states.push(meta.id);
    }
    fn remove(&mut self, id: StateId) {
        self.states.retain(|s| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        if self.states.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.states.len());
        Some(self.states[idx])
    }
    fn len(&self) -> usize {
        self.states.len()
    }
    fn name(&self) -> &'static str {
        "random-state"
    }
}

/// Weighted random selection approximating KLEE's random-path strategy:
/// shallower states get exponentially larger weight, which is equivalent to
/// walking a balanced execution tree from the root.
#[derive(Debug)]
pub struct RandomPathSearcher {
    states: Vec<(StateId, usize)>,
    rng: StdRng,
}

impl RandomPathSearcher {
    /// Creates a random-path searcher with a fixed seed.
    pub fn new(seed: u64) -> RandomPathSearcher {
        RandomPathSearcher {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn weight(depth: usize) -> f64 {
        // 2^-min(depth, 60) without underflow.
        let d = depth.min(60) as i32;
        2f64.powi(-d)
    }
}

impl Searcher for RandomPathSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.states.push((meta.id, meta.depth));
    }
    fn remove(&mut self, id: StateId) {
        self.states.retain(|(s, _)| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        if self.states.is_empty() {
            return None;
        }
        let total: f64 = self.states.iter().map(|(_, d)| Self::weight(*d)).sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (id, depth) in &self.states {
            pick -= Self::weight(*depth);
            if pick <= 0.0 {
                return Some(*id);
            }
        }
        self.states.last().map(|(id, _)| *id)
    }
    fn len(&self) -> usize {
        self.states.len()
    }
    fn name(&self) -> &'static str {
        "random-path"
    }
}

/// Coverage-optimized search: states whose last step discovered new coverage
/// are strongly preferred, the rest are weighted uniformly.
#[derive(Debug)]
pub struct CoverageOptimizedSearcher {
    states: Vec<(StateId, usize)>,
    rng: StdRng,
}

impl CoverageOptimizedSearcher {
    /// Creates a coverage-optimized searcher with a fixed seed.
    pub fn new(seed: u64) -> CoverageOptimizedSearcher {
        CoverageOptimizedSearcher {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Searcher for CoverageOptimizedSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.states.push((meta.id, meta.new_coverage));
    }
    fn remove(&mut self, id: StateId) {
        self.states.retain(|(s, _)| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        if self.states.is_empty() {
            return None;
        }
        let total: f64 = self
            .states
            .iter()
            .map(|(_, c)| 1.0 + 10.0 * *c as f64)
            .sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (id, c) in &self.states {
            pick -= 1.0 + 10.0 * *c as f64;
            if pick <= 0.0 {
                return Some(*id);
            }
        }
        self.states.last().map(|(id, _)| *id)
    }
    fn len(&self) -> usize {
        self.states.len()
    }
    fn name(&self) -> &'static str {
        "coverage-optimized"
    }
}

/// Interleaves several searchers round-robin — the configuration used in the
/// paper's evaluation is an interleaving of random-path and
/// coverage-optimized search.
pub struct InterleavedSearcher {
    searchers: Vec<Box<dyn Searcher>>,
    next: usize,
}

impl InterleavedSearcher {
    /// Creates an interleaving of the given searchers.
    pub fn new(searchers: Vec<Box<dyn Searcher>>) -> InterleavedSearcher {
        assert!(!searchers.is_empty());
        InterleavedSearcher { searchers, next: 0 }
    }

    /// The default strategy of the paper's evaluation: random-path
    /// interleaved with coverage-optimized search.
    pub fn klee_default(seed: u64) -> InterleavedSearcher {
        InterleavedSearcher::new(vec![
            Box::new(RandomPathSearcher::new(seed)),
            Box::new(CoverageOptimizedSearcher::new(seed.wrapping_add(1))),
        ])
    }
}

impl Searcher for InterleavedSearcher {
    fn add(&mut self, meta: StateMeta) {
        for s in &mut self.searchers {
            s.add(meta);
        }
    }
    fn remove(&mut self, id: StateId) {
        for s in &mut self.searchers {
            s.remove(id);
        }
    }
    fn select(&mut self) -> Option<StateId> {
        let n = self.searchers.len();
        for i in 0..n {
            let idx = (self.next + i) % n;
            if let Some(id) = self.searchers[idx].select() {
                self.next = (idx + 1) % n;
                return Some(id);
            }
        }
        None
    }
    fn len(&self) -> usize {
        self.searchers[0].len()
    }
    fn name(&self) -> &'static str {
        "interleaved"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, depth: usize, cov: usize) -> StateMeta {
        StateMeta {
            id: StateId(id),
            depth,
            new_coverage: cov,
        }
    }

    #[test]
    fn dfs_runs_newest_first() {
        let mut s = DfsSearcher::new();
        s.add(meta(1, 0, 0));
        s.add(meta(2, 1, 0));
        assert_eq!(s.select(), Some(StateId(2)));
        s.remove(StateId(2));
        assert_eq!(s.select(), Some(StateId(1)));
        s.remove(StateId(1));
        assert_eq!(s.select(), None);
    }

    #[test]
    fn bfs_cycles_fairly() {
        let mut s = BfsSearcher::new();
        s.add(meta(1, 0, 0));
        s.add(meta(2, 0, 0));
        let first = s.select().unwrap();
        let second = s.select().unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn random_searchers_are_deterministic_per_seed() {
        let mut a = RandomSearcher::new(7);
        let mut b = RandomSearcher::new(7);
        for i in 0..10 {
            a.add(meta(i, 0, 0));
            b.add(meta(i, 0, 0));
        }
        for _ in 0..20 {
            assert_eq!(a.select(), b.select());
        }
    }

    #[test]
    fn random_path_prefers_shallow_states() {
        let mut s = RandomPathSearcher::new(3);
        s.add(meta(1, 0, 0));
        s.add(meta(2, 30, 0));
        let mut shallow = 0;
        for _ in 0..200 {
            if s.select() == Some(StateId(1)) {
                shallow += 1;
            }
        }
        assert!(shallow > 150, "shallow state selected only {shallow}/200");
    }

    #[test]
    fn coverage_optimized_prefers_new_coverage() {
        let mut s = CoverageOptimizedSearcher::new(3);
        s.add(meta(1, 0, 0));
        s.add(meta(2, 0, 5));
        let mut covered = 0;
        for _ in 0..200 {
            if s.select() == Some(StateId(2)) {
                covered += 1;
            }
        }
        assert!(covered > 120, "covering state selected only {covered}/200");
    }

    #[test]
    fn interleaved_alternates_and_stays_consistent() {
        let mut s = InterleavedSearcher::klee_default(1);
        assert!(s.is_empty());
        s.add(meta(1, 0, 0));
        s.add(meta(2, 3, 2));
        assert_eq!(s.len(), 2);
        assert!(s.select().is_some());
        s.remove(StateId(1));
        s.remove(StateId(2));
        assert_eq!(s.select(), None);
    }
}
