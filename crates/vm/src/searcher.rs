//! Exploration strategies (searchers).
//!
//! A searcher decides which active state to step next. The interface mirrors
//! KLEE's: the engine informs the searcher when states are added (initial
//! state, forks) and removed (termination), and asks it to `select` the next
//! state to run.
//!
//! The searchers provided here are the building blocks of the strategies the
//! paper uses in its evaluation (§7): an interleaving of random-path and
//! coverage-optimized search. The true random-path strategy walks the
//! execution tree from the root; in `c9-vm` (which has no global tree) it is
//! approximated by weighting states inversely to their depth, while the
//! cluster layer in `c9-core` implements the exact tree walk.

use crate::state::{ExecutionState, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Exploration strategy selector, shippable over the wire to remote workers.
///
/// The cluster layer maps each kind to the corresponding searcher
/// construction (see [`build_searcher`]); the enum lives here so both the
/// in-process worker configuration and the `c9-net` run spec can share it.
/// Each kind has a stable command-line name with a [`std::fmt::Display`] /
/// [`std::str::FromStr`] round-trip, used by the coordinator's
/// `--portfolio` flag.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum StrategyKind {
    /// Interleaved random-path and coverage-optimized search (the paper's
    /// evaluation configuration).
    #[default]
    KleeDefault,
    /// Depth-first search.
    Dfs,
    /// Breadth-first search.
    Bfs,
    /// Uniform random state selection.
    Random,
    /// Random tree-path selection alone (shallow states weighted up).
    RandomPath,
    /// Coverage-optimized selection alone (recent new coverage weighted up).
    CovOpt,
    /// Class-uniform path analysis: states are bucketed into classes by
    /// coverage recency, call site, and query-cost tier, and selection is
    /// uniform across classes (see [`CupaSearcher`]).
    Cupa,
}

impl StrategyKind {
    /// Every strategy, in the order listed by error messages and docs.
    pub const ALL: [StrategyKind; 7] = [
        StrategyKind::KleeDefault,
        StrategyKind::Dfs,
        StrategyKind::Bfs,
        StrategyKind::Random,
        StrategyKind::RandomPath,
        StrategyKind::CovOpt,
        StrategyKind::Cupa,
    ];

    /// The stable command-line name of this strategy.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::KleeDefault => "klee-default",
            StrategyKind::Dfs => "dfs",
            StrategyKind::Bfs => "bfs",
            StrategyKind::Random => "random",
            StrategyKind::RandomPath => "random-path",
            StrategyKind::CovOpt => "cov-opt",
            StrategyKind::Cupa => "cupa",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown strategy name; its display lists
/// every valid name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseStrategyError {
    /// The name that failed to parse.
    pub unknown: String,
}

impl std::fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let valid: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.name()).collect();
        write!(
            f,
            "unknown strategy {:?}; valid strategies: {}",
            self.unknown,
            valid.join(", ")
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl std::str::FromStr for StrategyKind {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<StrategyKind, ParseStrategyError> {
        let normalized = s.trim();
        StrategyKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == normalized)
            .ok_or_else(|| ParseStrategyError {
                unknown: normalized.to_string(),
            })
    }
}

/// Constructs the searcher implementing `kind`, seeded deterministically.
pub fn build_searcher(kind: StrategyKind, seed: u64) -> Box<dyn Searcher> {
    match kind {
        StrategyKind::KleeDefault => Box::new(InterleavedSearcher::klee_default(seed)),
        StrategyKind::Dfs => Box::new(DfsSearcher::new()),
        StrategyKind::Bfs => Box::new(BfsSearcher::new()),
        StrategyKind::Random => Box::new(RandomSearcher::new(seed)),
        StrategyKind::RandomPath => Box::new(RandomPathSearcher::new(seed)),
        StrategyKind::CovOpt => Box::new(CoverageOptimizedSearcher::new(seed)),
        StrategyKind::Cupa => Box::new(CupaSearcher::new(seed)),
    }
}

/// Metadata about a state that searchers may use for prioritization.
#[derive(Clone, Copy, Debug)]
pub struct StateMeta {
    /// Identifier of the state.
    pub id: StateId,
    /// Depth in the execution tree.
    pub depth: usize,
    /// Number of lines newly covered by the state's most recent step.
    pub new_coverage: usize,
    /// The function the state is currently executing (its call site, used
    /// by [`CupaSearcher`] classes); 0 when the state has no live frame.
    pub call_site: u32,
    /// Number of path constraints accumulated so far — a proxy for how
    /// expensive the state's solver queries are.
    pub query_cost: usize,
}

impl StateMeta {
    /// Extracts metadata from a state.
    pub fn of(state: &ExecutionState) -> StateMeta {
        StateMeta {
            id: state.id,
            depth: state.depth(),
            new_coverage: state.last_new_coverage,
            call_site: state.thread().top_frame().map(|f| f.func.0).unwrap_or(0),
            query_cost: state.constraints.len(),
        }
    }
}

/// A strategy for choosing the next state to execute.
///
/// The engine calls [`Searcher::add`] when a state becomes runnable
/// (initial state, forks, imported jobs), [`Searcher::remove`] when it
/// terminates or is transferred away, and [`Searcher::select`] to pick the
/// next state to run.
///
/// # Examples
///
/// ```
/// use c9_vm::{DfsSearcher, Searcher, StateId, StateMeta};
///
/// let mut searcher = DfsSearcher::new();
/// assert!(searcher.is_empty());
/// searcher.add(StateMeta {
///     id: StateId(1),
///     depth: 0,
///     new_coverage: 0,
///     call_site: 0,
///     query_cost: 0,
/// });
/// assert_eq!(searcher.select(), Some(StateId(1)));
/// searcher.remove(StateId(1));
/// assert_eq!(searcher.select(), None);
/// ```
pub trait Searcher: Send {
    /// Registers a new active state.
    fn add(&mut self, meta: StateMeta);
    /// Unregisters a state (terminated or transferred away).
    fn remove(&mut self, id: StateId);
    /// Chooses the next state to execute, or `None` if no states remain.
    fn select(&mut self) -> Option<StateId>;
    /// Number of states currently registered.
    fn len(&self) -> usize;
    /// Whether no states are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Name of the strategy (for reports).
    fn name(&self) -> &'static str;
}

/// Depth-first search: always runs the most recently added state.
#[derive(Debug, Default)]
pub struct DfsSearcher {
    stack: Vec<StateId>,
}

impl DfsSearcher {
    /// Creates an empty DFS searcher.
    pub fn new() -> DfsSearcher {
        DfsSearcher::default()
    }
}

impl Searcher for DfsSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.stack.push(meta.id);
    }
    fn remove(&mut self, id: StateId) {
        self.stack.retain(|s| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        self.stack.last().copied()
    }
    fn len(&self) -> usize {
        self.stack.len()
    }
    fn name(&self) -> &'static str {
        "dfs"
    }
}

/// Breadth-first search: runs states in the order they were created.
#[derive(Debug, Default)]
pub struct BfsSearcher {
    queue: VecDeque<StateId>,
}

impl BfsSearcher {
    /// Creates an empty BFS searcher.
    pub fn new() -> BfsSearcher {
        BfsSearcher::default()
    }
}

impl Searcher for BfsSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.queue.push_back(meta.id);
    }
    fn remove(&mut self, id: StateId) {
        self.queue.retain(|s| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        // Rotate so repeated selections cycle through states fairly.
        if let Some(front) = self.queue.pop_front() {
            self.queue.push_back(front);
            Some(front)
        } else {
            None
        }
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn name(&self) -> &'static str {
        "bfs"
    }
}

/// Uniformly random selection among active states.
#[derive(Debug)]
pub struct RandomSearcher {
    states: Vec<StateId>,
    rng: StdRng,
}

impl RandomSearcher {
    /// Creates a random searcher with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> RandomSearcher {
        RandomSearcher {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Searcher for RandomSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.states.push(meta.id);
    }
    fn remove(&mut self, id: StateId) {
        self.states.retain(|s| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        if self.states.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.states.len());
        Some(self.states[idx])
    }
    fn len(&self) -> usize {
        self.states.len()
    }
    fn name(&self) -> &'static str {
        "random-state"
    }
}

/// Weighted random selection approximating KLEE's random-path strategy:
/// shallower states get exponentially larger weight, which is equivalent to
/// walking a balanced execution tree from the root.
#[derive(Debug)]
pub struct RandomPathSearcher {
    states: Vec<(StateId, usize)>,
    rng: StdRng,
}

impl RandomPathSearcher {
    /// Creates a random-path searcher with a fixed seed.
    pub fn new(seed: u64) -> RandomPathSearcher {
        RandomPathSearcher {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn weight(depth: usize) -> f64 {
        // 2^-min(depth, 60) without underflow.
        let d = depth.min(60) as i32;
        2f64.powi(-d)
    }
}

impl Searcher for RandomPathSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.states.push((meta.id, meta.depth));
    }
    fn remove(&mut self, id: StateId) {
        self.states.retain(|(s, _)| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        if self.states.is_empty() {
            return None;
        }
        let total: f64 = self.states.iter().map(|(_, d)| Self::weight(*d)).sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (id, depth) in &self.states {
            pick -= Self::weight(*depth);
            if pick <= 0.0 {
                return Some(*id);
            }
        }
        self.states.last().map(|(id, _)| *id)
    }
    fn len(&self) -> usize {
        self.states.len()
    }
    fn name(&self) -> &'static str {
        "random-path"
    }
}

/// Coverage-optimized search: states whose last step discovered new coverage
/// are strongly preferred, the rest are weighted uniformly.
#[derive(Debug)]
pub struct CoverageOptimizedSearcher {
    states: Vec<(StateId, usize)>,
    rng: StdRng,
}

impl CoverageOptimizedSearcher {
    /// Creates a coverage-optimized searcher with a fixed seed.
    pub fn new(seed: u64) -> CoverageOptimizedSearcher {
        CoverageOptimizedSearcher {
            states: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Searcher for CoverageOptimizedSearcher {
    fn add(&mut self, meta: StateMeta) {
        self.states.push((meta.id, meta.new_coverage));
    }
    fn remove(&mut self, id: StateId) {
        self.states.retain(|(s, _)| *s != id);
    }
    fn select(&mut self) -> Option<StateId> {
        if self.states.is_empty() {
            return None;
        }
        let total: f64 = self
            .states
            .iter()
            .map(|(_, c)| 1.0 + 10.0 * *c as f64)
            .sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (id, c) in &self.states {
            pick -= 1.0 + 10.0 * *c as f64;
            if pick <= 0.0 {
                return Some(*id);
            }
        }
        self.states.last().map(|(id, _)| *id)
    }
    fn len(&self) -> usize {
        self.states.len()
    }
    fn name(&self) -> &'static str {
        "coverage-optimized"
    }
}

/// The class key of [`CupaSearcher`]: coverage-recency tier, call site,
/// query-cost tier.
type CupaClass = (u8, u32, u8);

/// Class-uniform path analysis (CUPA): states are partitioned into classes
/// and selection effort is spread *uniformly across classes* rather than
/// across states, so a huge cluster of sibling states (a loop fanning out,
/// a hot parser function) cannot starve the rest of the frontier.
///
/// Classes are keyed by three features:
///
/// * **coverage recency** — whether the state's most recent step discovered
///   new lines (covering states form their own classes, so fresh progress
///   keeps getting scheduled),
/// * **call site** — the function the state is currently executing, and
/// * **query-cost tier** — the accumulated path-constraint count bucketed
///   into powers-of-eight tiers, so solver-cheap states are not drowned out
///   by expensive ones.
///
/// Selection walks a rotation: each round visits every currently non-empty
/// class exactly once, in an order drawn uniformly at random, then picks a
/// uniformly random state within the visited class. This gives the
/// class-uniform guarantee deterministically: with `k` non-empty classes,
/// every class is selected at least once in any `k` consecutive picks.
#[derive(Debug)]
pub struct CupaSearcher {
    /// States of each class; a class is removed when it empties.
    classes: BTreeMap<CupaClass, Vec<StateId>>,
    /// Which class every registered state belongs to.
    index: BTreeMap<StateId, CupaClass>,
    /// Classes not yet visited in the current rotation (may contain stale
    /// keys of classes that emptied mid-rotation; `select` skips them).
    rotation: Vec<CupaClass>,
    rng: StdRng,
}

impl CupaSearcher {
    /// Creates a CUPA searcher with a fixed seed (deterministic runs).
    pub fn new(seed: u64) -> CupaSearcher {
        CupaSearcher {
            classes: BTreeMap::new(),
            index: BTreeMap::new(),
            rotation: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Buckets a state into its class.
    fn classify(meta: &StateMeta) -> CupaClass {
        let recency = u8::from(meta.new_coverage == 0);
        let cost_tier = match meta.query_cost {
            0..=7 => 0u8,
            8..=63 => 1,
            64..=511 => 2,
            _ => 3,
        };
        (recency, meta.call_site, cost_tier)
    }

    /// Number of currently non-empty classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }
}

impl Searcher for CupaSearcher {
    fn add(&mut self, meta: StateMeta) {
        let class = Self::classify(&meta);
        if let Some(old) = self.index.insert(meta.id, class) {
            if old != class {
                if let Some(states) = self.classes.get_mut(&old) {
                    states.retain(|s| *s != meta.id);
                    if states.is_empty() {
                        self.classes.remove(&old);
                    }
                }
            } else {
                return; // already registered under this class
            }
        }
        let states = self.classes.entry(class).or_default();
        if states.is_empty() && !self.rotation.contains(&class) {
            // A class that becomes non-empty mid-rotation joins it, keeping
            // the every-class-within-k-picks guarantee for newcomers too.
            // The containment check matters: the engine removes and re-adds
            // the running state around every execution slice, and a
            // sole-member class must not enqueue a duplicate rotation entry
            // each time (the rotation would grow without bound and the hot
            // class would be drawn many times per round, starving the rest).
            self.rotation.push(class);
        }
        states.push(meta.id);
    }

    fn remove(&mut self, id: StateId) {
        if let Some(class) = self.index.remove(&id) {
            if let Some(states) = self.classes.get_mut(&class) {
                states.retain(|s| *s != id);
                if states.is_empty() {
                    self.classes.remove(&class);
                }
            }
        }
    }

    fn select(&mut self) -> Option<StateId> {
        loop {
            if self.rotation.is_empty() {
                if self.classes.is_empty() {
                    return None;
                }
                self.rotation.extend(self.classes.keys().copied());
            }
            // Visit a uniformly random not-yet-visited class this rotation.
            let idx = if self.rotation.len() == 1 {
                0
            } else {
                self.rng.gen_range(0..self.rotation.len())
            };
            let class = self.rotation.swap_remove(idx);
            let Some(states) = self.classes.get(&class) else {
                continue; // emptied mid-rotation; skip its stale key
            };
            let pick = if states.len() == 1 {
                0
            } else {
                self.rng.gen_range(0..states.len())
            };
            return Some(states[pick]);
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn name(&self) -> &'static str {
        "cupa"
    }
}

/// Interleaves several searchers round-robin — the configuration used in the
/// paper's evaluation is an interleaving of random-path and
/// coverage-optimized search.
pub struct InterleavedSearcher {
    searchers: Vec<Box<dyn Searcher>>,
    next: usize,
}

impl InterleavedSearcher {
    /// Creates an interleaving of the given searchers.
    pub fn new(searchers: Vec<Box<dyn Searcher>>) -> InterleavedSearcher {
        assert!(!searchers.is_empty());
        InterleavedSearcher { searchers, next: 0 }
    }

    /// The default strategy of the paper's evaluation: random-path
    /// interleaved with coverage-optimized search.
    pub fn klee_default(seed: u64) -> InterleavedSearcher {
        InterleavedSearcher::new(vec![
            Box::new(RandomPathSearcher::new(seed)),
            Box::new(CoverageOptimizedSearcher::new(seed.wrapping_add(1))),
        ])
    }
}

impl Searcher for InterleavedSearcher {
    fn add(&mut self, meta: StateMeta) {
        for s in &mut self.searchers {
            s.add(meta);
        }
    }
    fn remove(&mut self, id: StateId) {
        for s in &mut self.searchers {
            s.remove(id);
        }
    }
    fn select(&mut self) -> Option<StateId> {
        let n = self.searchers.len();
        for i in 0..n {
            let idx = (self.next + i) % n;
            if let Some(id) = self.searchers[idx].select() {
                self.next = (idx + 1) % n;
                return Some(id);
            }
        }
        None
    }
    fn len(&self) -> usize {
        self.searchers[0].len()
    }
    fn name(&self) -> &'static str {
        "interleaved"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, depth: usize, cov: usize) -> StateMeta {
        StateMeta {
            id: StateId(id),
            depth,
            new_coverage: cov,
            call_site: 0,
            query_cost: 0,
        }
    }

    fn meta_in(id: u64, cov: usize, call_site: u32, query_cost: usize) -> StateMeta {
        StateMeta {
            id: StateId(id),
            depth: 0,
            new_coverage: cov,
            call_site,
            query_cost,
        }
    }

    #[test]
    fn dfs_runs_newest_first() {
        let mut s = DfsSearcher::new();
        s.add(meta(1, 0, 0));
        s.add(meta(2, 1, 0));
        assert_eq!(s.select(), Some(StateId(2)));
        s.remove(StateId(2));
        assert_eq!(s.select(), Some(StateId(1)));
        s.remove(StateId(1));
        assert_eq!(s.select(), None);
    }

    #[test]
    fn bfs_cycles_fairly() {
        let mut s = BfsSearcher::new();
        s.add(meta(1, 0, 0));
        s.add(meta(2, 0, 0));
        let first = s.select().unwrap();
        let second = s.select().unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn random_searchers_are_deterministic_per_seed() {
        let mut a = RandomSearcher::new(7);
        let mut b = RandomSearcher::new(7);
        for i in 0..10 {
            a.add(meta(i, 0, 0));
            b.add(meta(i, 0, 0));
        }
        for _ in 0..20 {
            assert_eq!(a.select(), b.select());
        }
    }

    #[test]
    fn random_path_prefers_shallow_states() {
        let mut s = RandomPathSearcher::new(3);
        s.add(meta(1, 0, 0));
        s.add(meta(2, 30, 0));
        let mut shallow = 0;
        for _ in 0..200 {
            if s.select() == Some(StateId(1)) {
                shallow += 1;
            }
        }
        assert!(shallow > 150, "shallow state selected only {shallow}/200");
    }

    #[test]
    fn coverage_optimized_prefers_new_coverage() {
        let mut s = CoverageOptimizedSearcher::new(3);
        s.add(meta(1, 0, 0));
        s.add(meta(2, 0, 5));
        let mut covered = 0;
        for _ in 0..200 {
            if s.select() == Some(StateId(2)) {
                covered += 1;
            }
        }
        assert!(covered > 120, "covering state selected only {covered}/200");
    }

    #[test]
    fn strategy_names_round_trip() {
        for kind in StrategyKind::ALL {
            let parsed: StrategyKind = kind.name().parse().expect("round trip");
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn unknown_strategy_error_lists_valid_names() {
        let err = "simulated-annealing"
            .parse::<StrategyKind>()
            .expect_err("unknown name must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("simulated-annealing"), "message: {msg}");
        for kind in StrategyKind::ALL {
            assert!(msg.contains(kind.name()), "message misses {kind}: {msg}");
        }
    }

    #[test]
    fn build_searcher_covers_every_kind() {
        for kind in StrategyKind::ALL {
            let mut s = build_searcher(kind, 11);
            s.add(meta(1, 0, 0));
            assert_eq!(s.select(), Some(StateId(1)), "{kind} lost its state");
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn interleaved_is_fair_across_sub_searchers() {
        // Two sub-searchers with deterministic favourites: DFS favours the
        // newest state, BFS cycles. Round-robin interleaving must consult
        // them in strict alternation, so over 2k picks each sub-searcher
        // decides exactly k times.
        let mut s = InterleavedSearcher::new(vec![
            Box::new(DfsSearcher::new()),
            Box::new(BfsSearcher::new()),
        ]);
        s.add(meta(1, 0, 0));
        s.add(meta(2, 1, 0));
        // DFS always answers 2; BFS alternates 1, 2, 1, 2...
        let picks: Vec<StateId> = (0..4).map(|_| s.select().unwrap()).collect();
        assert_eq!(
            picks,
            vec![StateId(2), StateId(1), StateId(2), StateId(2)],
            "round-robin order violated"
        );
        // Removing the states empties both sub-searchers consistently.
        s.remove(StateId(1));
        s.remove(StateId(2));
        assert_eq!(s.select(), None);
    }

    #[test]
    fn cupa_selects_every_nonempty_class_within_one_rotation() {
        let mut s = CupaSearcher::new(5);
        // Three classes: covering, plain call-site 1, expensive call-site 2.
        s.add(meta_in(1, 3, 1, 0));
        s.add(meta_in(2, 0, 1, 0));
        s.add(meta_in(3, 0, 2, 1000));
        assert_eq!(s.num_classes(), 3);
        // A giant sibling cluster in one more class must not starve others.
        for id in 10..60 {
            s.add(meta_in(id, 0, 7, 0));
        }
        assert_eq!(s.num_classes(), 4);
        let k = s.num_classes();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..k {
            let picked = s.select().expect("states available");
            seen.insert(CupaSearcher::classify(&match picked {
                StateId(1) => meta_in(1, 3, 1, 0),
                StateId(2) => meta_in(2, 0, 1, 0),
                StateId(3) => meta_in(3, 0, 2, 1000),
                StateId(id) => meta_in(id, 0, 7, 0),
            }));
        }
        assert_eq!(seen.len(), k, "a class was starved within one rotation");
    }

    #[test]
    fn cupa_skips_emptied_classes_and_empties_cleanly() {
        let mut s = CupaSearcher::new(9);
        s.add(meta_in(1, 0, 1, 0));
        s.add(meta_in(2, 0, 2, 0));
        // Empty a class mid-rotation: its stale rotation entry must be
        // skipped, never selected.
        s.remove(StateId(1));
        for _ in 0..10 {
            assert_eq!(s.select(), Some(StateId(2)));
        }
        s.remove(StateId(2));
        assert_eq!(s.select(), None);
        assert_eq!(s.len(), 0);
        assert_eq!(s.num_classes(), 0);
    }

    #[test]
    fn cupa_is_deterministic_under_a_fixed_seed() {
        let build = || {
            let mut s = CupaSearcher::new(42);
            for id in 0..20 {
                s.add(meta_in(
                    id,
                    (id % 3) as usize,
                    (id % 4) as u32,
                    id as usize * 7,
                ));
            }
            s
        };
        let (mut a, mut b) = (build(), build());
        for _ in 0..100 {
            assert_eq!(a.select(), b.select());
        }
    }

    #[test]
    fn cupa_remove_readd_cycles_do_not_starve_other_classes() {
        // The engine removes and re-adds the running state around every
        // execution slice. A sole-member class cycled this way must not
        // accumulate rotation entries: afterwards, one rotation's worth of
        // picks still visits every class.
        let mut s = CupaSearcher::new(17);
        s.add(meta_in(1, 0, 1, 0)); // the hot, constantly-cycled state
        s.add(meta_in(2, 0, 2, 0));
        s.add(meta_in(3, 0, 3, 0));
        for _ in 0..1000 {
            s.remove(StateId(1));
            s.add(meta_in(1, 0, 1, 0));
        }
        let k = s.num_classes();
        assert_eq!(k, 3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..k {
            seen.insert(s.select().expect("states available"));
        }
        assert_eq!(
            seen.len(),
            k,
            "remove/re-add cycling let one class crowd out the rotation"
        );
    }

    #[test]
    fn cupa_reclassifies_a_readded_state() {
        let mut s = CupaSearcher::new(3);
        s.add(meta_in(1, 0, 1, 0));
        assert_eq!(s.num_classes(), 1);
        // The same state comes back (after a quantum) having covered new
        // lines: it must move to the covering class, not duplicate.
        s.add(meta_in(1, 5, 1, 0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_classes(), 1);
        assert_eq!(s.select(), Some(StateId(1)));
    }

    #[test]
    fn interleaved_alternates_and_stays_consistent() {
        let mut s = InterleavedSearcher::klee_default(1);
        assert!(s.is_empty());
        s.add(meta(1, 0, 0));
        s.add(meta(2, 3, 2));
        assert_eq!(s.len(), 2);
        assert!(s.select().is_some());
        s.remove(StateId(1));
        s.remove(StateId(2));
        assert_eq!(s.select(), None);
    }
}
