//! Line-coverage bit vectors.
//!
//! §3.3 of the paper: "coverage is represented as a bit vector, with one bit
//! for every line of code". Workers OR their local vector into the global
//! vector held by the load balancer, and receive the global vector back.

use c9_ir::LineId;
use serde::{Deserialize, Serialize};

/// A fixed-size bit vector over the line identifiers of one program.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSet {
    words: Vec<u64>,
    num_lines: usize,
}

impl CoverageSet {
    /// Creates an empty coverage set for a program with `num_lines` lines.
    pub fn new(num_lines: usize) -> CoverageSet {
        CoverageSet {
            words: vec![0; num_lines.div_ceil(64)],
            num_lines,
        }
    }

    /// Number of lines this set covers.
    pub fn num_lines(&self) -> usize {
        self.num_lines
    }

    /// Marks a line as covered. Returns `true` when the line was not covered
    /// before.
    pub fn cover(&mut self, line: LineId) -> bool {
        let idx = line.index();
        if idx >= self.num_lines {
            return false;
        }
        let (word, bit) = (idx / 64, idx % 64);
        let mask = 1u64 << bit;
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        newly
    }

    /// Whether the line is covered.
    pub fn is_covered(&self, line: LineId) -> bool {
        let idx = line.index();
        if idx >= self.num_lines {
            return false;
        }
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of covered lines.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Covered fraction in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.num_lines == 0 {
            return 0.0;
        }
        self.count() as f64 / self.num_lines as f64
    }

    /// ORs another coverage set into this one. Returns the number of newly
    /// covered lines.
    pub fn merge(&mut self, other: &CoverageSet) -> usize {
        debug_assert_eq!(self.num_lines, other.num_lines);
        let mut newly = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            newly += (*o & !*w).count_ones() as usize;
            *w |= *o;
        }
        newly
    }

    /// Number of lines covered by `other` but not by `self`.
    pub fn new_lines_in(&self, other: &CoverageSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(w, o)| (*o & !*w).count_ones() as usize)
            .sum()
    }

    /// Iterates over the covered line identifiers.
    pub fn iter_covered(&self) -> impl Iterator<Item = LineId> + '_ {
        (0..self.num_lines)
            .filter(|i| self.words[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|i| LineId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_and_count() {
        let mut c = CoverageSet::new(130);
        assert!(c.cover(LineId(0)));
        assert!(!c.cover(LineId(0)));
        assert!(c.cover(LineId(129)));
        assert!(c.is_covered(LineId(129)));
        assert!(!c.is_covered(LineId(128)));
        assert_eq!(c.count(), 2);
        assert!((c.ratio() - 2.0 / 130.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_lines_ignored() {
        let mut c = CoverageSet::new(10);
        assert!(!c.cover(LineId(100)));
        assert!(!c.is_covered(LineId(100)));
    }

    #[test]
    fn merge_counts_new_lines() {
        let mut a = CoverageSet::new(100);
        let mut b = CoverageSet::new(100);
        a.cover(LineId(1));
        a.cover(LineId(2));
        b.cover(LineId(2));
        b.cover(LineId(3));
        b.cover(LineId(4));
        assert_eq!(a.new_lines_in(&b), 2);
        let newly = a.merge(&b);
        assert_eq!(newly, 2);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn iter_covered_lists_set_lines() {
        let mut c = CoverageSet::new(70);
        c.cover(LineId(5));
        c.cover(LineId(65));
        let covered: Vec<u32> = c.iter_covered().map(|l| l.0).collect();
        assert_eq!(covered, vec![5, 65]);
    }
}
