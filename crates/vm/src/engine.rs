//! The single-node symbolic execution engine.
//!
//! [`Engine`] drives exploration of one program on one node, the way KLEE
//! does: it owns the set of active states, asks its [`Searcher`] which state
//! to run next, steps it with the [`Executor`], and collects test cases and
//! bug reports from terminated paths. The cluster layer (`c9-core`) does not
//! use `Engine` directly — each worker embeds an `Executor` and adds the
//! execution-tree bookkeeping required for job transfers — but `Engine` is
//! the single-node baseline the evaluation compares against ("1-worker
//! Cloud9" / KLEE).

use crate::coverage::CoverageSet;
use crate::env::Environment;
use crate::errors::TerminationReason;
use crate::executor::{Executor, ExecutorConfig, StepResult};
use crate::searcher::{Searcher, StateMeta};
use crate::state::{ExecutionState, StateId, StateIdGen};
use crate::testcase::TestCase;
use c9_ir::Program;
use c9_solver::Solver;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Limits for a single-node exploration run.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Executor (per-path) configuration.
    pub executor: ExecutorConfig,
    /// Stop after this many paths have terminated (0 = unlimited).
    pub max_paths: usize,
    /// Stop after this many instructions in total (0 = unlimited).
    pub max_instructions: u64,
    /// Stop after this much wall-clock time.
    pub max_time: Option<Duration>,
    /// Keep at most this many active states (0 = unlimited); when exceeded,
    /// the deepest states are terminated early.
    pub max_states: usize,
    /// Whether to solve for a concrete test case at the end of every path
    /// (disable to measure pure exploration throughput).
    pub generate_test_cases: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            executor: ExecutorConfig::default(),
            max_paths: 0,
            max_instructions: 0,
            max_time: None,
            max_states: 0,
            generate_test_cases: true,
        }
    }
}

/// Outcome of a run: everything the paper's evaluation measures at the level
/// of one node.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Number of completed (terminated) paths.
    pub paths_completed: usize,
    /// Test cases generated (one per completed path, when enabled).
    pub test_cases: Vec<TestCase>,
    /// Test cases that expose bugs.
    pub bugs: Vec<TestCase>,
    /// Union of line coverage over all explored paths.
    pub coverage: CoverageSet,
    /// Useful (non-replay) instructions executed.
    pub instructions: u64,
    /// Replay instructions executed (always 0 on a single node).
    pub replay_instructions: u64,
    /// Number of states still active when the run stopped.
    pub states_remaining: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Whether the exploration exhausted every path (no states remaining).
    pub exhausted: bool,
}

impl RunSummary {
    /// Line coverage as a fraction of the program's lines.
    pub fn coverage_ratio(&self) -> f64 {
        self.coverage.ratio()
    }
}

/// A single-node symbolic execution engine.
pub struct Engine {
    executor: Executor,
    solver: Arc<Solver>,
    config: EngineConfig,
    searcher: Box<dyn Searcher>,
    states: BTreeMap<StateId, ExecutionState>,
    ids: StateIdGen,
    program_lines: usize,
}

impl Engine {
    /// Creates an engine for `program` with the given environment model,
    /// searcher and configuration.
    pub fn new(
        program: Arc<Program>,
        env: Arc<dyn Environment>,
        searcher: Box<dyn Searcher>,
        config: EngineConfig,
    ) -> Engine {
        // The solver is shared only within this engine's thread (`Solver` is
        // not `Sync`); the `Arc` exists so test-case generation can hold it.
        #[allow(clippy::arc_with_non_send_sync)]
        let solver = Arc::new(Solver::new());
        let program_lines = program.loc();
        let executor = Executor::new(program.clone(), solver.clone(), env, config.executor);
        Engine {
            executor,
            solver,
            config,
            searcher,
            states: BTreeMap::new(),
            ids: StateIdGen::new(),
            program_lines,
        }
    }

    /// Access to the executor (e.g. for setting up custom initial states).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Access to the solver shared by this engine.
    pub fn solver(&self) -> &Arc<Solver> {
        &self.solver
    }

    /// Adds an initial state. When none is added before [`Engine::run`], the
    /// program's default initial state is used.
    pub fn add_state(&mut self, state: ExecutionState) {
        self.searcher.add(StateMeta::of(&state));
        self.states.insert(state.id, state);
    }

    /// Creates and adds the default initial state, returning its id.
    pub fn add_initial_state(&mut self) -> StateId {
        let id = self.ids.fresh();
        let state = self.executor.initial_state(id);
        self.add_state(state);
        id
    }

    /// Allocates a fresh state id (for externally constructed states).
    pub fn fresh_id(&mut self) -> StateId {
        self.ids.fresh()
    }

    /// Runs until a stopping condition from the configuration is reached, or
    /// every path has been explored.
    pub fn run(&mut self) -> RunSummary {
        let start = Instant::now();
        if self.states.is_empty() {
            self.add_initial_state();
        }
        let mut summary = RunSummary {
            coverage: CoverageSet::new(self.program_lines),
            ..RunSummary::default()
        };

        loop {
            if self.should_stop(&summary, start) {
                break;
            }
            let Some(id) = self.searcher.select() else {
                summary.exhausted = true;
                break;
            };
            let Some(mut state) = self.states.remove(&id) else {
                self.searcher.remove(id);
                continue;
            };
            self.searcher.remove(id);

            // Step the selected state until it forks or terminates, bounded
            // so the searcher still gets a say periodically.
            let mut budget = 512u32;
            loop {
                match self.executor.step(&mut state, &mut self.ids) {
                    StepResult::Continue => {
                        budget -= 1;
                        if budget == 0 {
                            self.reinsert(state);
                            break;
                        }
                    }
                    StepResult::Forked(siblings) => {
                        for sibling in siblings {
                            if sibling.is_terminated() {
                                self.finish_path(sibling, &mut summary);
                            } else {
                                self.searcher.add(StateMeta::of(&sibling));
                                self.states.insert(sibling.id, sibling);
                            }
                        }
                        self.reinsert(state);
                        break;
                    }
                    StepResult::Terminated(_) => {
                        self.finish_path(state, &mut summary);
                        break;
                    }
                }
            }

            self.enforce_state_limit(&mut summary);
        }

        summary.states_remaining = self.states.len();
        if self.states.is_empty() {
            summary.exhausted = true;
        }
        summary.elapsed = start.elapsed();
        // Account instructions of still-active states too.
        for state in self.states.values() {
            summary.instructions += state.stats.instructions;
            summary.replay_instructions += state.stats.replay_instructions;
            summary.coverage.merge(&state.coverage);
        }
        summary
    }

    fn reinsert(&mut self, state: ExecutionState) {
        self.searcher.add(StateMeta::of(&state));
        self.states.insert(state.id, state);
    }

    fn should_stop(&self, summary: &RunSummary, start: Instant) -> bool {
        if self.config.max_paths > 0 && summary.paths_completed >= self.config.max_paths {
            return true;
        }
        if self.config.max_instructions > 0 && summary.instructions >= self.config.max_instructions
        {
            return true;
        }
        if let Some(limit) = self.config.max_time {
            if start.elapsed() >= limit {
                return true;
            }
        }
        false
    }

    fn enforce_state_limit(&mut self, summary: &mut RunSummary) {
        if self.config.max_states == 0 {
            return;
        }
        while self.states.len() > self.config.max_states {
            // Kill the deepest state.
            let deepest = self
                .states
                .values()
                .max_by_key(|s| s.depth())
                .map(|s| s.id)
                .expect("non-empty");
            if let Some(mut victim) = self.states.remove(&deepest) {
                self.searcher.remove(deepest);
                victim.terminate(TerminationReason::Killed("state limit".to_string()));
                self.finish_path(victim, summary);
            }
        }
    }

    fn finish_path(&mut self, state: ExecutionState, summary: &mut RunSummary) {
        summary.paths_completed += 1;
        summary.instructions += state.stats.instructions;
        summary.replay_instructions += state.stats.replay_instructions;
        summary.coverage.merge(&state.coverage);
        let is_bug = state
            .termination
            .as_ref()
            .map(|t| t.is_bug())
            .unwrap_or(false);
        if self.config.generate_test_cases || is_bug {
            if let Some(tc) = TestCase::from_state(&state, &self.solver) {
                if tc.is_bug() {
                    summary.bugs.push(tc.clone());
                }
                if self.config.generate_test_cases {
                    summary.test_cases.push(tc);
                }
            }
        }
    }
}
