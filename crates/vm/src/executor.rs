//! The forking interpreter: executes one instruction of one state at a time.
//!
//! The executor is stateless apart from its configuration: all mutable
//! execution context lives in the [`ExecutionState`]. This is what allows a
//! Cloud9 worker to juggle thousands of states and to materialize transferred
//! jobs by replaying their paths with the very same stepping code.

use crate::env::{Environment, SyscallContext, SyscallEffect};
use crate::errors::{BugKind, TerminationReason};
use crate::state::{
    ExecutionState, PathChoice, ReplayCursor, SchedulerPolicy, StateId, StateIdGen,
};
use crate::sysno;
use crate::thread::{Frame, Process, ProcessId, Thread, ThreadId, ThreadStatus, WaitListId};
use crate::value::{ByteValue, Value};
use c9_expr::{BinaryOp, ConstValue, Expr, ExprRef, UnaryOp, Width};
use c9_ir::{FuncId, Instr, Operand, Program, RegId, Rvalue, Terminator};
use c9_solver::Solver;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of an [`Executor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Maximum instructions executed along a single path before the path is
    /// terminated with [`TerminationReason::MaxInstructions`] (the hang
    /// detector of §7.3.3). Zero disables the limit.
    pub max_instructions_per_path: u64,
    /// Maximum call-stack depth before the path is killed (guards against
    /// runaway recursion in target programs).
    pub max_call_depth: usize,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            max_instructions_per_path: 5_000_000,
            max_call_depth: 256,
        }
    }
}

/// The result of stepping a state by one instruction.
#[derive(Debug)]
pub enum StepResult {
    /// The state executed one instruction and can continue.
    Continue,
    /// The state forked; the returned siblings are new states that must also
    /// be explored (the stepped state itself continues as well).
    Forked(Vec<ExecutionState>),
    /// The state terminated.
    Terminated(TerminationReason),
}

/// The symbolic interpreter for one program.
pub struct Executor {
    program: Arc<Program>,
    solver: Arc<Solver>,
    env: Arc<dyn Environment>,
    config: ExecutorConfig,
}

impl Executor {
    /// Creates an executor for `program` using `solver` for feasibility
    /// queries and `env` to model the environment.
    pub fn new(
        program: Arc<Program>,
        solver: Arc<Solver>,
        env: Arc<dyn Environment>,
        config: ExecutorConfig,
    ) -> Executor {
        Executor {
            program,
            solver,
            env,
            config,
        }
    }

    /// The program under test.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The solver used by this executor.
    pub fn solver(&self) -> &Arc<Solver> {
        &self.solver
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Creates the initial execution state (the root of the execution tree).
    pub fn initial_state(&self, id: StateId) -> ExecutionState {
        ExecutionState::initial(id, &self.program, self.env.create_state())
    }

    /// Creates a state that will replay `path` from the root; used to
    /// materialize a job received from another worker.
    pub fn replay_state(&self, id: StateId, path: Vec<PathChoice>) -> ExecutionState {
        let mut state = self.initial_state(id);
        state.replay = Some(ReplayCursor::new(path));
        state
    }

    /// Executes one instruction (or terminator) of `state`.
    pub fn step(&self, state: &mut ExecutionState, ids: &mut StateIdGen) -> StepResult {
        if let Some(reason) = &state.termination {
            return StepResult::Terminated(reason.clone());
        }

        // Per-path instruction budget (hang detection).
        if self.config.max_instructions_per_path > 0
            && state.total_instructions() >= self.config.max_instructions_per_path
        {
            state.terminate(TerminationReason::MaxInstructions);
            return StepResult::Terminated(TerminationReason::MaxInstructions);
        }

        // Make sure a runnable thread is scheduled.
        if !state.thread().is_runnable() && !state.schedule_round_robin() {
            return self.no_runnable_thread(state);
        }

        // Fetch.
        let frame = match state.thread().top_frame() {
            Some(f) => f.clone_position(),
            None => {
                // A runnable thread without frames is finished.
                state.thread_mut().status = ThreadStatus::Terminated;
                return StepResult::Continue;
            }
        };
        let function = self.program.function(frame.0);
        let block = function.block(frame.1);

        // Account the instruction.
        if state.is_replaying() {
            state.stats.replay_instructions += 1;
        } else {
            state.stats.instructions += 1;
        }

        if frame.2 < block.instrs.len() {
            let instr = block.instrs[frame.2].clone();
            state.last_new_coverage = usize::from(state.coverage.cover(instr.line()));
            // Advance the pc before executing so calls/returns see the right
            // continuation point; sleep-with-restart rewinds explicitly.
            if let Some(f) = state.thread_mut().top_frame_mut() {
                f.instr_idx += 1;
            }
            self.exec_instr(state, &instr, ids)
        } else {
            let terminator = block
                .terminator
                .clone()
                .expect("validated program has terminators");
            state.last_new_coverage = usize::from(state.coverage.cover(terminator.line()));
            self.exec_terminator(state, &terminator, ids)
        }
    }

    /// Runs `state` until it terminates or forks, up to `max_steps` steps.
    /// Convenience used by tests and the single-node engine.
    pub fn run_until_event(
        &self,
        state: &mut ExecutionState,
        ids: &mut StateIdGen,
        max_steps: u64,
    ) -> StepResult {
        for _ in 0..max_steps {
            match self.step(state, ids) {
                StepResult::Continue => continue,
                other => return other,
            }
        }
        StepResult::Continue
    }

    // -- Thread/termination helpers ------------------------------------------

    fn no_runnable_thread(&self, state: &mut ExecutionState) -> StepResult {
        let reason = if state.sleeping_threads() > 0 {
            TerminationReason::Bug(BugKind::Deadlock)
        } else {
            let code = state.processes.first().map(|p| p.exit_code).unwrap_or(0);
            TerminationReason::Exit(code)
        };
        state.terminate(reason.clone());
        StepResult::Terminated(reason)
    }

    fn concretize(&self, state: &mut ExecutionState, value: &Value) -> u64 {
        match value.as_u64() {
            Some(v) => v,
            None => {
                let expr = value.to_expr();
                let v = self
                    .solver
                    .get_value(&state.constraints, &expr)
                    .unwrap_or(0);
                state.add_constraint(Expr::eq(expr, Expr::const_(v, value.width())));
                v
            }
        }
    }

    fn bug(&self, state: &mut ExecutionState, kind: BugKind) -> StepResult {
        let reason = TerminationReason::Bug(kind);
        state.terminate(reason.clone());
        StepResult::Terminated(reason)
    }

    /// Resolves a possibly-symbolic memory address for an access of `size`
    /// bytes. For symbolic addresses, checks whether the address can point
    /// outside the object it resolves to; if so, a terminated bug sibling
    /// carrying the out-of-bounds constraint is appended to `siblings`, and
    /// the current state continues with the in-bounds (concretized) address —
    /// this is how the engine finds missing bounds checks such as the
    /// Bandicoot out-of-bounds read of §7.3.5.
    fn resolve_address(
        &self,
        state: &mut ExecutionState,
        addr_v: &Value,
        size: usize,
        ids: &mut StateIdGen,
        siblings: &mut Vec<ExecutionState>,
    ) -> u64 {
        let Value::Symbolic(addr_expr) = addr_v else {
            return addr_v.as_u64().unwrap_or(0);
        };
        let addr_expr = if addr_expr.width() == Width::W64 {
            addr_expr.clone()
        } else {
            Expr::zext(addr_expr.clone(), Width::W64)
        };
        // Pick one concrete solution and find the object it lands in.
        let example = self
            .solver
            .get_value(&state.constraints, &addr_expr)
            .unwrap_or(0);
        let space = state.current_space();
        if let (Some(base), Some(obj_size)) = (
            state.memory.object_base(space, example),
            state.memory.object_size(space, example),
        ) {
            if !state.is_replaying() {
                // Out of bounds iff addr < base or addr + size > base + size.
                let below = Expr::ult(addr_expr.clone(), Expr::const_(base, Width::W64));
                let last_ok = base + obj_size as u64 - size as u64;
                let above = Expr::ult(Expr::const_(last_ok, Width::W64), addr_expr.clone());
                let oob = Expr::logical_or(below, above);
                if self.solver.may_be_true(&state.constraints, oob.clone()) {
                    let mut bug_state = state.fork(ids.fresh());
                    bug_state.add_constraint(oob);
                    bug_state.terminate(TerminationReason::Bug(BugKind::OutOfBounds {
                        addr: example,
                        size,
                    }));
                    siblings.push(bug_state);
                }
            }
        }
        // Continue on the concretized in-bounds address.
        state.add_constraint(Expr::eq(addr_expr, Expr::const_(example, Width::W64)));
        example
    }

    // -- Value computation ----------------------------------------------------

    fn harmonize(a: Value, b: Value) -> (Value, Value) {
        let wa = a.width();
        let wb = b.width();
        if wa == wb {
            (a, b)
        } else if wa.bits() > wb.bits() {
            let b = b.zext_or_trunc(wa);
            (a, b)
        } else {
            let a = a.zext_or_trunc(wb);
            (a, b)
        }
    }

    fn eval_binary(
        &self,
        state: &mut ExecutionState,
        op: BinaryOp,
        a: Value,
        b: Value,
    ) -> Result<Value, BugKind> {
        let (a, b) = Self::harmonize(a, b);
        // Division safety: only definitely-zero divisors are reported; a
        // possibly-zero symbolic divisor is constrained to be non-zero.
        if matches!(
            op,
            BinaryOp::UDiv | BinaryOp::SDiv | BinaryOp::URem | BinaryOp::SRem
        ) {
            match b.as_u64() {
                Some(0) => return Err(BugKind::DivisionByZero),
                Some(_) => {}
                None => {
                    let divisor = b.to_expr();
                    let zero = Expr::const_(0, divisor.width());
                    let is_zero = Expr::eq(divisor.clone(), zero.clone());
                    if self.solver.must_be_true(&state.constraints, is_zero) {
                        return Err(BugKind::DivisionByZero);
                    }
                    state.add_constraint(Expr::ne(divisor, zero));
                }
            }
        }
        match (a.as_concrete(), b.as_concrete()) {
            (Some(ca), Some(cb)) => Ok(Value::Concrete(op.apply(ca, cb))),
            _ => Ok(Value::from_expr(Expr::binary(op, a.to_expr(), b.to_expr()))),
        }
    }

    fn eval_rvalue(&self, state: &mut ExecutionState, rv: &Rvalue) -> Result<Value, BugKind> {
        match rv {
            Rvalue::Use(a) => Ok(state.read_operand(a)),
            Rvalue::Binary(op, a, b) => {
                let va = state.read_operand(a);
                let vb = state.read_operand(b);
                self.eval_binary(state, *op, va, vb)
            }
            Rvalue::Unary(op, a) => {
                let va = state.read_operand(a);
                Ok(match va.as_concrete() {
                    Some(c) => Value::Concrete(op.apply(c)),
                    None => Value::from_expr(Expr::unary(*op, va.to_expr())),
                })
            }
            Rvalue::ZExt(a, w) => {
                let va = state.read_operand(a);
                Ok(match va.as_concrete() {
                    Some(c) => Value::Concrete(c.zext(*w)),
                    None => Value::from_expr(Expr::zext(va.to_expr(), *w)),
                })
            }
            Rvalue::SExt(a, w) => {
                let va = state.read_operand(a);
                Ok(match va.as_concrete() {
                    Some(c) => Value::Concrete(c.sext(*w)),
                    None => Value::from_expr(Expr::sext(va.to_expr(), *w)),
                })
            }
            Rvalue::Trunc(a, w) => {
                let va = state.read_operand(a);
                Ok(va.zext_or_trunc(*w))
            }
            Rvalue::Select(c, a, b) => {
                let vc = state.read_operand(c);
                let va = state.read_operand(a);
                let vb = state.read_operand(b);
                let cond = Self::to_bool_expr(&vc);
                match cond.as_const() {
                    Some(k) => Ok(if k.is_true() { va } else { vb }),
                    None => {
                        let (va, vb) = Self::harmonize(va, vb);
                        Ok(Value::from_expr(Expr::ite(
                            cond,
                            va.to_expr(),
                            vb.to_expr(),
                        )))
                    }
                }
            }
        }
    }

    /// Converts a value of any width into a 1-bit "is non-zero" expression.
    fn to_bool_expr(v: &Value) -> ExprRef {
        let e = v.to_expr();
        if e.width() == Width::W1 {
            e
        } else {
            Expr::ne(e.clone(), Expr::const_(0, e.width()))
        }
    }

    // -- Instructions ----------------------------------------------------------

    fn exec_instr(
        &self,
        state: &mut ExecutionState,
        instr: &Instr,
        ids: &mut StateIdGen,
    ) -> StepResult {
        match instr {
            Instr::Assign { dst, rvalue, .. } => match self.eval_rvalue(state, rvalue) {
                Ok(v) => {
                    state.write_reg(*dst, v);
                    StepResult::Continue
                }
                Err(bug) => self.bug(state, bug),
            },
            Instr::Load {
                dst, addr, width, ..
            } => {
                let addr_v = state.read_operand(addr);
                let mut siblings = Vec::new();
                let addr_c =
                    self.resolve_address(state, &addr_v, width.bytes(), ids, &mut siblings);

                match state.memory.read(state.current_space(), addr_c, *width) {
                    Ok(v) => {
                        state.write_reg(*dst, v);
                        if siblings.is_empty() {
                            StepResult::Continue
                        } else {
                            StepResult::Forked(siblings)
                        }
                    }
                    Err(bug) => self.bug(state, bug),
                }
            }
            Instr::Store {
                addr, value, width, ..
            } => {
                let addr_v = state.read_operand(addr);
                let mut siblings = Vec::new();
                let addr_c =
                    self.resolve_address(state, &addr_v, width.bytes(), ids, &mut siblings);
                let v = state.read_operand(value).zext_or_trunc(*width);
                let space = state.current_space();
                match state.memory.write(space, addr_c, &v, *width) {
                    Ok(()) => {
                        if siblings.is_empty() {
                            StepResult::Continue
                        } else {
                            StepResult::Forked(siblings)
                        }
                    }
                    Err(bug) => self.bug(state, bug),
                }
            }
            Instr::Alloc { dst, size, .. } => {
                let size_v = state.read_operand(size);
                let size_c = self.concretize(state, &size_v);
                if let Some(limit) = state.max_heap {
                    if state.memory.allocated_bytes() + size_c > limit {
                        return self.bug(
                            state,
                            BugKind::OutOfMemory {
                                requested: size_c,
                                limit,
                            },
                        );
                    }
                }
                let space = state.current_space();
                let base = state.memory.alloc(space, size_c as usize);
                state.write_reg(*dst, Value::concrete(base, Width::W64));
                StepResult::Continue
            }
            Instr::Free { addr, .. } => {
                let addr_v = state.read_operand(addr);
                let addr_c = self.concretize(state, &addr_v);
                let space = state.current_space();
                match state.memory.free(space, addr_c) {
                    Ok(()) => StepResult::Continue,
                    Err(bug) => self.bug(state, bug),
                }
            }
            Instr::Call {
                dst, func, args, ..
            } => self.exec_call(state, *dst, *func, args),
            Instr::Syscall { dst, nr, args, .. } => {
                state.stats.syscalls += 1;
                let arg_values: Vec<Value> = args.iter().map(|a| state.read_operand(a)).collect();
                if *nr < Program::ENV_SYSCALL_BASE {
                    self.engine_syscall(state, *dst, *nr, &arg_values, ids)
                } else {
                    self.env_syscall(state, *dst, *nr, &arg_values, ids)
                }
            }
            Instr::Assert { cond, message, .. } => {
                let v = state.read_operand(cond);
                let cond_expr = Self::to_bool_expr(&v);
                if let Some(c) = cond_expr.as_const() {
                    if c.is_true() {
                        return StepResult::Continue;
                    }
                    return self.bug(
                        state,
                        BugKind::AssertFailure {
                            message: message.clone(),
                        },
                    );
                }
                if self
                    .solver
                    .must_be_true(&state.constraints, cond_expr.clone())
                {
                    return StepResult::Continue;
                }
                // The assertion can fail for some inputs: fork a terminated
                // bug state carrying the violating constraint, and continue
                // the current state on the passing side.
                let mut bug_state = state.fork(ids.fresh());
                bug_state.add_constraint(Expr::logical_not(cond_expr.clone()));
                bug_state.terminate(TerminationReason::Bug(BugKind::AssertFailure {
                    message: message.clone(),
                }));
                state.add_constraint(cond_expr);
                StepResult::Forked(vec![bug_state])
            }
        }
    }

    fn exec_call(
        &self,
        state: &mut ExecutionState,
        dst: Option<RegId>,
        func: FuncId,
        args: &[Operand],
    ) -> StepResult {
        if state.thread().frames.len() >= self.config.max_call_depth {
            return self.bug(
                state,
                BugKind::AssertFailure {
                    message: "call depth limit exceeded".to_string(),
                },
            );
        }
        let arg_values: Vec<Value> = args.iter().map(|a| state.read_operand(a)).collect();
        let callee = self.program.function(func);
        let mut frame = Frame::new(func, callee.entry, callee.num_regs, dst);
        for (i, v) in arg_values.into_iter().enumerate() {
            frame.regs[i] = v;
        }
        state.thread_mut().frames.push(frame);
        StepResult::Continue
    }

    // -- Terminators -----------------------------------------------------------

    fn exec_terminator(
        &self,
        state: &mut ExecutionState,
        term: &Terminator,
        ids: &mut StateIdGen,
    ) -> StepResult {
        match term {
            Terminator::Jump { target, .. } => {
                self.goto(state, *target);
                StepResult::Continue
            }
            Terminator::Branch {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let v = state.read_operand(cond);
                let cond_expr = Self::to_bool_expr(&v);
                if let Some(c) = cond_expr.as_const() {
                    let target = if c.is_true() {
                        *then_block
                    } else {
                        *else_block
                    };
                    self.goto(state, target);
                    return StepResult::Continue;
                }
                self.symbolic_branch(state, cond_expr, *then_block, *else_block, ids)
            }
            Terminator::Return { value, .. } => self.exec_return(state, value.as_ref()),
            Terminator::Abort { kind, message, .. } => self.bug(
                state,
                BugKind::Abort {
                    kind: *kind,
                    message: message.clone(),
                },
            ),
        }
    }

    fn goto(&self, state: &mut ExecutionState, target: c9_ir::BlockId) {
        let frame = state
            .thread_mut()
            .top_frame_mut()
            .expect("active frame required");
        frame.block = target;
        frame.instr_idx = 0;
    }

    fn symbolic_branch(
        &self,
        state: &mut ExecutionState,
        cond: ExprRef,
        then_block: c9_ir::BlockId,
        else_block: c9_ir::BlockId,
        ids: &mut StateIdGen,
    ) -> StepResult {
        // Replay mode: follow the recorded decision without solver queries.
        if state.is_replaying() {
            let choice = state.replay.as_mut().and_then(|r| r.next());
            return match choice {
                Some(PathChoice::Branch(taken)) => {
                    let constraint = if taken { cond } else { Expr::logical_not(cond) };
                    state.add_constraint(constraint);
                    state.record_choice(PathChoice::Branch(taken));
                    self.goto(state, if taken { then_block } else { else_block });
                    StepResult::Continue
                }
                other => {
                    let reason = TerminationReason::ReplayDivergence {
                        depth: state.depth(),
                        detail: format!(
                            "symbolic branch reached but the recorded decision is {other:?}"
                        ),
                    };
                    state.terminate(reason.clone());
                    StepResult::Terminated(reason)
                }
            };
        }

        let not_cond = Expr::logical_not(cond.clone());
        let then_feasible = self.solver.may_be_true(&state.constraints, cond.clone());
        let else_feasible = self
            .solver
            .may_be_true(&state.constraints, not_cond.clone());
        match (then_feasible, else_feasible) {
            (true, true) => {
                let mut sibling = state.fork(ids.fresh());
                sibling.add_constraint(not_cond);
                sibling.record_choice(PathChoice::Branch(false));
                self.goto(&mut sibling, else_block);

                state.add_constraint(cond);
                state.record_choice(PathChoice::Branch(true));
                self.goto(state, then_block);
                StepResult::Forked(vec![sibling])
            }
            (true, false) => {
                state.add_constraint(cond);
                state.record_choice(PathChoice::Branch(true));
                self.goto(state, then_block);
                StepResult::Continue
            }
            (false, true) => {
                state.add_constraint(not_cond);
                state.record_choice(PathChoice::Branch(false));
                self.goto(state, else_block);
                StepResult::Continue
            }
            (false, false) => {
                let reason = TerminationReason::Infeasible;
                state.terminate(reason.clone());
                StepResult::Terminated(reason)
            }
        }
    }

    fn exec_return(&self, state: &mut ExecutionState, value: Option<&Operand>) -> StepResult {
        let retval = value.map(|v| state.read_operand(v));
        let finished_frame = state
            .thread_mut()
            .frames
            .pop()
            .expect("return without a frame");
        if state.thread().frames.is_empty() {
            // The thread's start function returned.
            let tid = state.thread().tid;
            state.thread_mut().status = ThreadStatus::Terminated;
            if tid == ThreadId(0) {
                let code = retval
                    .as_ref()
                    .and_then(|v| v.as_u64())
                    .map(|v| v as i64)
                    .unwrap_or(0);
                let reason = TerminationReason::Exit(code);
                state.terminate(reason.clone());
                return StepResult::Terminated(reason);
            }
            if !state.schedule_round_robin() {
                return self.no_runnable_thread(state);
            }
            return StepResult::Continue;
        }
        if let (Some(dst), Some(v)) = (finished_frame.return_to, retval) {
            state.write_reg(dst, v);
        }
        StepResult::Continue
    }

    // -- Engine primitives -----------------------------------------------------

    fn engine_syscall(
        &self,
        state: &mut ExecutionState,
        dst: RegId,
        nr: u32,
        args: &[Value],
        ids: &mut StateIdGen,
    ) -> StepResult {
        let arg = |i: usize| {
            args.get(i)
                .cloned()
                .unwrap_or(Value::concrete(0, Width::W64))
        };
        match nr {
            sysno::MAKE_SHARED => {
                let addr_v = arg(0);
                let addr = self.concretize(state, &addr_v);
                let space = state.current_space();
                match state.memory.make_shared(space, addr) {
                    Ok(base) => {
                        state.write_reg(dst, Value::concrete(base, Width::W64));
                        StepResult::Continue
                    }
                    Err(bug) => self.bug(state, bug),
                }
            }
            sysno::THREAD_CREATE => {
                let func_v = arg(0);
                let func_idx = self.concretize(state, &func_v) as u32;
                if func_idx as usize >= self.program.functions.len() {
                    return self.bug(state, BugKind::UnknownSyscall(nr));
                }
                let func = FuncId(func_idx);
                let callee = self.program.function(func);
                let mut frame = Frame::new(func, callee.entry, callee.num_regs, None);
                if callee.num_params >= 1 {
                    frame.regs[0] = arg(1);
                }
                let tid = ThreadId(state.threads.len() as u32);
                let pid = state.thread().pid;
                state.threads.push(Thread {
                    tid,
                    pid,
                    frames: vec![frame],
                    status: ThreadStatus::Runnable,
                    restart_syscall: false,
                });
                state.write_reg(dst, Value::concrete(u64::from(tid.0), Width::W64));
                StepResult::Continue
            }
            sysno::THREAD_TERMINATE => {
                state.thread_mut().status = ThreadStatus::Terminated;
                if !state.schedule_round_robin() {
                    return self.no_runnable_thread(state);
                }
                StepResult::Continue
            }
            sysno::PROCESS_FORK => {
                let parent_space = state.current_space();
                let child_space = state.memory.fork_space(parent_space);
                let child_pid = ProcessId(state.processes.len() as u32);
                let parent_pid = state.thread().pid;
                state.processes.push(Process {
                    pid: child_pid,
                    parent: Some(parent_pid),
                    space: child_space,
                    terminated: false,
                    exit_code: 0,
                });
                // Clone the calling thread into the child process; its saved
                // pc already points after this syscall.
                let mut child_thread = state.thread().clone();
                child_thread.tid = ThreadId(state.threads.len() as u32);
                child_thread.pid = child_pid;
                if let Some(f) = child_thread.frames.last_mut() {
                    f.regs[dst.0 as usize] = Value::concrete(0, Width::W64);
                }
                state.threads.push(child_thread);
                state.write_reg(dst, Value::concrete(u64::from(child_pid.0), Width::W64));
                StepResult::Continue
            }
            sysno::PROCESS_TERMINATE => {
                let code_v = arg(0);
                let code = self.concretize(state, &code_v) as i64;
                let pid = state.thread().pid;
                state.processes[pid.0 as usize].terminated = true;
                state.processes[pid.0 as usize].exit_code = code;
                for t in &mut state.threads {
                    if t.pid == pid {
                        t.status = ThreadStatus::Terminated;
                    }
                }
                if pid == ProcessId(0) {
                    let reason = TerminationReason::Exit(code);
                    state.terminate(reason.clone());
                    return StepResult::Terminated(reason);
                }
                if !state.schedule_round_robin() {
                    return self.no_runnable_thread(state);
                }
                StepResult::Continue
            }
            sysno::GET_CONTEXT => {
                let pid = u64::from(state.thread().pid.0);
                let tid = u64::from(state.thread().tid.0);
                state.write_reg(dst, Value::concrete((pid << 16) | tid, Width::W64));
                StepResult::Continue
            }
            sysno::THREAD_PREEMPT => {
                state.write_reg(dst, Value::concrete(0, Width::W64));
                self.preemption_point(state, ids)
            }
            sysno::THREAD_SLEEP => {
                let wlist_v = arg(0);
                let wlist = WaitListId(self.concretize(state, &wlist_v) as u32);
                state.write_reg(dst, Value::concrete(0, Width::W64));
                let tid = state.thread().tid;
                state.wait_lists.enqueue(wlist, tid);
                state.thread_mut().status = ThreadStatus::Sleeping(wlist);
                if !state.schedule_round_robin() {
                    return self.no_runnable_thread(state);
                }
                StepResult::Continue
            }
            sysno::THREAD_NOTIFY => {
                let wlist_v = arg(0);
                let wlist = WaitListId(self.concretize(state, &wlist_v) as u32);
                let all_v = arg(1);
                let all = self.concretize(state, &all_v) != 0;
                let woken = state.wait_lists.dequeue(wlist, all);
                for tid in &woken {
                    state.threads[tid.0 as usize].status = ThreadStatus::Runnable;
                }
                state.write_reg(dst, Value::concrete(woken.len() as u64, Width::W64));
                StepResult::Continue
            }
            sysno::GET_WLIST => {
                let id = state.wait_lists.create();
                state.write_reg(dst, Value::concrete(u64::from(id.0), Width::W64));
                StepResult::Continue
            }
            sysno::MAKE_SYMBOLIC => {
                let addr_v = arg(0);
                let len_v = arg(1);
                let addr = self.concretize(state, &addr_v);
                let len = self.concretize(state, &len_v) as usize;
                let name = format!("sym{}", state.symbols.len());
                let bytes = state.fresh_symbolic_bytes(&name, len);
                let data: Vec<ByteValue> = bytes.into_iter().map(ByteValue::from_expr).collect();
                let space = state.current_space();
                match state.memory.write_bytes(space, addr, &data) {
                    Ok(()) => {
                        state.write_reg(dst, Value::concrete(0, Width::W64));
                        StepResult::Continue
                    }
                    Err(bug) => self.bug(state, bug),
                }
            }
            sysno::SYMBOLIC_VALUE => {
                let bits_v = arg(0);
                let bits = self.concretize(state, &bits_v).clamp(1, 64) as u32;
                let name = format!("sym{}", state.symbols.len());
                let expr = state.fresh_symbolic(&name, Width::new(bits));
                state.write_reg(dst, Value::from_expr(expr));
                StepResult::Continue
            }
            sysno::EXIT => {
                let code_v = arg(0);
                let code = self.concretize(state, &code_v) as i64;
                let reason = TerminationReason::Exit(code);
                state.terminate(reason.clone());
                StepResult::Terminated(reason)
            }
            sysno::ASSUME => {
                let cond = Self::to_bool_expr(&arg(0));
                if let Some(c) = cond.as_const() {
                    if c.is_true() {
                        state.write_reg(dst, Value::concrete(0, Width::W64));
                        return StepResult::Continue;
                    }
                    let reason = TerminationReason::Infeasible;
                    state.terminate(reason.clone());
                    return StepResult::Terminated(reason);
                }
                if self.solver.may_be_true(&state.constraints, cond.clone()) {
                    state.add_constraint(cond);
                    state.write_reg(dst, Value::concrete(0, Width::W64));
                    StepResult::Continue
                } else {
                    let reason = TerminationReason::Infeasible;
                    state.terminate(reason.clone());
                    StepResult::Terminated(reason)
                }
            }
            sysno::PRINT => {
                state.write_reg(dst, Value::concrete(0, Width::W64));
                StepResult::Continue
            }
            sysno::SET_MAX_HEAP => {
                let limit_v = arg(0);
                let limit = self.concretize(state, &limit_v);
                state.max_heap = if limit == 0 { None } else { Some(limit) };
                state.write_reg(dst, Value::concrete(0, Width::W64));
                StepResult::Continue
            }
            sysno::SET_SCHEDULER => {
                let policy_v = arg(0);
                let policy = self.concretize(state, &policy_v);
                state.scheduler = match policy {
                    0 => SchedulerPolicy::RoundRobin,
                    1 => SchedulerPolicy::ForkAll,
                    n => SchedulerPolicy::ContextBound((n - 1) as u32),
                };
                state.write_reg(dst, Value::concrete(0, Width::W64));
                StepResult::Continue
            }
            _ => self.bug(state, BugKind::UnknownSyscall(nr)),
        }
    }

    /// Handles an explicit preemption point according to the scheduling
    /// policy, possibly forking over all runnable threads.
    fn preemption_point(&self, state: &mut ExecutionState, ids: &mut StateIdGen) -> StepResult {
        state.stats.preemptions += 1;
        let runnable = state.runnable_threads();
        if runnable.len() <= 1 {
            return StepResult::Continue;
        }
        let should_fork = match state.scheduler {
            SchedulerPolicy::RoundRobin => false,
            SchedulerPolicy::ForkAll => true,
            SchedulerPolicy::ContextBound(bound) => state.stats.preemptions <= u64::from(bound),
        };
        if !should_fork {
            state.schedule_round_robin();
            return StepResult::Continue;
        }

        // Replay: follow the recorded scheduling decision.
        if state.is_replaying() {
            let choice = state.replay.as_mut().and_then(|r| r.next());
            return match choice {
                Some(PathChoice::Alt { chosen, total }) if (chosen as usize) < runnable.len() => {
                    state.current_thread = runnable[chosen as usize];
                    state.record_choice(PathChoice::Alt { chosen, total });
                    StepResult::Continue
                }
                other => {
                    let reason = TerminationReason::ReplayDivergence {
                        depth: state.depth(),
                        detail: format!(
                            "schedule fork over {} runnable threads but the recorded \
                             decision is {other:?}",
                            runnable.len()
                        ),
                    };
                    state.terminate(reason.clone());
                    StepResult::Terminated(reason)
                }
            };
        }

        let total = runnable.len() as u32;
        let mut siblings = Vec::with_capacity(runnable.len() - 1);
        for (i, thread_idx) in runnable.iter().enumerate().skip(1) {
            let mut sibling = state.fork(ids.fresh());
            sibling.current_thread = *thread_idx;
            sibling.record_choice(PathChoice::Alt {
                chosen: i as u32,
                total,
            });
            siblings.push(sibling);
        }
        state.current_thread = runnable[0];
        state.record_choice(PathChoice::Alt { chosen: 0, total });
        StepResult::Forked(siblings)
    }

    // -- Environment syscalls --------------------------------------------------

    fn env_syscall(
        &self,
        state: &mut ExecutionState,
        dst: RegId,
        nr: u32,
        args: &[Value],
        ids: &mut StateIdGen,
    ) -> StepResult {
        state.thread_mut().restart_syscall = false;
        let mut env = match state.env.take() {
            Some(e) => e,
            None => return self.bug(state, BugKind::UnknownSyscall(nr)),
        };
        let effect = {
            let mut ctx = SyscallContext {
                state,
                env: env.as_mut(),
                solver: &self.solver,
            };
            self.env.syscall(&mut ctx, nr, args)
        };
        state.env = Some(env);
        match effect {
            Err(reason) => {
                state.terminate(reason.clone());
                StepResult::Terminated(reason)
            }
            Ok(SyscallEffect::Return(v)) => {
                state.write_reg(dst, v);
                StepResult::Continue
            }
            Ok(SyscallEffect::Terminate(reason)) => {
                state.terminate(reason.clone());
                StepResult::Terminated(reason)
            }
            Ok(SyscallEffect::Sleep {
                wlist,
                restart,
                retval,
            }) => {
                let tid = state.thread().tid;
                state.wait_lists.enqueue(wlist, tid);
                state.thread_mut().status = ThreadStatus::Sleeping(wlist);
                if restart {
                    // Rewind the pc so the syscall re-executes on wakeup.
                    if let Some(f) = state.thread_mut().top_frame_mut() {
                        f.instr_idx = f.instr_idx.saturating_sub(1);
                    }
                    state.thread_mut().restart_syscall = true;
                } else {
                    state.write_reg(dst, retval);
                }
                if !state.schedule_round_robin() {
                    return self.no_runnable_thread(state);
                }
                StepResult::Continue
            }
            Ok(SyscallEffect::Fork(alternatives)) => {
                self.apply_syscall_fork(state, dst, alternatives, ids)
            }
        }
    }

    fn apply_syscall_fork(
        &self,
        state: &mut ExecutionState,
        dst: RegId,
        alternatives: Vec<crate::env::SyscallAlternative>,
        ids: &mut StateIdGen,
    ) -> StepResult {
        if alternatives.is_empty() {
            let reason = TerminationReason::Infeasible;
            state.terminate(reason.clone());
            return StepResult::Terminated(reason);
        }
        let total = alternatives.len() as u32;

        // Replay: take the recorded alternative.
        if state.is_replaying() {
            let choice = state.replay.as_mut().and_then(|r| r.next());
            return match choice {
                Some(PathChoice::Alt { chosen, .. }) if (chosen as usize) < alternatives.len() => {
                    let alt = &alternatives[chosen as usize];
                    if let Some(c) = &alt.constraint {
                        state.add_constraint(c.clone());
                    }
                    state.write_reg(dst, alt.retval.clone());
                    state.record_choice(PathChoice::Alt { chosen, total });
                    if let Some(update) = &alt.apply {
                        update(state);
                    }
                    StepResult::Continue
                }
                other => {
                    let reason = TerminationReason::ReplayDivergence {
                        depth: state.depth(),
                        detail: format!(
                            "syscall fork over {} alternatives but the recorded \
                             decision is {other:?}",
                            alternatives.len()
                        ),
                    };
                    state.terminate(reason.clone());
                    StepResult::Terminated(reason)
                }
            };
        }

        // Keep only feasible alternatives.
        let feasible: Vec<(usize, &crate::env::SyscallAlternative)> = alternatives
            .iter()
            .enumerate()
            .filter(|(_, alt)| match &alt.constraint {
                None => true,
                Some(c) => self.solver.may_be_true(&state.constraints, c.clone()),
            })
            .collect();
        if feasible.is_empty() {
            let reason = TerminationReason::Infeasible;
            state.terminate(reason.clone());
            return StepResult::Terminated(reason);
        }

        let mut siblings = Vec::with_capacity(feasible.len() - 1);
        for (orig_idx, alt) in feasible.iter().skip(1) {
            let mut sibling = state.fork(ids.fresh());
            if let Some(c) = &alt.constraint {
                sibling.add_constraint(c.clone());
            }
            sibling.write_reg(dst, alt.retval.clone());
            sibling.record_choice(PathChoice::Alt {
                chosen: *orig_idx as u32,
                total,
            });
            if let Some(update) = &alt.apply {
                update(&mut sibling);
            }
            siblings.push(sibling);
        }
        let (first_idx, first) = feasible[0];
        let first_update = first.apply.clone();
        if let Some(c) = &first.constraint {
            state.add_constraint(c.clone());
        }
        state.write_reg(dst, first.retval.clone());
        state.record_choice(PathChoice::Alt {
            chosen: first_idx as u32,
            total,
        });
        if let Some(update) = &first_update {
            update(state);
        }
        if siblings.is_empty() {
            StepResult::Continue
        } else {
            StepResult::Forked(siblings)
        }
    }
}

/// Small helper: (func, block, instr_idx) of a frame without borrowing it.
trait FramePosition {
    fn clone_position(&self) -> (FuncId, c9_ir::BlockId, usize);
}

impl FramePosition for Frame {
    fn clone_position(&self) -> (FuncId, c9_ir::BlockId, usize) {
        (self.func, self.block, self.instr_idx)
    }
}

/// Computes the exit value of a concrete value for tests.
#[allow(dead_code)]
fn const_as_i64(v: &ConstValue) -> i64 {
    v.signed()
}

/// Re-exported for environments that need to apply unary operators to
/// concrete values.
#[allow(dead_code)]
fn apply_unary(op: UnaryOp, v: ConstValue) -> ConstValue {
    op.apply(v)
}
