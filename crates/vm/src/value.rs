//! Runtime values: concrete constants or symbolic expressions.

use c9_expr::{ConstValue, Expr, ExprRef, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value held in a register or memory cell during symbolic execution.
///
/// Values are kept concrete for as long as possible; they only become
/// [`Value::Symbolic`] when they (transitively) depend on a symbolic input.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Value {
    /// A fully concrete value.
    Concrete(ConstValue),
    /// A value that depends on symbolic inputs.
    Symbolic(ExprRef),
}

impl Value {
    /// Creates a concrete value.
    pub fn concrete(bits: u64, width: Width) -> Value {
        Value::Concrete(ConstValue::new(bits, width))
    }

    /// Creates a concrete byte.
    pub fn byte(b: u8) -> Value {
        Value::concrete(u64::from(b), Width::W8)
    }

    /// Creates a value from an expression, collapsing constants.
    pub fn from_expr(e: ExprRef) -> Value {
        match e.as_const() {
            Some(c) => Value::Concrete(c),
            None => Value::Symbolic(e),
        }
    }

    /// The width of the value.
    pub fn width(&self) -> Width {
        match self {
            Value::Concrete(c) => c.width(),
            Value::Symbolic(e) => e.width(),
        }
    }

    /// Whether the value is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, Value::Concrete(_))
    }

    /// The concrete bits, if the value is concrete.
    pub fn as_concrete(&self) -> Option<ConstValue> {
        match self {
            Value::Concrete(c) => Some(*c),
            Value::Symbolic(_) => None,
        }
    }

    /// The concrete unsigned value, if concrete.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_concrete().map(|c| c.value())
    }

    /// Converts the value into an expression (constants become `Const`
    /// nodes).
    pub fn to_expr(&self) -> ExprRef {
        match self {
            Value::Concrete(c) => Expr::const_value(*c),
            Value::Symbolic(e) => e.clone(),
        }
    }

    /// Reinterprets the value at a different width via zero extension or
    /// truncation.
    pub fn zext_or_trunc(&self, width: Width) -> Value {
        if self.width() == width {
            return self.clone();
        }
        match self {
            Value::Concrete(c) => Value::Concrete(if width.bits() > c.width().bits() {
                c.zext(width)
            } else {
                c.extract(0, width)
            }),
            Value::Symbolic(e) => {
                if width.bits() > e.width().bits() {
                    Value::from_expr(Expr::zext(e.clone(), width))
                } else {
                    Value::from_expr(Expr::extract(e.clone(), 0, width))
                }
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Concrete(c) => write!(f, "{c:?}"),
            Value::Symbolic(e) => write!(f, "sym({e})"),
        }
    }
}

/// A single byte in symbolic memory.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ByteValue {
    /// A concrete byte.
    Concrete(u8),
    /// A symbolic byte (an 8-bit expression).
    Symbolic(ExprRef),
}

impl ByteValue {
    /// Converts to an 8-bit expression.
    pub fn to_expr(&self) -> ExprRef {
        match self {
            ByteValue::Concrete(b) => Expr::const_(u64::from(*b), Width::W8),
            ByteValue::Symbolic(e) => e.clone(),
        }
    }

    /// The concrete byte, if concrete.
    pub fn as_concrete(&self) -> Option<u8> {
        match self {
            ByteValue::Concrete(b) => Some(*b),
            ByteValue::Symbolic(_) => None,
        }
    }

    /// Creates a byte value from an 8-bit expression, collapsing constants.
    pub fn from_expr(e: ExprRef) -> ByteValue {
        debug_assert_eq!(e.width(), Width::W8);
        match e.as_const() {
            Some(c) => ByteValue::Concrete(c.value() as u8),
            None => ByteValue::Symbolic(e),
        }
    }
}

impl fmt::Debug for ByteValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByteValue::Concrete(b) => write!(f, "{b:#04x}"),
            ByteValue::Symbolic(e) => write!(f, "sym({e})"),
        }
    }
}
