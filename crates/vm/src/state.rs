//! Execution states.

use crate::coverage::CoverageSet;
use crate::env::EnvState;
use crate::errors::TerminationReason;
use crate::memory::{AddressSpaceId, Memory};
use crate::thread::{Frame, Process, ProcessId, Thread, ThreadId, ThreadStatus, WaitLists};
use crate::value::Value;
use c9_expr::{Expr, ExprRef, SymbolManager, Width};
use c9_ir::{Operand, Program, RegId};
use c9_solver::ConstraintSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an execution state (unique within one worker).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub u64);

/// Generator of fresh state identifiers.
///
/// Supports *strided* allocation for multi-threaded quanta: when `N`
/// executor threads step disjoint states concurrently, thread `k` allocates
/// from `StateIdGen::strided(base + k, N)`, so fork identifiers are unique
/// across threads without any synchronization, and the single-thread case
/// (`stride == 1`) allocates exactly the dense sequence it always did.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StateIdGen {
    next: u64,
    stride: u64,
}

impl Default for StateIdGen {
    fn default() -> StateIdGen {
        StateIdGen { next: 0, stride: 1 }
    }
}

impl StateIdGen {
    /// Creates a generator starting at zero with stride 1.
    pub fn new() -> StateIdGen {
        StateIdGen::default()
    }

    /// Creates a generator producing `start`, `start + stride`,
    /// `start + 2·stride`, … (one executor thread's lane of the id space).
    pub fn strided(start: u64, stride: u64) -> StateIdGen {
        StateIdGen {
            next: start,
            stride: stride.max(1),
        }
    }

    /// Returns a fresh identifier.
    pub fn fresh(&mut self) -> StateId {
        let id = StateId(self.next);
        self.next += self.stride.max(1);
        id
    }

    /// The next raw identifier value this generator would hand out.
    pub fn next_unused(&self) -> u64 {
        self.next
    }

    /// Moves the generator forward to at least `value` (never backwards);
    /// used to re-merge the per-thread lanes after a parallel round.
    pub fn advance_to(&mut self, value: u64) {
        self.next = self.next.max(value);
    }
}

/// One decision recorded along an execution path.
///
/// The sequence of choices from the root of the execution tree to a state is
/// the *job encoding* that Cloud9 workers exchange (§3.2): it is enough to
/// deterministically reconstruct the state by replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PathChoice {
    /// A conditional branch on a symbolic condition; `true` means the
    /// then-branch was taken.
    Branch(bool),
    /// A multi-way fork (fault injection alternative, scheduling decision,
    /// symbolic syscall outcome). `chosen` is the index taken out of `total`
    /// alternatives.
    Alt {
        /// Index of the alternative this path took.
        chosen: u32,
        /// Number of alternatives at the fork point.
        total: u32,
    },
}

/// The scheduling policy for symbolic threads (§5.1, `cloud9_set_scheduler`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulerPolicy {
    /// Deterministic round-robin at preemption points.
    #[default]
    RoundRobin,
    /// Fork the state for every possible next thread at each preemption
    /// point (exhaustive schedule exploration).
    ForkAll,
    /// Iterative context bounding: fork over threads only while the number
    /// of preemptions along the path is below the bound.
    ContextBound(u32),
}

/// Per-state execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateStats {
    /// Instructions executed while exploring new work.
    pub instructions: u64,
    /// Instructions executed while replaying a job path received from
    /// another worker (not "useful work" in the paper's terminology).
    pub replay_instructions: u64,
    /// Number of forks this state has gone through (its depth in forks).
    pub forks: u64,
    /// Number of syscalls executed.
    pub syscalls: u64,
    /// Number of preemption points encountered.
    pub preemptions: u64,
}

/// Cursor over a path being replayed (job materialization).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayCursor {
    /// The decisions to follow.
    pub choices: Vec<PathChoice>,
    /// How many have been consumed.
    pub pos: usize,
}

impl ReplayCursor {
    /// Creates a cursor over `choices`.
    pub fn new(choices: Vec<PathChoice>) -> ReplayCursor {
        ReplayCursor { choices, pos: 0 }
    }

    /// Whether unconsumed choices remain.
    pub fn active(&self) -> bool {
        self.pos < self.choices.len()
    }

    /// Consumes and returns the next choice.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<PathChoice> {
        let c = self.choices.get(self.pos).copied();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }
}

/// A complete symbolic execution state: one node of the execution tree.
///
/// States are cloned when execution forks; everything inside is either cheap
/// to clone or copy-on-write (memory objects, expressions).
pub struct ExecutionState {
    /// Identifier of the state (unique per worker).
    pub id: StateId,
    /// Symbol allocator for this path.
    pub symbols: SymbolManager,
    /// Path constraints accumulated so far.
    pub constraints: ConstraintSet,
    /// All memory: address spaces and CoW domains.
    pub memory: Memory,
    /// Processes, indexed by [`ProcessId`].
    pub processes: Vec<Process>,
    /// Threads, indexed by [`ThreadId`].
    pub threads: Vec<Thread>,
    /// Index of the currently scheduled thread.
    pub current_thread: usize,
    /// Wait lists for sleeping threads.
    pub wait_lists: WaitLists,
    /// Environment-model state (taken out temporarily while handling a
    /// syscall).
    pub env: Option<Box<dyn EnvState>>,
    /// The decisions taken along this path.
    pub path: Vec<PathChoice>,
    /// Lines covered along this path.
    pub coverage: CoverageSet,
    /// Execution statistics.
    pub stats: StateStats,
    /// Set once the state has stopped executing.
    pub termination: Option<TerminationReason>,
    /// Replay cursor (present while materializing a transferred job).
    pub replay: Option<ReplayCursor>,
    /// Scheduling policy for preemption points.
    pub scheduler: SchedulerPolicy,
    /// Modelled heap limit in bytes (None = unlimited), set via
    /// `set_max_heap`.
    pub max_heap: Option<u64>,
    /// Number of newly covered lines in the most recent step (used by the
    /// coverage-optimized searcher).
    pub last_new_coverage: usize,
}

impl Clone for ExecutionState {
    fn clone(&self) -> ExecutionState {
        ExecutionState {
            id: self.id,
            symbols: self.symbols.clone(),
            constraints: self.constraints.clone(),
            memory: self.memory.clone(),
            processes: self.processes.clone(),
            threads: self.threads.clone(),
            current_thread: self.current_thread,
            wait_lists: self.wait_lists.clone(),
            env: self.env.as_ref().map(|e| e.clone_box()),
            path: self.path.clone(),
            coverage: self.coverage.clone(),
            stats: self.stats,
            termination: self.termination.clone(),
            replay: self.replay.clone(),
            scheduler: self.scheduler,
            max_heap: self.max_heap,
            last_new_coverage: self.last_new_coverage,
        }
    }
}

impl fmt::Debug for ExecutionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionState")
            .field("id", &self.id)
            .field("depth", &self.path.len())
            .field("constraints", &self.constraints.len())
            .field("threads", &self.threads.len())
            .field("terminated", &self.termination)
            .finish()
    }
}

impl ExecutionState {
    /// Creates the initial state of `program`: one process, one thread,
    /// positioned at the entry function.
    pub fn initial(id: StateId, program: &Program, env: Box<dyn EnvState>) -> ExecutionState {
        let memory = Memory::new();
        let entry = program.function(program.entry);
        let frame = Frame::new(program.entry, entry.entry, entry.num_regs, None);
        let process = Process {
            pid: ProcessId(0),
            parent: None,
            space: memory.initial_space(),
            terminated: false,
            exit_code: 0,
        };
        let thread = Thread {
            tid: ThreadId(0),
            pid: ProcessId(0),
            frames: vec![frame],
            status: ThreadStatus::Runnable,
            restart_syscall: false,
        };
        ExecutionState {
            id,
            symbols: SymbolManager::new(),
            constraints: ConstraintSet::new(),
            memory,
            processes: vec![process],
            threads: vec![thread],
            current_thread: 0,
            wait_lists: WaitLists::default(),
            env: Some(env),
            path: Vec::new(),
            coverage: CoverageSet::new(program.loc()),
            stats: StateStats::default(),
            termination: None,
            replay: None,
            scheduler: SchedulerPolicy::RoundRobin,
            max_heap: None,
            last_new_coverage: 0,
        }
    }

    /// Clones this state into a sibling with a new identifier (a fork).
    pub fn fork(&self, new_id: StateId) -> ExecutionState {
        let mut clone = self.clone();
        clone.id = new_id;
        clone.stats.forks += 1;
        clone
    }

    /// Whether the state has stopped executing.
    pub fn is_terminated(&self) -> bool {
        self.termination.is_some()
    }

    /// Depth of the state in the execution tree (number of recorded
    /// decisions).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Whether the state is currently replaying a transferred job path.
    pub fn is_replaying(&self) -> bool {
        self.replay.as_ref().is_some_and(|r| r.active())
    }

    /// The currently scheduled thread.
    pub fn thread(&self) -> &Thread {
        &self.threads[self.current_thread]
    }

    /// The currently scheduled thread, mutably.
    pub fn thread_mut(&mut self) -> &mut Thread {
        &mut self.threads[self.current_thread]
    }

    /// The process of the currently scheduled thread.
    pub fn process(&self) -> &Process {
        &self.processes[self.thread().pid.0 as usize]
    }

    /// The address space of the currently scheduled thread.
    pub fn current_space(&self) -> AddressSpaceId {
        self.process().space
    }

    /// Indices of all runnable threads.
    pub fn runnable_threads(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_runnable())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of threads that are sleeping on a wait list.
    pub fn sleeping_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| matches!(t.status, ThreadStatus::Sleeping(_)))
            .count()
    }

    /// Picks the next runnable thread after `self.current_thread`
    /// (round-robin). Returns `false` if no thread is runnable.
    pub fn schedule_round_robin(&mut self) -> bool {
        let n = self.threads.len();
        for offset in 1..=n {
            let idx = (self.current_thread + offset) % n;
            if self.threads[idx].is_runnable() {
                self.current_thread = idx;
                return true;
            }
        }
        false
    }

    /// Adds a path constraint.
    pub fn add_constraint(&mut self, constraint: ExprRef) {
        self.constraints.push(constraint);
    }

    /// Records a path decision.
    pub fn record_choice(&mut self, choice: PathChoice) {
        self.path.push(choice);
    }

    /// Allocates `count` fresh symbolic bytes named `name[i]` and returns
    /// their expressions.
    pub fn fresh_symbolic_bytes(&mut self, name: &str, count: usize) -> Vec<ExprRef> {
        self.symbols
            .fresh_bytes(name, count)
            .into_iter()
            .map(|s| Expr::sym(s, Width::W8))
            .collect()
    }

    /// Allocates a fresh symbolic value of the given width.
    pub fn fresh_symbolic(&mut self, name: &str, width: Width) -> ExprRef {
        let sym = self.symbols.fresh(name, width);
        Expr::sym(sym, width)
    }

    /// Reads an operand in the context of the current frame.
    ///
    /// # Panics
    ///
    /// Panics if the current thread has no frame (callers check this).
    pub fn read_operand(&self, op: &Operand) -> Value {
        match op {
            Operand::Const(v, w) => Value::concrete(*v, *w),
            Operand::Reg(r) => {
                let frame = self.thread().top_frame().expect("no active frame");
                frame.regs[r.0 as usize].clone()
            }
        }
    }

    /// Writes a register of the current frame.
    pub fn write_reg(&mut self, reg: RegId, value: Value) {
        let frame = self.thread_mut().top_frame_mut().expect("no active frame");
        frame.regs[reg.0 as usize] = value;
    }

    /// Marks the state as terminated.
    pub fn terminate(&mut self, reason: TerminationReason) {
        if self.termination.is_none() {
            self.termination = Some(reason);
        }
    }

    /// Total instructions executed (useful + replay).
    pub fn total_instructions(&self) -> u64 {
        self.stats.instructions + self.stats.replay_instructions
    }

    /// Downcasts the environment state to a concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the environment state has been taken out (i.e. called from
    /// within a syscall handler) or is of a different type.
    pub fn env_as<T: 'static>(&self) -> &T {
        self.env
            .as_ref()
            .expect("environment state taken")
            .as_any()
            .downcast_ref::<T>()
            .expect("environment state has unexpected type")
    }

    /// Downcasts the environment state mutably.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExecutionState::env_as`].
    pub fn env_as_mut<T: 'static>(&mut self) -> &mut T {
        self.env
            .as_mut()
            .expect("environment state taken")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("environment state has unexpected type")
    }
}
