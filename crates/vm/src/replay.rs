//! Job replay: reconstructing transferred execution states.
//!
//! A transferred job is the decision path from the root of the execution
//! tree to the node it designates (§3.2); the receiving worker rebuilds
//! ("materializes") the node by re-executing the program and following the
//! recorded decisions. The [`ReplayEngine`] owns that re-execution loop —
//! previously an ad-hoc loop around [`ReplayCursor`] in the worker — and
//! adds the two capabilities batched materialization is built on:
//!
//! * **Resumable prefixes.** A replaying state paused right after consuming
//!   its `k`-th decision is a faithful reconstruction of the depth-`k`
//!   prefix node. Cloning it (cheap: memory and expressions are
//!   copy-on-write) yields an *anchor* from which any job sharing that
//!   prefix can be materialized by replaying only its suffix —
//!   [`ReplayEngine::resume`]. The [`ReplayEngine::run`] driver reports
//!   every consumed decision to an `on_choice` hook so callers can snapshot
//!   anchors exactly at those points.
//! * **Structured divergence.** A job whose recorded decisions no longer
//!   match the branches the replayed execution reaches (a corrupted or
//!   stale job) terminates with
//!   [`TerminationReason::ReplayDivergence`] and is reported as
//!   [`ReplayProgress::Diverged`] — never a panic, and never a silently
//!   mis-explored path.
//!
//! Determinism: replay never queries the searcher, never forks surviving
//! siblings (fork sites follow the recorded decision instead), and every
//! solver value it concretizes is the canonical model for the exact
//! constraint set — so a state materialized from an anchor is the same
//! state a from-root replay produces, decision for decision, constraint
//! for constraint.

use crate::errors::TerminationReason;
use crate::executor::{Executor, StepResult};
use crate::state::{ExecutionState, PathChoice, ReplayCursor, StateId, StateIdGen};
use serde::{Deserialize, Serialize};

/// Configuration of a worker's prefix-anchor replay cache (the
/// `--replay-cache` flag). The cache itself lives in `c9-core`; the
/// configuration is defined here so the wire run spec can carry it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayCacheConfig {
    /// Maximum number of anchors kept. Zero disables the cache entirely
    /// (every materialization replays from the root — the paper's
    /// baseline behaviour).
    pub capacity: usize,
    /// Approximate byte budget across all cached anchor states (the
    /// estimate counts logical state size, not CoW-shared physical bytes).
    /// Zero means no byte limit beyond `capacity`.
    pub max_bytes: u64,
}

impl Default for ReplayCacheConfig {
    fn default() -> ReplayCacheConfig {
        ReplayCacheConfig {
            capacity: 256,
            max_bytes: 64 << 20,
        }
    }
}

impl ReplayCacheConfig {
    /// The disabled configuration (naive per-job root replay).
    pub const DISABLED: ReplayCacheConfig = ReplayCacheConfig {
        capacity: 0,
        max_bytes: 0,
    };

    /// Whether any anchors may be cached.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }
}

/// How one [`ReplayEngine::run`] drive ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayProgress {
    /// Every recorded decision was consumed; the state is live at the
    /// job's node and ready to explore.
    Ready,
    /// The state terminated exactly at the end of the recorded path: the
    /// job designates a completed path (a replayed bug or exit), which the
    /// caller accounts like any other terminated state.
    Completed,
    /// The recorded path disagrees with the replayed execution; the state
    /// carries [`TerminationReason::ReplayDivergence`] and must be
    /// discarded, not explored.
    Diverged,
    /// The instruction budget ran out mid-replay. The state is live and
    /// still replaying; it can be driven again (or stepped in normal
    /// execution slices, which keep following the cursor).
    OutOfBudget,
}

/// The outcome of one [`ReplayEngine::run`] drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayRun {
    /// How the drive ended.
    pub progress: ReplayProgress,
    /// Instructions actually executed by this drive (the replay work that
    /// was *not* avoided).
    pub executed: u64,
}

/// Replays execution states along recorded decision paths.
///
/// Stateless apart from the borrowed [`Executor`]; one engine can serve any
/// number of materializations.
pub struct ReplayEngine<'a> {
    executor: &'a Executor,
}

impl<'a> ReplayEngine<'a> {
    /// Creates a replay engine stepping states with `executor`.
    pub fn new(executor: &'a Executor) -> ReplayEngine<'a> {
        ReplayEngine { executor }
    }

    /// Creates a from-root replay state for `path`: the initial state of
    /// the program with the full decision path installed as its cursor.
    pub fn start(&self, id: StateId, path: Vec<PathChoice>) -> ExecutionState {
        self.executor.replay_state(id, path)
    }

    /// Resumes replay from an anchor snapshot: `anchor` must be a clone of
    /// a replaying state paused right after consuming its last decision
    /// (i.e. `anchor.path` is a prefix of the target job's path), and
    /// `suffix` the remaining decisions below that prefix. The trunk the
    /// anchor already executed is not re-run — that is the entire saving.
    pub fn resume(
        &self,
        mut anchor: ExecutionState,
        id: StateId,
        suffix: Vec<PathChoice>,
    ) -> ExecutionState {
        anchor.id = id;
        anchor.replay = if suffix.is_empty() {
            None
        } else {
            Some(ReplayCursor::new(suffix))
        };
        anchor
    }

    /// Drives `state` until its cursor is exhausted, it terminates, or
    /// `budget` instructions have executed. `on_choice` fires after every
    /// consumed decision, with the state paused right after it — the
    /// positions prefix anchors are snapshotted at. Fork results during
    /// replay carry only already-terminated siblings (duplicate bug states
    /// the exporting worker has already accounted); they are dropped, as
    /// the classic materialization loop always did.
    pub fn run(
        &self,
        state: &mut ExecutionState,
        ids: &mut StateIdGen,
        budget: u64,
        mut on_choice: impl FnMut(&ExecutionState),
    ) -> ReplayRun {
        let mut span = c9_trace::Span::enter(c9_trace::SpanKind::Replay);
        let mut executed = 0u64;
        while state.is_replaying() && !state.is_terminated() {
            if executed >= budget {
                span.detail(executed);
                return ReplayRun {
                    progress: ReplayProgress::OutOfBudget,
                    executed,
                };
            }
            let depth_before = state.depth();
            match self.executor.step(state, ids) {
                StepResult::Continue | StepResult::Forked(_) => {
                    executed += 1;
                    if state.depth() > depth_before {
                        on_choice(state);
                    }
                }
                StepResult::Terminated(_) => {
                    executed += 1;
                    break;
                }
            }
        }
        let progress = if !state.is_terminated() {
            ReplayProgress::Ready
        } else if matches!(
            state.termination,
            Some(TerminationReason::ReplayDivergence { .. })
        ) {
            ReplayProgress::Diverged
        } else if state.is_replaying() {
            // The program ended before the recorded path did: the job
            // claims decisions below a node that terminates. Reclassify as
            // a divergence so the caller never counts it as a completed
            // path (the exporting worker still owns that accounting).
            let reason = TerminationReason::ReplayDivergence {
                depth: state.depth(),
                detail: format!(
                    "execution terminated ({:?}) with recorded decisions remaining",
                    state.termination
                ),
            };
            state.termination = Some(reason);
            ReplayProgress::Diverged
        } else {
            ReplayProgress::Completed
        };
        if progress == ReplayProgress::Diverged {
            c9_trace::warn!(
                "replay diverged at depth {} after {executed} instructions",
                state.depth()
            );
        }
        span.detail(executed);
        ReplayRun { progress, executed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NullEnvironment;
    use crate::executor::ExecutorConfig;
    use crate::state::StateId;
    use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Width};
    use std::sync::Arc;

    /// A program with `n` symbolic bytes and 2^n paths.
    fn branching_program(n: usize) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, Some(Width::W32));
        let buf = f.alloc(Operand::word(n as u32));
        f.syscall(
            crate::sysno::MAKE_SYMBOLIC,
            vec![Operand::Reg(buf), Operand::word(n as u32)],
        );
        let mut next = f.create_block();
        for i in 0..n {
            let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
            let byte = f.load(Operand::Reg(addr), Width::W8);
            let cond = f.binary(BinaryOp::Ult, Operand::Reg(byte), Operand::byte(64));
            let then_bb = f.create_block();
            f.branch(Operand::Reg(cond), then_bb, next);
            f.switch_to(then_bb);
            f.jump(next);
            f.switch_to(next);
            if i + 1 < n {
                next = f.create_block();
            }
        }
        f.ret(Some(Operand::word(0)));
        let main = f.finish();
        pb.set_entry(main);
        pb.finish()
    }

    fn executor(n: usize) -> Executor {
        Executor::new(
            Arc::new(branching_program(n)),
            Arc::new(c9_solver::Solver::new()),
            Arc::new(NullEnvironment),
            ExecutorConfig::default(),
        )
    }

    fn fingerprint(state: &ExecutionState) -> (Vec<PathChoice>, usize, u64, u64) {
        (
            state.path.clone(),
            state.constraints.len(),
            state.stats.replay_instructions,
            state.coverage.count() as u64,
        )
    }

    #[test]
    fn resumed_replay_matches_from_root_replay() {
        let exec = executor(4);
        let engine = ReplayEngine::new(&exec);
        let path: Vec<PathChoice> = (0..4).map(|i| PathChoice::Branch(i % 2 == 0)).collect();

        // Baseline: full from-root replay, snapshotting at depth 2.
        let mut ids = StateIdGen::new();
        let mut full = engine.start(ids.fresh(), path.clone());
        let mut anchor: Option<ExecutionState> = None;
        let run = engine.run(&mut full, &mut ids, u64::MAX, |s| {
            if s.depth() == 2 {
                anchor = Some(s.clone());
            }
        });
        assert_eq!(run.progress, ReplayProgress::Ready);
        let anchor = anchor.expect("depth-2 snapshot taken");
        assert_eq!(anchor.path, &path[..2]);

        // Resume the suffix from the anchor; the result must be the same
        // state the full replay produced (same decisions, constraints,
        // canonical per-path stats, coverage) at a fraction of the work.
        let mut ids2 = StateIdGen::strided(100, 1);
        let saved = anchor.stats.replay_instructions;
        assert!(saved > 0);
        let mut resumed = engine.resume(anchor, StateId(100), path[2..].to_vec());
        let run2 = engine.run(&mut resumed, &mut ids2, u64::MAX, |_| {});
        assert_eq!(run2.progress, ReplayProgress::Ready);
        assert_eq!(fingerprint(&resumed), fingerprint(&full));
        assert_eq!(run2.executed + saved, run.executed, "trunk not skipped");
    }

    #[test]
    fn mismatched_choice_kind_is_a_structured_divergence() {
        let exec = executor(2);
        let engine = ReplayEngine::new(&exec);
        // The program only records Branch decisions; an Alt is corrupt.
        let mut ids = StateIdGen::new();
        let mut state = engine.start(
            ids.fresh(),
            vec![PathChoice::Alt {
                chosen: 1,
                total: 3,
            }],
        );
        let run = engine.run(&mut state, &mut ids, u64::MAX, |_| {});
        assert_eq!(run.progress, ReplayProgress::Diverged);
        match &state.termination {
            Some(TerminationReason::ReplayDivergence { depth, .. }) => assert_eq!(*depth, 0),
            other => panic!("expected ReplayDivergence, got {other:?}"),
        }
    }

    #[test]
    fn path_longer_than_execution_is_a_divergence() {
        let exec = executor(1);
        let engine = ReplayEngine::new(&exec);
        // One real decision, five recorded: the program exits with
        // decisions left over.
        let path: Vec<PathChoice> = (0..5).map(|_| PathChoice::Branch(true)).collect();
        let mut ids = StateIdGen::new();
        let mut state = engine.start(ids.fresh(), path);
        let run = engine.run(&mut state, &mut ids, u64::MAX, |_| {});
        assert_eq!(run.progress, ReplayProgress::Diverged);
        assert!(matches!(
            state.termination,
            Some(TerminationReason::ReplayDivergence { depth: 1, .. })
        ));
    }

    #[test]
    fn budget_exhaustion_leaves_a_resumable_state() {
        let exec = executor(3);
        let engine = ReplayEngine::new(&exec);
        let path: Vec<PathChoice> = (0..3).map(|_| PathChoice::Branch(false)).collect();
        let mut ids = StateIdGen::new();
        let mut state = engine.start(ids.fresh(), path);
        let first = engine.run(&mut state, &mut ids, 2, |_| {});
        assert_eq!(first.progress, ReplayProgress::OutOfBudget);
        assert_eq!(first.executed, 2);
        let rest = engine.run(&mut state, &mut ids, u64::MAX, |_| {});
        assert_eq!(rest.progress, ReplayProgress::Ready);
        assert_eq!(state.depth(), 3);
    }

    #[test]
    fn completed_replay_is_reported_as_completed() {
        let exec = executor(1);
        let engine = ReplayEngine::new(&exec);
        // Replay a full path to a leaf and keep stepping: consuming the
        // single decision leaves a live state whose continued execution
        // terminates normally (not a divergence).
        let mut ids = StateIdGen::new();
        let mut state = engine.start(ids.fresh(), vec![PathChoice::Branch(true)]);
        let run = engine.run(&mut state, &mut ids, u64::MAX, |_| {});
        assert_eq!(run.progress, ReplayProgress::Ready);
        while !state.is_terminated() {
            exec.step(&mut state, &mut ids);
        }
        assert!(matches!(
            state.termination,
            Some(TerminationReason::Exit(0))
        ));
    }
}
