//! Reactor scaling: coordinator-side frame throughput as the peer count
//! grows from 4 to 256.
//!
//! The flat-fleet scaling wall this measures around: a thread-per-
//! connection coordinator pays per-peer scheduling cost, so its drain rate
//! collapses as the fleet grows. The reactor multiplexes every connection
//! onto one `poll(2)` loop; its aggregate frame throughput should be
//! roughly flat in the number of peers — the acceptance bar is the
//! 256-peer rate staying within 2x of the 4-peer rate.
//!
//! The harness is pure transport, no symbolic execution: one
//! `TcpCoordinatorEndpoint` admits N raw TCP peers through the real join
//! handshake, then a fixed pool of sender threads (fixed, so the client
//! cost does not grow with N) pushes the *same total number* of
//! pre-encoded `Status` frames through the N sockets while the main
//! thread drains `recv_status`; the metric is the drain rate over the
//! whole burst. Holding the total constant is what makes the comparison
//! fair on a small machine: only the connection fan-out varies between
//! runs, so the ratio isolates the per-connection multiplexing cost.
//! Results are printed as a table and written to `BENCH_net_scale.json`.

use c9_net::frame::{encode_frame, read_frame, write_frame};
use c9_net::{
    CoordinatorEndpoint, RunId, StatusReport, TcpCoordinatorEndpoint, WireMessage, WorkerId,
    WorkerStats, WIRE_VERSION,
};
use c9_vm::{CoverageSet, StrategyKind};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client threads driving the sockets: constant regardless of peer count,
/// so measured differences are the coordinator's, not the load generator's.
const SENDER_THREADS: usize = 4;

struct Row {
    peers: usize,
    frames: u64,
    secs: f64,
}

impl Row {
    fn frames_per_sec(&self) -> f64 {
        self.frames as f64 / self.secs.max(1e-9)
    }
}

/// One pre-encoded status frame for `worker`: realistic small-report shape
/// (no frontier, no gossip — the steady-state cadence frame).
fn status_frame(worker: WorkerId) -> Vec<u8> {
    let report = StatusReport {
        run: RunId(1),
        worker,
        epoch: 1,
        queue_length: 64,
        coverage: CoverageSet::default(),
        stats: WorkerStats::default(),
        idle: false,
        strategy: StrategyKind::default(),
        frontier: None,
        new_bugs: Vec::new(),
        transfers: Vec::new(),
        gossip: None,
    };
    encode_frame(&WireMessage::Status(report)).expect("encode status frame")
}

/// Joins `peers` raw TCP clients through the real handshake, pushes
/// `total_frames` status frames through them, and measures the
/// coordinator's drain rate over the whole burst.
fn run_scale(peers: usize, total_frames: u64) -> Row {
    let mut endpoint = TcpCoordinatorEndpoint::listen("127.0.0.1:0").expect("bind coordinator");
    let addr = endpoint.local_addr().expect("bound address");

    // Handshake every peer sequentially: connect, send the join frame,
    // admit it on the coordinator, read the ack back on the client.
    let mut sockets = Vec::with_capacity(peers);
    for i in 0..peers {
        let mut stream = TcpStream::connect(addr).expect("connect peer");
        stream.set_nodelay(true).ok();
        write_frame(
            &mut stream,
            &WireMessage::Join {
                version: WIRE_VERSION,
                listen_addr: format!("127.0.0.1:{}", 20000 + i),
                previous: None,
            },
        )
        .expect("send join");
        let deadline = Instant::now() + Duration::from_secs(10);
        let request = loop {
            if let Some(request) = endpoint.try_recv_join() {
                break request;
            }
            assert!(Instant::now() < deadline, "join {i} never surfaced");
            std::thread::sleep(Duration::from_millis(1));
        };
        endpoint
            .admit(
                request.token,
                WorkerId(i as u32),
                1,
                Vec::new(),
                StrategyKind::default(),
            )
            .expect("admit peer");
        let ack: WireMessage = read_frame(&mut stream).expect("read join ack");
        assert!(matches!(ack, WireMessage::JoinAck { .. }));
        sockets.push(stream);
    }

    // A fixed sender pool owns the sockets in chunks and writes each
    // socket's pre-encoded frame round-robin until its share of the burst
    // is sent. The total is identical for every peer count.
    let chunk = peers.div_ceil(SENDER_THREADS);
    let mut handles = Vec::new();
    let mut next_id = 0u32;
    let mut budgeted = 0u64;
    let senders = sockets.len().div_ceil(chunk) as u64;
    while !sockets.is_empty() {
        let take = chunk.min(sockets.len());
        let mut mine: Vec<(Vec<u8>, TcpStream)> = sockets
            .drain(..take)
            .map(|s| {
                let frame = status_frame(WorkerId(next_id));
                next_id += 1;
                (frame, s)
            })
            .collect();
        let budget = if sockets.is_empty() {
            total_frames - budgeted // the last sender absorbs the remainder
        } else {
            total_frames / senders
        };
        budgeted += budget;
        handles.push(std::thread::spawn(move || {
            let mut sent = 0u64;
            'outer: while sent < budget {
                for (frame, socket) in &mut mine {
                    if socket.write_all(frame).is_err() {
                        break 'outer;
                    }
                    sent += 1;
                    if sent >= budget {
                        break;
                    }
                }
            }
        }));
    }

    // Drain the entire burst, timing it end to end. Senders backpressure
    // on full socket buffers, so start-to-last-frame covers the real work.
    let start = Instant::now();
    let mut frames = 0u64;
    let deadline = start + Duration::from_secs(120);
    while frames < total_frames {
        if endpoint.recv_status(Duration::from_millis(1)).is_some() {
            frames += 1;
        }
        assert!(
            Instant::now() < deadline,
            "drained only {frames}/{total_frames} frames at {peers} peers"
        );
    }
    let secs = start.elapsed().as_secs_f64();
    for handle in handles {
        handle.join().expect("join sender");
    }

    Row {
        peers,
        frames,
        secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let total_frames: u64 = if quick { 100_000 } else { 400_000 };

    let mut rows = Vec::new();
    for peers in [4usize, 64, 256] {
        // Best of two: the first burst also pays one-time costs (thread
        // spawn, page faults), which would otherwise swamp the short runs.
        let row = [
            run_scale(peers, total_frames),
            run_scale(peers, total_frames),
        ]
        .into_iter()
        .max_by(|a, b| a.frames_per_sec().total_cmp(&b.frames_per_sec()))
        .expect("two runs");
        eprintln!(
            "net_scale {} peers: {} frames in {:.2}s = {:.0} frames/sec",
            row.peers,
            row.frames,
            row.secs,
            row.frames_per_sec()
        );
        rows.push(row);
    }

    println!("\n== reactor frame throughput vs peer count ==");
    println!("peers\t| frames/sec\t| vs 4-peer");
    let base = rows[0].frames_per_sec();
    for row in &rows {
        println!(
            "{}\t| {:.0}\t| {:.2}x",
            row.peers,
            row.frames_per_sec(),
            row.frames_per_sec() / base.max(1e-9)
        );
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"peers\": {}, \"frames\": {}, \"secs\": {:.4}, \"frames_per_sec\": {:.1}}}",
                r.peers,
                r.frames,
                r.secs,
                r.frames_per_sec()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"net_scale\",\n  \"quick\": {},\n  \"sender_threads\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        quick,
        SENDER_THREADS,
        json_rows.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_net_scale.json", &json) {
        eprintln!("net_scale: cannot write BENCH_net_scale.json: {e}");
    }

    // The acceptance bar: aggregate drain rate at 256 peers within 2x of
    // the 4-peer rate. A thread-per-connection coordinator fails this.
    let wide = rows.last().expect("rows").frames_per_sec();
    assert!(
        wide * 2.0 >= base,
        "256-peer throughput {wide:.0} frames/sec fell more than 2x below \
         the 4-peer rate {base:.0} frames/sec"
    );
}
