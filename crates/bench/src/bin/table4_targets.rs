//! Table 4: the roster of target systems that run on the platform. Each
//! target is smoke-run under the POSIX model for a bounded number of paths.

use c9_bench::print_table;
use c9_posix::PosixEnvironment;
use c9_vm::{DfsSearcher, Engine, EngineConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for target in c9_targets::all_targets() {
        let loc = target.program.loc();
        let mut engine = Engine::new(
            Arc::new(target.program),
            Arc::new(PosixEnvironment::new()),
            Box::new(DfsSearcher::new()),
            EngineConfig {
                max_paths: 50,
                max_time: Some(Duration::from_secs(10)),
                generate_test_cases: false,
                ..EngineConfig::default()
            },
        );
        let summary = engine.run();
        rows.push(vec![
            target.name.to_string(),
            target.kind.to_string(),
            loc.to_string(),
            summary.paths_completed.to_string(),
            format!("{:.1}%", summary.coverage_ratio() * 100.0),
        ]);
    }
    print_table(
        "Table 4 — testing targets running on Cloud9-RS",
        &[
            "target",
            "kind",
            "LOC (IR lines)",
            "paths explored",
            "coverage",
        ],
        &rows,
    );
}
