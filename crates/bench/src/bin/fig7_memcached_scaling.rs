//! Fig. 7: time to exhaustively explore the two-symbolic-packet memcached
//! test as a function of the number of workers (the paper reports the time
//! roughly halving with every doubling of the cluster).

use c9_bench::{
    experiment_cluster_config, memcached_workload, print_table, scaling_worker_counts, secs,
};
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for workers in scaling_worker_counts() {
        let (program, env) = memcached_workload();
        let config = experiment_cluster_config(workers, Duration::from_secs(600));
        let result = c9_bench::run_cluster(program, env, config);
        rows.push(vec![
            workers.to_string(),
            secs(result.summary.elapsed),
            result.summary.paths_completed().to_string(),
            result.summary.exhausted.to_string(),
        ]);
    }
    print_table(
        "Fig. 7 — time to exhaustively complete the memcached symbolic test",
        &["workers", "time", "paths", "exhausted"],
        &rows,
    );
}
