//! Fig. 10: useful work on the printf and test utilities as a function of the
//! number of workers, for several time budgets.

use c9_bench::{
    experiment_cluster_config, print_table, printf_workload, scaling_worker_counts, test_workload,
};
use std::time::Duration;

fn main() {
    let budgets = [Duration::from_secs(2), Duration::from_secs(4)];
    for (name, make) in [("printf", true), ("test", false)] {
        let mut rows = Vec::new();
        for workers in scaling_worker_counts() {
            for budget in budgets {
                let (program, env) = if make {
                    printf_workload(10)
                } else {
                    test_workload()
                };
                let config = experiment_cluster_config(workers, budget);
                let result = c9_bench::run_cluster(program, env, config);
                rows.push(vec![
                    workers.to_string(),
                    format!("{}s", budget.as_secs()),
                    result.summary.useful_instructions().to_string(),
                    result.summary.paths_completed().to_string(),
                ]);
            }
        }
        print_table(
            &format!("Fig. 10 — useful work on {name}"),
            &["workers", "budget", "useful instrs", "paths"],
            &rows,
        );
    }
}
