//! Fig. 8: time to reach a target line-coverage level on the printf utility
//! as a function of the number of workers.

use c9_bench::{
    experiment_cluster_config, print_table, printf_workload, scaling_worker_counts, secs,
};
use std::time::Duration;

fn main() {
    let targets = [0.5, 0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    for workers in scaling_worker_counts() {
        for target in targets {
            let (program, env) = printf_workload(10);
            let mut config = experiment_cluster_config(workers, Duration::from_secs(120));
            config.coverage_target = Some(target);
            let result = c9_bench::run_cluster(program, env, config);
            rows.push(vec![
                workers.to_string(),
                format!("{:.0}%", target * 100.0),
                secs(result.summary.elapsed),
                format!("{:.1}%", result.summary.coverage_ratio() * 100.0),
                result.summary.goal_reached.to_string(),
            ]);
        }
    }
    print_table(
        "Fig. 8 — time to reach a coverage target on printf",
        &["workers", "target", "time", "achieved", "reached"],
        &rows,
    );
}
