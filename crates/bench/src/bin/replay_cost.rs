//! Replay cost of job materialization: what a transferred job costs the
//! receiving worker, with and without the prefix-anchor replay cache.
//!
//! Two experiments per target (memcached-3x5 and curl-8; `--quick` keeps
//! only memcached-3x5):
//!
//! * **cluster** — a transfer-heavy 4-worker in-process cluster run to
//!   exhaustion (tiny quanta, tight balancing cadence), recording jobs
//!   materialized per second, replay instructions per imported job, the
//!   anchor hit-rate, and the replay instructions skipped via anchors.
//!   Exhaustive path counts must match between the cache legs (asserted).
//! * **batch** — the deterministic harness: one worker sheds a deep
//!   sibling-heavy 96-job batch, a fresh receiver materializes and
//!   exhausts it; cache off vs on is a pure measure of the trie-batched
//!   replay saving (no balancer timing noise).
//!
//! Results are printed as a table and written to `BENCH_replay.json`.
//!
//! A final experiment re-runs the deterministic batch harness with full
//! tracing armed (span recording on) and reports the wall-clock overhead
//! versus tracing off — the observability layer's ≤5% budget.

use c9_core::{Cluster, ClusterConfig, ReplayCacheConfig, Worker, WorkerConfig, WorkerId};
use c9_posix::PosixEnvironment;
use c9_targets::named_workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Row {
    target: &'static str,
    mode: &'static str,
    cache: &'static str,
    paths: u64,
    jobs_received: u64,
    materializations: u64,
    replay: u64,
    saved: u64,
    anchor_hit_rate: f64,
    secs: f64,
}

impl Row {
    fn materialized_per_sec(&self) -> f64 {
        self.materializations as f64 / self.secs.max(1e-9)
    }
    fn replay_per_job(&self) -> f64 {
        self.replay as f64 / self.jobs_received.max(1) as f64
    }
}

fn cluster_run(target: &'static str, cache: ReplayCacheConfig, label: &'static str) -> Row {
    let workload = named_workload(target).expect("registered target");
    let mut config = ClusterConfig {
        num_workers: 4,
        time_limit: Some(Duration::from_secs(600)),
        // Transfer-heavy: small quanta and tight reporting/balancing
        // intervals keep jobs moving between workers for the whole run.
        quantum: 2_000,
        status_interval: Duration::from_millis(2),
        balance_interval: Duration::from_millis(4),
        ..ClusterConfig::default()
    };
    config.worker.replay_cache = cache;
    let start = Instant::now();
    let result = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        config,
    )
    .run();
    assert!(result.summary.exhausted, "{target} cluster did not exhaust");
    let secs = start.elapsed().as_secs_f64();
    let s = &result.summary;
    Row {
        target,
        mode: "cluster-4w",
        cache: label,
        paths: s.paths_completed(),
        jobs_received: s.worker_stats.iter().map(|w| w.jobs_received).sum(),
        materializations: s.worker_stats.iter().map(|w| w.materializations).sum(),
        replay: s.replay_instructions(),
        saved: s.replay_saved_instructions(),
        anchor_hit_rate: s.anchor_hit_rate(),
        secs,
    }
}

fn batch_run(target: &'static str, cache: ReplayCacheConfig, label: &'static str) -> Row {
    let workload = named_workload(target).expect("registered target");
    let program = Arc::new(workload.program);
    let env = Arc::new(PosixEnvironment::new());
    let mut source = Worker::new(
        WorkerId(0),
        program.clone(),
        env.clone(),
        WorkerConfig {
            export_order: c9_core::ExportOrder::Deepest,
            ..WorkerConfig::default()
        },
    );
    source.seed_root();
    for _ in 0..1_000_000 {
        if source.queue_length() >= 128 || !source.has_work() {
            break;
        }
        source.run_quantum(100);
    }
    let jobs = source.export_jobs(96);
    let mut receiver = Worker::new(
        WorkerId(1),
        program,
        env,
        WorkerConfig {
            replay_cache: cache,
            ..WorkerConfig::default()
        },
    );
    let start = Instant::now();
    receiver.import_jobs(jobs);
    while receiver.has_work() {
        receiver.run_quantum(100_000);
    }
    let secs = start.elapsed().as_secs_f64();
    let w = &receiver.stats;
    Row {
        target,
        mode: "batch-96",
        cache: label,
        paths: w.paths_completed,
        jobs_received: w.jobs_received,
        materializations: w.materializations,
        replay: w.replay_instructions,
        saved: w.replay_saved_instructions,
        anchor_hit_rate: w.anchor_hit_rate(),
        secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let targets: &[&'static str] = if quick {
        &["memcached-3x5"]
    } else {
        &["memcached-3x5", "curl"]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &target in targets {
        for (cache, label) in [
            (ReplayCacheConfig::DISABLED, "off"),
            (ReplayCacheConfig::default(), "on"),
        ] {
            let row = batch_run(target, cache, label);
            eprintln!(
                "replay_cost {} {} cache={}: {} paths, {} replay instrs, {} saved, \
                 {:.1}% anchor hits, {:.2}s",
                row.target,
                row.mode,
                row.cache,
                row.paths,
                row.replay,
                row.saved,
                100.0 * row.anchor_hit_rate,
                row.secs
            );
            rows.push(row);
            let row = cluster_run(target, cache, label);
            eprintln!(
                "replay_cost {} {} cache={}: {} paths, {} replay instrs, {} saved, \
                 {:.1}% anchor hits, {:.2}s",
                row.target,
                row.mode,
                row.cache,
                row.paths,
                row.replay,
                row.saved,
                100.0 * row.anchor_hit_rate,
                row.secs
            );
            rows.push(row);
        }
        // The cache must never change the explored tree.
        for mode in ["batch-96", "cluster-4w"] {
            let legs: Vec<&Row> = rows
                .iter()
                .filter(|r| r.target == target && r.mode == mode)
                .collect();
            assert_eq!(
                legs[0].paths, legs[1].paths,
                "{target} {mode}: path count changed with the cache"
            );
        }
    }

    println!("\n== replay cost of job materialization (prefix-anchor cache) ==");
    println!(
        "target\t| mode\t| cache\t| paths\t| jobs-in\t| mat/sec\t| replay/job\t| saved\t| anchor-hits\t| drop"
    );
    println!("{}", "-".repeat(120));
    let mut json_rows = Vec::new();
    for row in &rows {
        let baseline = rows
            .iter()
            .find(|r| r.target == row.target && r.mode == row.mode && r.cache == "off")
            .expect("baseline leg");
        let drop = baseline.replay as f64 / row.replay.max(1) as f64;
        println!(
            "{}\t| {}\t| {}\t| {}\t| {}\t| {:.0}\t| {:.1}\t| {}\t| {:.1}%\t| {:.2}x",
            row.target,
            row.mode,
            row.cache,
            row.paths,
            row.jobs_received,
            row.materialized_per_sec(),
            row.replay_per_job(),
            row.saved,
            100.0 * row.anchor_hit_rate,
            drop,
        );
        json_rows.push(format!(
            "    {{\"target\": \"{}\", \"mode\": \"{}\", \"cache\": \"{}\", \"paths\": {}, \
             \"jobs_received\": {}, \"materializations\": {}, \"materialized_per_sec\": {:.2}, \
             \"replay_instructions\": {}, \"replay_per_imported_job\": {:.2}, \
             \"replay_saved_instructions\": {}, \"anchor_hit_rate\": {:.4}, \
             \"replay_drop_vs_off\": {:.3}, \"secs\": {:.3}}}",
            row.target,
            row.mode,
            row.cache,
            row.paths,
            row.jobs_received,
            row.materializations,
            row.materialized_per_sec(),
            row.replay,
            row.replay_per_job(),
            row.saved,
            row.anchor_hit_rate,
            drop,
            row.secs,
        ));
    }
    println!("\n== tracing overhead (batch-96, cache on, spans armed vs off, best of 3) ==");
    println!("target\t| paths\t| off secs\t| on secs\t| overhead");
    println!("{}", "-".repeat(64));
    let mut overhead_rows = Vec::new();
    for &target in targets {
        let best_of = |armed: bool| {
            c9_trace::enable_spans(armed);
            let mut best: Option<Row> = None;
            for _ in 0..3 {
                let row = batch_run(target, ReplayCacheConfig::default(), "on");
                if best.as_ref().map(|b| row.secs < b.secs).unwrap_or(true) {
                    best = Some(row);
                }
            }
            c9_trace::enable_spans(false);
            drop(c9_trace::drain_spans());
            best.expect("three runs")
        };
        let off = best_of(false);
        let on = best_of(true);
        assert_eq!(
            off.paths, on.paths,
            "{target}: path count changed with tracing armed"
        );
        let overhead = on.secs / off.secs.max(1e-9) - 1.0;
        eprintln!(
            "replay_cost {target} tracing overhead: {:.2}% ({:.3}s off, {:.3}s on)",
            100.0 * overhead,
            off.secs,
            on.secs
        );
        println!(
            "{}\t| {}\t| {:.3}\t| {:.3}\t| {:+.2}%",
            target,
            off.paths,
            off.secs,
            on.secs,
            100.0 * overhead,
        );
        overhead_rows.push(format!(
            "    {{\"target\": \"{}\", \"paths\": {}, \"secs_off\": {:.4}, \"secs_on\": {:.4}, \
             \"overhead\": {:.4}}}",
            target, off.paths, off.secs, on.secs, overhead,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"replay_cost\",\n  \"quick\": {},\n  \"rows\": [\n{}\n  ],\n  \"tracing_overhead\": [\n{}\n  ]\n}}\n",
        quick,
        json_rows.join(",\n"),
        overhead_rows.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_replay.json", &json) {
        eprintln!("replay_cost: cannot write BENCH_replay.json: {e}");
    }
}
