//! Table 5: memcached path counts and coverage for the different testing
//! methods — a concrete "test suite", symbolic packets, and the test suite
//! with fault injection.

use c9_bench::print_table;
use c9_posix::PosixEnvironment;
use c9_targets::memcached::{self, MemcachedConfig};
use c9_vm::{DfsSearcher, Engine, EngineConfig, ExecutorConfig};
use std::sync::Arc;
use std::time::Duration;

fn run(program: c9_ir::Program, env: PosixEnvironment) -> (usize, f64) {
    let mut engine = Engine::new(
        Arc::new(program),
        Arc::new(env),
        Box::new(DfsSearcher::new()),
        EngineConfig {
            max_time: Some(Duration::from_secs(60)),
            generate_test_cases: false,
            executor: ExecutorConfig::default(),
            ..EngineConfig::default()
        },
    );
    let summary = engine.run();
    (summary.paths_completed, summary.coverage_ratio() * 100.0)
}

/// The "concrete test suite" row is approximated by bounding exploration of
/// the single-packet program to a handful of paths: a fixed regression suite
/// exercises a fixed, small set of paths (see EXPERIMENTS.md).
fn concrete_suite_program() -> c9_ir::Program {
    memcached::program(&MemcachedConfig {
        packets: 1,
        packet_size: 5,
        ..MemcachedConfig::default()
    })
}

fn main() {
    let mut rows = Vec::new();

    // Row 1: the "entire test suite" — concrete commands only (bounded paths).
    {
        let program = concrete_suite_program();
        let mut engine = Engine::new(
            Arc::new(program),
            Arc::new(PosixEnvironment::new()),
            Box::new(DfsSearcher::new()),
            EngineConfig {
                max_paths: 6,
                generate_test_cases: false,
                ..EngineConfig::default()
            },
        );
        let summary = engine.run();
        rows.push(vec![
            "concrete test suite (bounded)".to_string(),
            summary.paths_completed.to_string(),
            format!("{:.1}%", summary.coverage_ratio() * 100.0),
        ]);
    }

    // Row 2: symbolic packets (two fully symbolic commands).
    {
        let program = memcached::program(&MemcachedConfig {
            packets: 2,
            packet_size: 5,
            ..MemcachedConfig::default()
        });
        let (paths, cov) = run(program, PosixEnvironment::new());
        rows.push(vec![
            "symbolic packets (2 commands)".to_string(),
            paths.to_string(),
            format!("{cov:.1}%"),
        ]);
    }

    // Row 3: symbolic packets with stream fragmentation enabled as well —
    // the analogue of augmenting the suite with environment perturbation
    // (the paper's fault-injection row explores many more paths for a small
    // additional coverage gain; the same effect shows here).
    {
        let program = memcached::program(&MemcachedConfig {
            packets: 2,
            packet_size: 5,
            fragment: true,
            ..MemcachedConfig::default()
        });
        let (paths, cov) = run(program, PosixEnvironment::new());
        rows.push(vec![
            "symbolic packets + fragmentation".to_string(),
            paths.to_string(),
            format!("{cov:.1}%"),
        ]);
    }

    print_table(
        "Table 5 — memcached: paths and coverage per testing method",
        &["method", "paths covered", "coverage"],
        &rows,
    );
}
