//! Intra-worker thread scaling: one worker exhausting a workload with
//! `--threads` 1, 2, and 4, recording jobs/sec (completed paths per
//! second) and useful-instructions/sec. The exhaustive path set is
//! thread-count-invariant (asserted), so the rows are directly comparable.
//!
//! Full mode exhausts the memcached-3x5 and curl-8 workloads; `--quick`
//! keeps only memcached-3x5 so the CI smoke job finishes in seconds.
//! Results are also written to `BENCH_worker_scaling.json`.
//!
//! A final experiment re-runs each target single-threaded with full
//! tracing armed (span recording on) and reports the wall-clock overhead
//! versus tracing off — the observability layer's ≤5% budget. Both legs
//! take the best of three runs to damp scheduler noise.

use c9_core::{Worker, WorkerConfig, WorkerId};
use c9_posix::PosixEnvironment;
use c9_targets::named_workload;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    target: &'static str,
    threads: usize,
    paths: u64,
    useful: u64,
    secs: f64,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        self.paths as f64 / self.secs.max(1e-9)
    }
    fn useful_per_sec(&self) -> f64 {
        self.useful as f64 / self.secs.max(1e-9)
    }
}

fn run_one(target: &'static str, threads: usize) -> Row {
    let workload = named_workload(target).expect("registered target");
    let mut worker = Worker::new(
        WorkerId(0),
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        WorkerConfig {
            threads,
            ..WorkerConfig::default()
        },
    );
    worker.seed_root();
    let start = Instant::now();
    while worker.has_work() {
        worker.run_quantum(100_000);
    }
    Row {
        target,
        threads,
        paths: worker.stats.paths_completed,
        useful: worker.stats.useful_instructions,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// Best (fastest) of `n` runs: exhaustive runs do identical work, so the
/// minimum is the least-noise estimate of the true cost.
fn best_of(n: usize, mut f: impl FnMut() -> Row) -> Row {
    let mut best = f();
    for _ in 1..n {
        let row = f();
        if row.secs < best.secs {
            best = row;
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Every run goes to exhaustion so the rows compare identical total
    // work (a path-budget cut-off would stop different subtrees at
    // different thread counts); quick mode just drops the long curl-8
    // exhaustion and keeps memcached-3x5 (~0.1s per run in release).
    let targets: &[&'static str] = if quick {
        &["memcached-3x5"]
    } else {
        &["memcached-3x5", "curl"]
    };
    let thread_counts = [1usize, 2, 4];

    let mut rows: Vec<Row> = Vec::new();
    for &target in targets {
        let mut exhaustive_paths: Option<u64> = None;
        for &threads in &thread_counts {
            let row = run_one(target, threads);
            // Exhaustion: the path count must be thread-count-invariant.
            match exhaustive_paths {
                None => exhaustive_paths = Some(row.paths),
                Some(expected) => assert_eq!(
                    row.paths, expected,
                    "{target} path count changed with --threads {threads}"
                ),
            }
            eprintln!(
                "worker_scaling {} threads {}: {} paths, {} useful instrs, {:.2}s",
                row.target, row.threads, row.paths, row.useful, row.secs
            );
            rows.push(row);
        }
    }

    println!("\n== worker thread scaling (one worker, shared solver) ==");
    println!("target\t| threads\t| paths\t| jobs/sec\t| useful-instrs/sec\t| speedup");
    println!("{}", "-".repeat(88));
    let mut json_rows = Vec::new();
    for row in &rows {
        let base = rows
            .iter()
            .find(|r| r.target == row.target && r.threads == 1)
            .expect("baseline row");
        let speedup = row.useful_per_sec() / base.useful_per_sec().max(1e-9);
        println!(
            "{}\t| {}\t| {}\t| {:.0}\t| {:.0}\t| {:.2}x",
            row.target,
            row.threads,
            row.paths,
            row.jobs_per_sec(),
            row.useful_per_sec(),
            speedup,
        );
        json_rows.push(format!(
            "    {{\"target\": \"{}\", \"threads\": {}, \"paths\": {}, \"jobs_per_sec\": {:.2}, \
             \"useful_instrs_per_sec\": {:.2}, \"speedup_vs_1\": {:.3}, \"secs\": {:.3}}}",
            row.target,
            row.threads,
            row.paths,
            row.jobs_per_sec(),
            row.useful_per_sec(),
            speedup,
            row.secs,
        ));
    }
    println!("\n== tracing overhead (threads 1, spans armed vs off, best of 3) ==");
    println!("target\t| paths\t| off secs\t| on secs\t| overhead");
    println!("{}", "-".repeat(64));
    let mut overhead_rows = Vec::new();
    for &target in targets {
        let off = best_of(3, || run_one(target, 1));
        c9_trace::enable_spans(true);
        let on = best_of(3, || run_one(target, 1));
        c9_trace::enable_spans(false);
        // The armed legs filled the span rings; empty them so the numbers
        // of a later experiment in this process start clean.
        drop(c9_trace::drain_spans());
        assert_eq!(
            off.paths, on.paths,
            "{target}: path count changed with tracing armed"
        );
        let overhead = on.secs / off.secs.max(1e-9) - 1.0;
        eprintln!(
            "worker_scaling {target} tracing overhead: {:.2}% ({:.3}s off, {:.3}s on)",
            100.0 * overhead,
            off.secs,
            on.secs
        );
        println!(
            "{}\t| {}\t| {:.3}\t| {:.3}\t| {:+.2}%",
            target,
            off.paths,
            off.secs,
            on.secs,
            100.0 * overhead,
        );
        overhead_rows.push(format!(
            "    {{\"target\": \"{}\", \"paths\": {}, \"secs_off\": {:.4}, \"secs_on\": {:.4}, \
             \"overhead\": {:.4}}}",
            target, off.paths, off.secs, on.secs, overhead,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"worker_scaling\",\n  \"quick\": {},\n  \"available_parallelism\": {},\n  \"rows\": [\n{}\n  ],\n  \"tracing_overhead\": [\n{}\n  ]\n}}\n",
        quick,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        json_rows.join(",\n"),
        overhead_rows.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_worker_scaling.json", &json) {
        eprintln!("worker_scaling: cannot write BENCH_worker_scaling.json: {e}");
    }
}
