//! Fig. 12: fraction of candidate states transferred between workers per
//! sampling interval while exhaustively exploring the memcached workload
//! (the paper reports 3–6 % of all states moving in almost every interval).

use c9_bench::{experiment_cluster_config, memcached_workload, print_table};
use std::time::Duration;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let (program, env) = memcached_workload();
    let config = experiment_cluster_config(workers, Duration::from_secs(60));
    let result = c9_bench::run_cluster(program, env, config);
    let mut rows = Vec::new();
    for sample in &result.summary.timeline {
        let pct = if sample.total_states > 0 {
            100.0 * sample.states_transferred as f64 / sample.total_states as f64
        } else {
            0.0
        };
        rows.push(vec![
            format!("{:.1}s", sample.elapsed.as_secs_f64()),
            sample.states_transferred.to_string(),
            sample.total_states.to_string(),
            format!("{pct:.1}%"),
        ]);
    }
    print_table(
        &format!("Fig. 12 — states transferred per interval ({workers} workers)"),
        &["time", "transferred", "total states", "transferred %"],
        &rows,
    );
    println!(
        "total jobs transferred: {}",
        result.summary.jobs_transferred()
    );
}
