//! Fig. 13: instruction throughput when load balancing is disabled at various
//! points during the run, compared with continuous balancing and with static
//! partitioning. Disabling balancing early starves workers and reduces the
//! useful work done — the paper's argument for dynamic partitioning.

use c9_bench::{experiment_cluster_config, memcached_workload, print_table};
use std::time::Duration;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let budget = Duration::from_secs(6);
    let mut rows = Vec::new();
    let mut scenario = |label: &str, disable_after: Option<Duration>, static_partition: bool| {
        let (program, env) = memcached_workload();
        let mut config = experiment_cluster_config(workers, budget);
        config.disable_lb_after = disable_after;
        config.static_partition = static_partition;
        let result = c9_bench::run_cluster(program, env, config);
        rows.push(vec![
            label.to_string(),
            result.summary.useful_instructions().to_string(),
            result.summary.paths_completed().to_string(),
            result.summary.jobs_transferred().to_string(),
        ]);
    };
    scenario("continuous LB", None, false);
    scenario("LB stops after 4s", Some(Duration::from_secs(4)), false);
    scenario("LB stops after 2s", Some(Duration::from_secs(2)), false);
    scenario("LB stops after 1s", Some(Duration::from_secs(1)), false);
    scenario("static partitioning", None, true);
    print_table(
        &format!("Fig. 13 — load-balancing ablation ({workers} workers, {budget:?} budget)"),
        &["scenario", "useful instrs", "paths", "jobs transferred"],
        &rows,
    );
}
