//! Fig. 11: additional line coverage obtained by a multi-worker Cloud9 over
//! the 1-worker baseline on the Coreutils-style suite, within a fixed time
//! budget per utility.

use c9_bench::{experiment_cluster_config, print_table};
use c9_posix::PosixEnvironment;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let budget = Duration::from_secs(2);
    let multi = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let mut rows = Vec::new();
    let mut total_gain = 0.0;
    let suite = c9_targets::coreutils::suite(6);
    let count = suite.len();
    for (name, program) in suite {
        let base = c9_bench::run_cluster(
            program.clone(),
            Arc::new(PosixEnvironment::new()),
            experiment_cluster_config(1, budget),
        );
        let wide = c9_bench::run_cluster(
            program,
            Arc::new(PosixEnvironment::new()),
            experiment_cluster_config(multi, budget),
        );
        let base_cov = base.summary.coverage_ratio() * 100.0;
        let wide_cov = wide.summary.coverage_ratio() * 100.0;
        let gain = (wide_cov - base_cov).max(0.0);
        total_gain += gain;
        rows.push(vec![
            name.to_string(),
            format!("{base_cov:.1}%"),
            format!("{wide_cov:.1}%"),
            format!("+{gain:.1}%"),
        ]);
    }
    print_table(
        &format!("Fig. 11 — coverage: 1 worker vs {multi} workers (per utility)"),
        &["utility", "baseline", "parallel", "additional"],
        &rows,
    );
    println!(
        "average additional coverage: +{:.1}% of program LOC",
        total_gain / count as f64
    );
}
