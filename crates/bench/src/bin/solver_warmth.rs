//! Solver warmth of transferred jobs: what a constraint-cache slice
//! gossiped alongside jobs buys the receiving worker.
//!
//! A transferred state arrives at a worker whose constraint caches know
//! nothing about it (§6 of the paper): every branch of the materializing
//! replay is re-solved from scratch. Cache gossip ships the sender's
//! hottest query-cache entries with the batch, so the receiver's first
//! quantum over imported jobs starts warm. Two experiments per target
//! (memcached-3x5 and curl; `--quick` keeps only memcached-3x5):
//!
//! * **cluster** — a transfer-heavy 4-worker in-process cluster run to
//!   exhaustion (tiny quanta, tight balancing cadence), gossip off vs on,
//!   recording solver queries/sec, the cache-hit rate, warm hits on
//!   imported entries, and gossip bytes. Exhaustive path counts must match
//!   between the legs (asserted): gossip only changes cache contents,
//!   never answers.
//! * **import** — the deterministic harness: one worker sheds a deep
//!   96-job batch, a fresh receiver materializes and exhausts it either
//!   cold (jobs only) or warm (the sender's cache slice imported first).
//!   No balancer timing noise, so the first-quantum hit rates and the
//!   total search count are exact, pinned numbers.
//!
//! Results are printed as a table and written to `BENCH_solver_warmth.json`.

use c9_core::{Cluster, ClusterConfig, Worker, WorkerConfig, WorkerId};
use c9_posix::PosixEnvironment;
use c9_targets::named_workload;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ClusterRow {
    target: &'static str,
    gossip: &'static str,
    paths: u64,
    queries: u64,
    searches: u64,
    cache_hit_rate: f64,
    warm_hits: u64,
    imported_entries: u64,
    warm_hit_rate: f64,
    gossip_bytes: u64,
    secs: f64,
}

impl ClusterRow {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.secs.max(1e-9)
    }
}

fn cluster_run(target: &'static str, gossip: bool) -> ClusterRow {
    let workload = named_workload(target).expect("registered target");
    let mut config = ClusterConfig {
        num_workers: 4,
        time_limit: Some(Duration::from_secs(600)),
        // Transfer-heavy: small quanta and tight reporting/balancing
        // intervals keep jobs (and gossip slices) moving for the whole run.
        quantum: 2_000,
        status_interval: Duration::from_millis(2),
        balance_interval: Duration::from_millis(4),
        ..ClusterConfig::default()
    };
    config.worker.cache_gossip = gossip;
    let start = Instant::now();
    let result = Cluster::new(
        Arc::new(workload.program),
        Arc::new(PosixEnvironment::new()),
        config,
    )
    .run();
    assert!(result.summary.exhausted, "{target} cluster did not exhaust");
    let secs = start.elapsed().as_secs_f64();
    let s = &result.summary;
    let solver = s.solver_stats();
    ClusterRow {
        target,
        gossip: if gossip { "on" } else { "off" },
        paths: s.paths_completed(),
        queries: solver.queries,
        searches: solver.searches,
        cache_hit_rate: solver.cache_hit_rate(),
        warm_hits: solver.warm_hits,
        imported_entries: solver.imported_cache_entries,
        warm_hit_rate: solver.warm_hit_rate(),
        gossip_bytes: s
            .worker_stats
            .iter()
            .map(|w| w.gossip_bytes_sent + w.gossip_bytes_received)
            .sum(),
        secs,
    }
}

struct ImportLeg {
    paths: u64,
    first_queries: u64,
    first_hit_rate: f64,
    first_warm_hits: u64,
    first_warm_hit_rate: f64,
    first_searches: u64,
    searches: u64,
    imported_entries: u64,
}

/// Runs the deterministic import harness once: a fresh receiver imports a
/// 96-job batch shed by a source worker — cold, or warmed by the source's
/// constraint-cache slice first — runs one 100k-instruction quantum (the
/// "first quantum" the slice is supposed to accelerate), then exhausts
/// the batch.
fn import_leg(target: &'static str, warm: bool) -> ImportLeg {
    let workload = named_workload(target).expect("registered target");
    let program = Arc::new(workload.program);
    let env = Arc::new(PosixEnvironment::new());
    let mut source = Worker::new(
        WorkerId(0),
        program.clone(),
        env.clone(),
        WorkerConfig {
            export_order: c9_core::ExportOrder::Deepest,
            ..WorkerConfig::default()
        },
    );
    source.seed_root();
    for _ in 0..1_000_000 {
        if source.queue_length() >= 128 || !source.has_work() {
            break;
        }
        source.run_quantum(100);
    }
    let jobs = source.export_jobs(96);
    let slice = source
        .export_cache_slice(1024)
        .expect("source solved queries, so its cache exports a slice");

    let mut receiver = Worker::new(WorkerId(1), program, env, WorkerConfig::default());
    if warm {
        receiver.import_cache_slice(&slice);
    }
    receiver.import_jobs(jobs);
    receiver.run_quantum(100_000);
    let first = receiver.report_stats();
    while receiver.has_work() {
        receiver.run_quantum(100_000);
    }
    let done = receiver.report_stats();
    ImportLeg {
        paths: done.paths_completed,
        first_queries: first.solver.queries,
        first_hit_rate: first.solver.cache_hit_rate(),
        first_warm_hits: first.solver.warm_hits,
        first_warm_hit_rate: first.solver.warm_hit_rate(),
        first_searches: first.solver.searches,
        searches: done.solver.searches,
        imported_entries: done.solver.imported_cache_entries,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let targets: &[&'static str] = if quick {
        &["memcached-3x5"]
    } else {
        &["memcached-3x5", "curl"]
    };

    let mut cluster_rows: Vec<ClusterRow> = Vec::new();
    for &target in targets {
        for gossip in [false, true] {
            let row = cluster_run(target, gossip);
            eprintln!(
                "solver_warmth {} cluster-4w gossip={}: {} paths, {} queries \
                 ({:.1}% cache hits, {:.1}% warm), {} searches, {} gossip bytes, {:.2}s",
                row.target,
                row.gossip,
                row.paths,
                row.queries,
                100.0 * row.cache_hit_rate,
                100.0 * row.warm_hit_rate,
                row.searches,
                row.gossip_bytes,
                row.secs
            );
            cluster_rows.push(row);
        }
        let legs: Vec<&ClusterRow> = cluster_rows.iter().filter(|r| r.target == target).collect();
        // Gossip only changes what the caches remember, never what the
        // solver answers: the explored tree must be bit-identical.
        assert_eq!(
            legs[0].paths, legs[1].paths,
            "{target} cluster-4w: path count changed with gossip"
        );
        let on = legs.iter().find(|r| r.gossip == "on").expect("gossip leg");
        assert!(
            on.gossip_bytes > 0,
            "{target} cluster-4w: gossip on moved no slice bytes"
        );
    }

    println!("\n== solver warmth under cache gossip (cluster, 4 workers) ==");
    println!(
        "target\t| gossip\t| paths\t| queries\t| q/sec\t| cache-hits\t| warm-hits\t| searches\t| gossip-bytes"
    );
    println!("{}", "-".repeat(110));
    let mut cluster_json = Vec::new();
    for row in &cluster_rows {
        println!(
            "{}\t| {}\t| {}\t| {}\t| {:.0}\t| {:.1}%\t| {} ({:.1}%)\t| {}\t| {}",
            row.target,
            row.gossip,
            row.paths,
            row.queries,
            row.queries_per_sec(),
            100.0 * row.cache_hit_rate,
            row.warm_hits,
            100.0 * row.warm_hit_rate,
            row.searches,
            row.gossip_bytes,
        );
        cluster_json.push(format!(
            "    {{\"target\": \"{}\", \"mode\": \"cluster-4w\", \"gossip\": \"{}\", \
             \"paths\": {}, \"queries\": {}, \"queries_per_sec\": {:.2}, \
             \"cache_hit_rate\": {:.4}, \"warm_hits\": {}, \"imported_cache_entries\": {}, \
             \"warm_hit_rate\": {:.4}, \"searches\": {}, \"gossip_bytes\": {}, \"secs\": {:.3}}}",
            row.target,
            row.gossip,
            row.paths,
            row.queries,
            row.queries_per_sec(),
            row.cache_hit_rate,
            row.warm_hits,
            row.imported_entries,
            row.warm_hit_rate,
            row.searches,
            row.gossip_bytes,
            row.secs,
        ));
    }

    println!("\n== first-quantum warmth of an imported 96-job batch (deterministic) ==");
    println!(
        "target\t| leg\t| paths\t| 1st-q queries\t| 1st-q cache-hits\t| 1st-q warm-hits\t| 1st-q searches\t| searches"
    );
    println!("{}", "-".repeat(100));
    let mut import_json = Vec::new();
    for &target in targets {
        let cold = import_leg(target, false);
        let warm = import_leg(target, true);
        // The slice is pure cache payload: same paths either way.
        assert_eq!(
            cold.paths, warm.paths,
            "{target} import: path count changed with the slice"
        );
        assert!(
            warm.imported_entries > 0 && warm.first_warm_hits > 0,
            "{target} import: the slice warmed nothing"
        );
        // The pinned wins. First: with the slice, at least a third of the
        // receiver's first-quantum cache hits are served by the sender's
        // entries (observed: all of them on memcached-3x5, ~43% on curl
        // whose larger tree self-warms more within one quantum — a cold
        // receiver's hits come only from that self-warming over shared
        // replay prefixes, so its warm-hit rate is pinned at zero).
        assert!(
            3.0 * warm.first_warm_hit_rate >= 1.0,
            "{target} import: only {:.3} of first-quantum hits were warm",
            warm.first_warm_hit_rate
        );
        // Second: the batch costs strictly fewer backtracking searches end
        // to end — each one a §6 cold-cache re-solve the slice spared.
        assert!(
            warm.searches < cold.searches,
            "{target} import: warm searches {} not below cold {}",
            warm.searches,
            cold.searches
        );
        for (leg, label) in [(&cold, "cold"), (&warm, "warm")] {
            eprintln!(
                "solver_warmth {} import {}: {} paths, first quantum {} queries \
                 ({:.1}% cache hits, {} warm hits, {} searches), {} searches total",
                target,
                label,
                leg.paths,
                leg.first_queries,
                100.0 * leg.first_hit_rate,
                leg.first_warm_hits,
                leg.first_searches,
                leg.searches
            );
            println!(
                "{}\t| {}\t| {}\t| {}\t| {:.1}%\t| {} ({:.1}%)\t| {}\t| {}",
                target,
                label,
                leg.paths,
                leg.first_queries,
                100.0 * leg.first_hit_rate,
                leg.first_warm_hits,
                100.0 * leg.first_warm_hit_rate,
                leg.first_searches,
                leg.searches,
            );
            import_json.push(format!(
                "    {{\"target\": \"{}\", \"mode\": \"import-96\", \"leg\": \"{}\", \
                 \"paths\": {}, \"first_quantum_queries\": {}, \
                 \"first_quantum_cache_hit_rate\": {:.4}, \"first_quantum_warm_hits\": {}, \
                 \"first_quantum_warm_hit_rate\": {:.4}, \"first_quantum_searches\": {}, \
                 \"searches\": {}, \"imported_cache_entries\": {}}}",
                target,
                label,
                leg.paths,
                leg.first_queries,
                leg.first_hit_rate,
                leg.first_warm_hits,
                leg.first_warm_hit_rate,
                leg.first_searches,
                leg.searches,
                leg.imported_entries,
            ));
        }
        println!(
            "{}\t| win\t| 1st-q searches {} -> {} ({:.2}x), total {} -> {}, 1st-q warm hits {}",
            target,
            cold.first_searches,
            warm.first_searches,
            cold.first_searches as f64 / warm.first_searches.max(1) as f64,
            cold.searches,
            warm.searches,
            warm.first_warm_hits,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"solver_warmth\",\n  \"quick\": {},\n  \"cluster\": [\n{}\n  ],\n  \"import\": [\n{}\n  ]\n}}\n",
        quick,
        cluster_json.join(",\n"),
        import_json.join(",\n"),
    );
    if let Err(e) = std::fs::write("BENCH_solver_warmth.json", &json) {
        eprintln!("solver_warmth: cannot write BENCH_solver_warmth.json: {e}");
    }
}
