//! Fig. 9: useful work (non-replay instructions) on the memcached workload —
//! total and normalized per worker — for several time budgets. Linear total
//! scaling with a roughly flat per-worker line is the paper's result.

use c9_bench::{experiment_cluster_config, memcached_workload, print_table, scaling_worker_counts};
use std::time::Duration;

fn main() {
    let budgets = [
        Duration::from_secs(2),
        Duration::from_secs(4),
        Duration::from_secs(6),
    ];
    let mut rows = Vec::new();
    for workers in scaling_worker_counts() {
        for budget in budgets {
            let (program, env) = memcached_workload();
            let config = experiment_cluster_config(workers, budget);
            let result = c9_bench::run_cluster(program, env, config);
            let useful = result.summary.useful_instructions();
            rows.push(vec![
                workers.to_string(),
                format!("{}s", budget.as_secs()),
                useful.to_string(),
                format!("{:.0}", result.summary.useful_instructions_per_worker()),
                result.summary.replay_instructions().to_string(),
            ]);
        }
    }
    print_table(
        "Fig. 9 — useful work on memcached (total and per worker)",
        &[
            "workers",
            "budget",
            "useful instrs",
            "useful/worker",
            "replay instrs",
        ],
        &rows,
    );
}
