//! Table 6: behaviour of the lighttpd request parser, pre- and post-patch,
//! under different request fragmentation patterns. The symbolic test explores
//! all fragmentation patterns; the table reports whether crashing patterns
//! exist and with how many fragments.

use c9_bench::{lighttpd_workload, print_table};
use c9_targets::LighttpdVersion;
use c9_vm::{BugKind, DfsSearcher, Engine, EngineConfig, TerminationReason};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for (label, version) in [
        ("1.4.12 (pre-patch)", LighttpdVersion::V1_4_12),
        ("1.4.13 (post-patch)", LighttpdVersion::V1_4_13),
        ("fully fixed", LighttpdVersion::Fixed),
    ] {
        let (program, env) = lighttpd_workload(version);
        let mut engine = Engine::new(
            Arc::new(program),
            env,
            Box::new(DfsSearcher::new()),
            EngineConfig {
                max_paths: 600,
                max_time: Some(Duration::from_secs(60)),
                generate_test_cases: true,
                ..EngineConfig::default()
            },
        );
        let summary = engine.run();
        let crashes: Vec<&c9_vm::TestCase> = summary
            .bugs
            .iter()
            .filter(|b| matches!(b.termination, TerminationReason::Bug(BugKind::Abort { .. })))
            .collect();
        let min_frags = crashes
            .iter()
            .map(|tc| {
                tc.path
                    .iter()
                    .filter(|c| matches!(c, c9_vm::PathChoice::Alt { .. }))
                    .count()
            })
            .min();
        rows.push(vec![
            label.to_string(),
            summary.paths_completed.to_string(),
            crashes.len().to_string(),
            match min_frags {
                Some(n) => format!("crash + hang (≥{n} fragments)"),
                None => "OK (no crashing fragmentation found)".to_string(),
            },
        ]);
    }
    print_table(
        "Table 6 — lighttpd behaviour under request fragmentation",
        &["version", "paths explored", "crashing patterns", "verdict"],
        &rows,
    );
}
