//! Fig. 14 (extension): coverage yield of a heterogeneous strategy
//! portfolio versus every-worker-identical (uniform) search, at the same
//! worker count and the same quantum budget.
//!
//! The paper's cluster multiplies throughput, but with a uniform strategy
//! it also multiplies redundant exploration; spreading the workers across a
//! mix of heuristics (dfs, random-path, cov-opt, cupa) diversifies the
//! scenarios visited per CPU-hour. For each target the harness first
//! measures the exhaustive path count, then gives every scenario the same
//! partial budget (one eighth of exhaustion, stopped via the cluster's
//! path-limit goal) and reports the global line coverage reached within
//! it — the earlier the curve rises, the better the strategy spends the
//! budget.

use c9_bench::{experiment_cluster_config, print_table};
use c9_core::{ClusterConfig, PortfolioConfig};
use c9_posix::PosixEnvironment;
use c9_targets::memcached::{self, MemcachedConfig};
use c9_targets::printf_util;
use c9_vm::StrategyKind;
use std::sync::Arc;
use std::time::Duration;

fn portfolio_mix() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Dfs,
        StrategyKind::RandomPath,
        StrategyKind::CovOpt,
        StrategyKind::Cupa,
    ]
}

fn base_config(workers: usize) -> ClusterConfig {
    let mut config = experiment_cluster_config(workers, Duration::from_secs(60));
    // Small quanta and tight reporting so the path-budget stop lands close
    // to the budget instead of a whole quantum past it.
    config.quantum = 500;
    config.status_interval = Duration::from_millis(1);
    config.balance_interval = Duration::from_millis(2);
    config
}

fn run_scenario(
    program: &c9_ir::Program,
    workers: usize,
    max_paths: Option<u64>,
    portfolio: Option<PortfolioConfig>,
) -> c9_core::ClusterRunResult {
    let mut config = base_config(workers);
    config.max_total_paths = max_paths;
    config.portfolio = portfolio;
    c9_bench::run_cluster(program.clone(), Arc::new(PosixEnvironment::new()), config)
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2)
        .max(2);
    let mix = portfolio_mix();
    let mix_label = mix.iter().map(|k| k.name()).collect::<Vec<_>>().join(",");

    let workloads: Vec<(&str, c9_ir::Program)> = vec![
        (
            "memcached-3x5",
            memcached::program(&MemcachedConfig {
                packets: 3,
                packet_size: 5,
                ..MemcachedConfig::default()
            }),
        ),
        ("printf-6", printf_util::program(6)),
        ("curl-8", c9_targets::curl::program(8)),
    ];

    let mut rows = Vec::new();
    for (target, program) in workloads {
        // Calibrate: the exhaustive path count of this target.
        let full = run_scenario(&program, workers, None, None);
        let total = full.summary.paths_completed();
        let budget = (total / 8).max(1);

        let mut scenario = |label: &str, portfolio: Option<PortfolioConfig>| {
            let result = run_scenario(&program, workers, Some(budget), portfolio);
            rows.push(vec![
                target.to_string(),
                label.to_string(),
                format!("{}/{total}", result.summary.paths_completed().min(budget)),
                format!("{:.2}%", 100.0 * result.summary.coverage_ratio()),
                result.summary.useful_instructions().to_string(),
                result.summary.strategy_rebalances.to_string(),
            ]);
        };
        scenario("uniform klee-default", None);
        scenario(
            "uniform dfs",
            Some(PortfolioConfig::uniform(StrategyKind::Dfs)),
        );
        scenario(
            "portfolio",
            Some(PortfolioConfig {
                mix: mix.clone(),
                adapt: false,
            }),
        );
        scenario(
            "portfolio + adapt",
            Some(PortfolioConfig {
                mix: mix.clone(),
                adapt: true,
            }),
        );
    }
    print_table(
        &format!(
            "Fig. 14 — strategy portfolio vs uniform ({workers} workers, path budget = 1/8 of \
             exhaustion, mix {mix_label})"
        ),
        &[
            "target",
            "scenario",
            "budget",
            "coverage",
            "useful instrs",
            "rebalances",
        ],
        &rows,
    );
}
