//! Experiment harnesses regenerating the tables and figures of the Cloud9
//! paper's evaluation (§7).
//!
//! Each figure/table has a binary in `src/bin/` that runs the corresponding
//! experiment at laptop scale and prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` in the repository root records a reference run.
//! Criterion micro-benchmarks for the engine's building blocks live in
//! `benches/`.
//!
//! The shared code here builds clusters for the standard workloads and
//! formats results.

use c9_core::{Cluster, ClusterConfig, ClusterRunResult, WorkerConfig};
use c9_posix::{PosixConfig, PosixEnvironment};
use c9_targets::memcached::MemcachedConfig;
use c9_vm::{Environment, ExecutorConfig};
use std::sync::Arc;
use std::time::Duration;

/// Worker counts used by the scaling experiments (the paper uses 1–48 cluster
/// nodes; we scale to what one machine can host).
pub fn scaling_worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|n| *n <= cores.max(2))
        .collect()
}

/// Builds the default cluster configuration used by the experiments.
pub fn experiment_cluster_config(num_workers: usize, time_limit: Duration) -> ClusterConfig {
    ClusterConfig {
        num_workers,
        worker: WorkerConfig {
            executor: ExecutorConfig {
                max_instructions_per_path: 2_000_000,
                ..ExecutorConfig::default()
            },
            generate_test_cases: false,
            ..WorkerConfig::default()
        },
        time_limit: Some(time_limit),
        status_interval: Duration::from_millis(5),
        balance_interval: Duration::from_millis(10),
        sample_interval: Duration::from_millis(200),
        quantum: 10_000,
        ..ClusterConfig::default()
    }
}

/// Runs a cluster over `program` with the POSIX environment.
pub fn run_cluster(
    program: c9_ir::Program,
    env: Arc<dyn Environment>,
    config: ClusterConfig,
) -> ClusterRunResult {
    Cluster::new(Arc::new(program), env, config).run()
}

/// The memcached symbolic-packet workload of Fig. 7 / Fig. 9 / Table 5.
pub fn memcached_workload() -> (c9_ir::Program, Arc<dyn Environment>) {
    let program = c9_targets::memcached::program(&MemcachedConfig {
        packets: 2,
        packet_size: 5,
        ..MemcachedConfig::default()
    });
    (program, Arc::new(PosixEnvironment::new()))
}

/// The printf workload of Fig. 8 / Fig. 10.
pub fn printf_workload(fmt_len: u32) -> (c9_ir::Program, Arc<dyn Environment>) {
    (
        c9_targets::printf_util::program(fmt_len),
        Arc::new(PosixEnvironment::new()),
    )
}

/// The test-utility workload of Fig. 10.
pub fn test_workload() -> (c9_ir::Program, Arc<dyn Environment>) {
    (
        c9_targets::test_util::program(6),
        Arc::new(PosixEnvironment::new()),
    )
}

/// The lighttpd fragmentation workload of Table 6.
pub fn lighttpd_workload(
    version: c9_targets::LighttpdVersion,
) -> (c9_ir::Program, Arc<dyn Environment>) {
    let env = PosixEnvironment::with_config(PosixConfig {
        max_symbolic_chunk: 28,
        max_fragment_alternatives: 3,
        ..PosixConfig::default()
    });
    (c9_targets::lighttpd::program(version), Arc::new(env))
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Prints a table header followed by rows (simple fixed-width formatting).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join("\t| "));
    println!("{}", "-".repeat(16 * header.len()));
    for row in rows {
        println!("{}", row.join("\t| "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_counts_start_at_one() {
        let counts = scaling_worker_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.iter().all(|c| *c >= 1));
    }

    #[test]
    fn workloads_build_valid_programs() {
        assert!(memcached_workload().0.validate().is_ok());
        assert!(printf_workload(6).0.validate().is_ok());
        assert!(test_workload().0.validate().is_ok());
        assert!(lighttpd_workload(c9_targets::LighttpdVersion::V1_4_12)
            .0
            .validate()
            .is_ok());
    }
}
