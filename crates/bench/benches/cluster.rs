//! Criterion benchmark comparing 1-worker and multi-worker exhaustive
//! exploration of the memcached symbolic-packet workload (the Fig. 7 result
//! in miniature).

use c9_bench::{experiment_cluster_config, memcached_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));

    for workers in [1usize, 2] {
        group.bench_function(format!("memcached_exhaustive_{workers}w"), |b| {
            b.iter(|| {
                let (program, env) = memcached_workload();
                let config = experiment_cluster_config(workers, Duration::from_secs(300));
                let result = c9_bench::run_cluster(program, env, config);
                assert!(result.summary.exhausted);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
