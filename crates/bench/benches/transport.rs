//! Criterion benchmark comparing job-batch transfer throughput over the
//! in-process channel transport vs. loopback TCP, at batch sizes 1 / 64 /
//! 1024 — the cost of crossing a real network stack per §3.2 job transfer.
//!
//! Each iteration ships one encoded job batch from worker 0 to worker 1 and
//! decodes it on arrival (send + frame + receive + trie expansion), which is
//! exactly the per-transfer work of a cluster run.

use c9_core::{Job, JobTree};
use c9_net::{InProcTransport, JobBatch, RunId, TcpTransport, Transport, WorkerEndpoint, WorkerId};
use c9_vm::PathChoice;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Builds a realistic batch: deep paths sharing a long common prefix.
fn sample_jobs(count: usize) -> Vec<Job> {
    let prefix: Vec<PathChoice> = (0..40).map(|i| PathChoice::Branch(i % 3 == 0)).collect();
    (0..count)
        .map(|j| {
            let mut path = prefix.clone();
            for i in 0..12 {
                path.push(PathChoice::Branch((j >> (i % 8)) & 1 == 1));
            }
            path.push(PathChoice::Alt {
                chosen: j as u32 % 7,
                total: 7,
            });
            Job::new(path)
        })
        .collect()
}

/// One transfer: encode on the sender, ship, poll the receiver, expand.
fn transfer<W: WorkerEndpoint>(sender: &mut W, receiver: &mut W, jobs: &[Job]) -> usize {
    let batch = JobBatch {
        source: WorkerId(0),
        run: RunId(1),
        source_epoch: 0,
        seq: 0,
        encoded: JobTree::from_jobs(jobs).encode(),
        slice: None,
    };
    sender.send_jobs(WorkerId(1), batch).expect("send");
    loop {
        if let Some(received) = receiver.try_recv_jobs() {
            let tree = JobTree::decode(&received.encoded).expect("decode");
            return tree.to_jobs().len();
        }
        std::hint::spin_loop();
    }
}

/// Prints jobs/sec for the CHANGES.md record.
fn report_throughput<W: WorkerEndpoint>(
    name: &str,
    batch_size: usize,
    tx: &mut W,
    rx: &mut W,
    jobs: &[Job],
) {
    let rounds = if batch_size >= 1024 { 200 } else { 2_000 };
    let start = Instant::now();
    let mut moved = 0usize;
    for _ in 0..rounds {
        moved += transfer(tx, rx, jobs);
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "throughput {name:>6} batch {batch_size:>5}: {:>12.0} jobs/sec ({rounds} transfers)",
        moved as f64 / elapsed
    );
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));

    for batch_size in [1usize, 64, 1024] {
        let jobs = sample_jobs(batch_size);

        let endpoints = InProcTransport.establish(2).expect("in-proc establish");
        let mut workers = endpoints.workers;
        let (left, right) = workers.split_at_mut(1);
        let (tx, rx) = (&mut left[0], &mut right[0]);
        group.bench_function(format!("inproc_batch{batch_size}"), |b| {
            b.iter(|| transfer(tx, rx, &jobs));
        });
        report_throughput("inproc", batch_size, tx, rx, &jobs);

        let endpoints = TcpTransport::loopback()
            .establish(2)
            .expect("tcp establish");
        let mut workers = endpoints.workers;
        let (left, right) = workers.split_at_mut(1);
        let (tx, rx) = (&mut left[0], &mut right[0]);
        group.bench_function(format!("tcp_batch{batch_size}"), |b| {
            b.iter(|| transfer(tx, rx, &jobs));
        });
        report_throughput("tcp", batch_size, tx, rx, &jobs);
    }
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
