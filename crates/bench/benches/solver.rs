//! Criterion micro-benchmarks for the constraint solver, including the
//! cache on/off ablation called out in DESIGN.md.

use c9_expr::{Expr, SymbolManager, Width};
use c9_solver::{ConstraintSet, Solver, SolverConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn parser_constraints(bytes: usize) -> (ConstraintSet, Solver) {
    let mut m = SymbolManager::new();
    let syms = m.fresh_bytes("pkt", bytes);
    let mut pc = ConstraintSet::new();
    for (i, s) in syms.iter().enumerate() {
        let e = Expr::sym(*s, Width::W8);
        if i % 2 == 0 {
            pc.push(Expr::ult(e, Expr::const_(64 + i as u64, Width::W8)));
        } else {
            pc.push(Expr::ne(e, Expr::const_(0, Width::W8)));
        }
    }
    (pc, Solver::new())
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);

    group.bench_function("check_sat_8_bytes", |b| {
        let (pc, solver) = parser_constraints(8);
        b.iter(|| {
            solver.clear_caches();
            assert!(solver.check_sat(&pc).is_sat());
        });
    });

    group.bench_function("check_sat_cached", |b| {
        let (pc, solver) = parser_constraints(8);
        assert!(solver.check_sat(&pc).is_sat());
        b.iter(|| assert!(solver.check_sat(&pc).is_sat()));
    });

    group.bench_function("check_sat_no_caches", |b| {
        let (pc, _) = parser_constraints(8);
        let solver = Solver::with_config(SolverConfig {
            enable_model_cache: false,
            enable_query_cache: false,
            ..SolverConfig::default()
        });
        b.iter(|| assert!(solver.check_sat(&pc).is_sat()));
    });

    group.bench_function("may_be_true_branch_query", |b| {
        let (pc, solver) = parser_constraints(12);
        let mut m = SymbolManager::new();
        let extra = m.fresh("q", Width::W8);
        let q = Expr::eq(Expr::sym(extra, Width::W8), Expr::const_(42, Width::W8));
        b.iter(|| assert!(solver.may_be_true(&pc, q.clone())));
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
