//! Criterion benchmark for the job-encoding ablation of DESIGN.md: prefix
//! job-tree encoding vs. flat per-job path encoding.

use c9_core::{encode_jobs_flat, Job, JobTree};
use c9_vm::PathChoice;
use criterion::{criterion_group, criterion_main, Criterion};

fn sample_jobs(count: usize, depth: usize, shared_prefix: usize) -> Vec<Job> {
    let prefix: Vec<PathChoice> = (0..shared_prefix)
        .map(|i| PathChoice::Branch(i % 3 == 0))
        .collect();
    (0..count)
        .map(|j| {
            let mut path = prefix.clone();
            for i in 0..depth {
                path.push(PathChoice::Branch((j >> (i % 8)) & 1 == 1));
            }
            Job::new(path)
        })
        .collect()
}

fn bench_job_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("job_encoding");
    group.sample_size(30);
    let jobs = sample_jobs(64, 20, 60);

    group.bench_function("job_tree_encode", |b| {
        b.iter(|| JobTree::from_jobs(&jobs).encode());
    });
    group.bench_function("flat_encode", |b| {
        b.iter(|| encode_jobs_flat(&jobs));
    });
    group.bench_function("job_tree_roundtrip", |b| {
        let encoded = JobTree::from_jobs(&jobs).encode();
        b.iter(|| JobTree::decode(&encoded).unwrap().to_jobs());
    });

    // Report the size ratio once (the shape result of the ablation).
    let tree_len = JobTree::from_jobs(&jobs).encode().len();
    let flat_len = encode_jobs_flat(&jobs).len();
    println!("job-tree bytes: {tree_len}, flat bytes: {flat_len}");
    group.finish();
}

criterion_group!(benches, bench_job_encoding);
criterion_main!(benches);
