//! Criterion micro-benchmarks for the single-node engine: raw interpretation
//! throughput and exhaustive exploration of a small symbolic program.

use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Width};
use c9_vm::{sysno, DfsSearcher, Engine, EngineConfig, NullEnvironment};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn concrete_loop_program(iterations: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let i = f.copy(Operand::word(0));
    let loop_bb = f.create_block();
    let body_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let done = f.binary(BinaryOp::Ule, Operand::word(iterations), Operand::Reg(i));
    f.branch(Operand::Reg(done), done_bb, body_bb);
    f.switch_to(body_bb);
    let next = f.binary(BinaryOp::Add, Operand::Reg(i), Operand::word(1));
    f.assign_to(i, c9_ir::Rvalue::Use(Operand::Reg(next)));
    f.jump(loop_bb);
    f.switch_to(done_bb);
    f.ret(Some(Operand::Reg(i)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

fn symbolic_program(bytes: u32) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(bytes));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(bytes)],
    );
    let mut next = f.create_block();
    for i in 0..bytes {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i));
        let b = f.load(Operand::Reg(addr), Width::W8);
        let cond = f.binary(BinaryOp::Ult, Operand::Reg(b), Operand::byte(100));
        let t = f.create_block();
        f.branch(Operand::Reg(cond), t, next);
        f.switch_to(t);
        f.jump(next);
        f.switch_to(next);
        if i + 1 < bytes {
            next = f.create_block();
        }
    }
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    group.bench_function("concrete_interpretation_10k_iters", |b| {
        let program = Arc::new(concrete_loop_program(10_000));
        b.iter(|| {
            let mut engine = Engine::new(
                program.clone(),
                Arc::new(NullEnvironment),
                Box::new(DfsSearcher::new()),
                EngineConfig {
                    generate_test_cases: false,
                    ..EngineConfig::default()
                },
            );
            let summary = engine.run();
            assert_eq!(summary.paths_completed, 1);
        });
    });

    group.bench_function("exhaustive_exploration_6_branches", |b| {
        let program = Arc::new(symbolic_program(6));
        b.iter(|| {
            let mut engine = Engine::new(
                program.clone(),
                Arc::new(NullEnvironment),
                Box::new(DfsSearcher::new()),
                EngineConfig {
                    generate_test_cases: false,
                    ..EngineConfig::default()
                },
            );
            let summary = engine.run();
            assert_eq!(summary.paths_completed, 64);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
