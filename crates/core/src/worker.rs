//! A Cloud9 worker: an independent symbolic execution engine plus the
//! execution-tree bookkeeping needed for dynamic work partitioning.
//!
//! # Intra-worker parallelism
//!
//! A worker steps `threads` states concurrently over one shared frontier
//! and one shared (thread-safe) solver. [`Worker::run_quantum`] is a
//! scoped-thread dispatch loop:
//!
//! * **lease** — up to `threads` disjoint states are taken from the
//!   [`Scheduler`] (materializing virtual jobs as needed) on the dispatch
//!   thread;
//! * **step** — each leased state runs a bounded slice of instructions on
//!   its own executor thread (slot 0 runs inline on the dispatch thread),
//!   recording forks and terminations as an ordered event log; states
//!   share nothing mutable except the solver, whose caches are
//!   lock-striped and whose answers are interleaving-independent;
//! * **merge** — the dispatch thread applies every slot's events in slot
//!   order: fork records into the worker tree, terminated paths into the
//!   statistics/coverage/test cases, surviving states back into the
//!   scheduler, and the per-thread state-id lanes back into the master
//!   generator.
//!
//! With `threads == 1` the loop degenerates to exactly the classic
//! sequential quantum (same selection sequence, same state ids, same
//! event order), which keeps all single-thread runs bit-compatible.

use crate::portfolio::derive_seed;
use crate::replay_cache::AnchorCache;
use crate::tree::{NodeId, WorkerTree};
use c9_ir::Program;
use c9_net::{ExportOrder, Job, JobTree, JobTreeVisitor, WorkerId, WorkerStats};
use c9_solver::{CacheSlice, Solver, SolverBackendKind, SolverConfig};
use c9_trace::{Registry, Span, SpanKind};
use c9_vm::{
    build_searcher, CoverageSet, Environment, ExecutionState, Executor, ExecutorConfig, PathChoice,
    ReplayCacheConfig, ReplayEngine, ReplayProgress, Scheduler, StateId, StateIdGen, StateMeta,
    StepResult, StrategyKind, TestCase,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Instructions per execution slice: how long one state runs on one thread
/// before the round is merged (and, in the classic single-threaded loop,
/// between searcher re-registrations).
const SLICE_INSTRUCTIONS: u64 = 512;

/// Default executor-thread count: the `C9_THREADS` environment variable
/// when set (this is what lets the CI matrix run every suite at
/// `C9_THREADS=4` unmodified), else 1.
pub fn default_threads() -> usize {
    use std::sync::OnceLock;
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("C9_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
            .min(256)
    })
}

/// Configuration of one worker.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Per-path executor limits.
    pub executor: ExecutorConfig,
    /// Random seed (combined with the worker id).
    pub seed: u64,
    /// Exploration strategy.
    pub strategy: StrategyKind,
    /// Whether to solve for a concrete test case for every completed path
    /// (bug paths always get one).
    pub generate_test_cases: bool,
    /// Which materialized candidates to export first when asked to shed
    /// load. Shallowest by default: virtual (never-materialized) jobs go
    /// first, then the *shallowest* materialized candidates — the states
    /// whose replay (already paid here, re-paid by the receiver) costs the
    /// least.
    pub export_order: ExportOrder,
    /// Budget of the prefix-anchor replay cache backing job
    /// materialization (`--replay-cache`); a zero capacity disables it
    /// (naive per-job root replay).
    pub replay_cache: ReplayCacheConfig,
    /// Executor threads stepping states concurrently inside this worker
    /// (defaults to `C9_THREADS` or 1; 1 is the classic sequential loop).
    pub threads: usize,
    /// Solver query-cache capacity override (`--solver-cache`); `None`
    /// keeps the solver's built-in default, 0 disables the cache.
    pub solver_cache: Option<usize>,
    /// Which solver backend strategy feasibility queries use (canonical
    /// backtracking, bit-blasting with canonical fallback, or a race).
    pub solver_backend: SolverBackendKind,
    /// Whether this worker participates in constraint-cache gossip
    /// (slices piggybacked on job batches, status reports, and the
    /// coordinator's rebroadcast hot set).
    pub cache_gossip: bool,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            executor: ExecutorConfig::default(),
            seed: 1,
            strategy: StrategyKind::KleeDefault,
            generate_test_cases: false,
            export_order: ExportOrder::Shallowest,
            replay_cache: ReplayCacheConfig::default(),
            threads: default_threads(),
            solver_cache: None,
            solver_backend: SolverBackendKind::Canonical,
            cache_gossip: true,
        }
    }
}

/// An imported job that has not been materialized yet, together with the
/// worker-tree node tracking it.
#[derive(Clone, Debug)]
struct VirtualJob {
    job: Job,
    node: NodeId,
}

/// A worker node: explores a disjoint portion of the execution tree and
/// exchanges jobs with its peers under load-balancer coordination.
pub struct Worker {
    /// Identifier of this worker within the cluster.
    pub id: WorkerId,
    executor: Executor,
    solver: Arc<Solver>,
    config: WorkerConfig,
    /// The exploration strategy currently driving the scheduler (starts as
    /// `config.strategy`, changed by portfolio reassignments).
    strategy: StrategyKind,
    states: BTreeMap<StateId, ExecutionState>,
    virtual_jobs: VecDeque<VirtualJob>,
    /// Prefix trie over the paths of all pending virtual jobs: the index
    /// that tells the materializer which replay prefixes are shared (and
    /// therefore worth anchoring).
    pending: JobTree,
    /// Prefix-anchor replay cache: cloned states keyed by path prefix,
    /// persisted across quanta so later-arriving jobs replay only their
    /// suffix below the deepest cached anchor.
    anchors: AnchorCache,
    scheduler: Scheduler,
    ids: StateIdGen,
    /// The worker-local execution tree (candidate/fence/dead bookkeeping).
    pub tree: WorkerTree,
    /// Cumulative statistics.
    pub stats: WorkerStats,
    /// Local line coverage (paths explored here plus the global vector
    /// received from the load balancer).
    pub coverage: CoverageSet,
    /// Test cases generated for completed paths (when enabled).
    pub test_cases: Vec<TestCase>,
    /// Test cases that expose bugs.
    pub bugs: Vec<TestCase>,
    /// Local metrics (quantum duration, job-batch size, replay-trunk
    /// length, transfer bytes); snapshotted into every status report.
    /// Write-only from the engine's point of view — never read by any
    /// scheduling or exploration decision, which is what keeps
    /// instrumentation determinism-neutral.
    pub(crate) metrics: Registry,
    /// The solver cache generation at the last status-gossip export; an
    /// unchanged generation suppresses the next export (nothing new to
    /// say), which is what keeps steady-state gossip traffic at zero.
    gossip_exported_gen: u64,
}

impl Worker {
    /// Creates a worker for `program` with the given environment model.
    pub fn new(
        id: WorkerId,
        program: Arc<Program>,
        env: Arc<dyn Environment>,
        config: WorkerConfig,
    ) -> Worker {
        // One thread-safe solver shared by every executor thread of this
        // worker: all threads hit (and warm) the same lock-striped caches.
        let mut solver_config = SolverConfig::default();
        if let Some(capacity) = config.solver_cache {
            solver_config.query_cache_capacity = capacity;
            solver_config.enable_query_cache = capacity > 0;
        }
        solver_config.backend = config.solver_backend;
        let solver = Arc::new(Solver::with_config(solver_config));
        let lines = program.loc();
        let executor = Executor::new(program, solver.clone(), env, config.executor);
        let seed = derive_seed(config.seed, id, 0);
        let scheduler = Scheduler::new(build_searcher(config.strategy, seed));
        Worker {
            id,
            executor,
            solver,
            strategy: config.strategy,
            config,
            states: BTreeMap::new(),
            virtual_jobs: VecDeque::new(),
            pending: JobTree::new(),
            anchors: AnchorCache::new(config.replay_cache),
            scheduler,
            ids: StateIdGen::new(),
            tree: WorkerTree::new(),
            stats: WorkerStats {
                threads: config.threads.max(1) as u64,
                ..WorkerStats::default()
            },
            coverage: CoverageSet::new(lines),
            test_cases: Vec::new(),
            bugs: Vec::new(),
            metrics: Registry::new(),
            gossip_exported_gen: 0,
        }
    }

    /// The exploration strategy currently in effect.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// Number of executor threads this worker steps states with.
    pub fn threads(&self) -> usize {
        self.config.threads.max(1)
    }

    /// Switches the exploration strategy in place (a portfolio
    /// reassignment): builds the replacement searcher with `seed` and
    /// re-registers every active state, so exploration continues without
    /// losing or duplicating frontier entries.
    pub fn set_strategy(&mut self, strategy: StrategyKind, seed: u64) {
        if strategy == self.strategy {
            return;
        }
        self.scheduler
            .replace_searcher(build_searcher(strategy, seed));
        for state in self.states.values() {
            self.scheduler.add(StateMeta::of(state));
        }
        self.strategy = strategy;
        self.stats.strategy_switches += 1;
    }

    /// Seeds this worker with the root job (the entire execution tree); done
    /// for the first worker that joins the cluster.
    pub fn seed_root(&mut self) {
        let id = self.ids.fresh();
        let state = self.executor.initial_state(id);
        self.tree.set_root(id);
        self.scheduler.add(StateMeta::of(&state));
        self.states.insert(id, state);
    }

    /// Number of pending exploration jobs (materialized candidates plus
    /// virtual jobs); this is the queue length reported to the load balancer.
    pub fn queue_length(&self) -> u64 {
        (self.states.len() + self.virtual_jobs.len()) as u64
    }

    /// Whether the worker has anything to explore.
    pub fn has_work(&self) -> bool {
        self.queue_length() > 0
    }

    /// Adds one virtual job to the frontier: a worker-tree node, an entry
    /// in the pending-prefix trie, and a queue slot.
    fn enqueue_virtual(&mut self, job: Job) {
        let node = self.tree.record_import(&job);
        self.pending.insert(&job.path);
        self.virtual_jobs.push_back(VirtualJob { job, node });
    }

    /// Imports jobs received from another worker: they become virtual
    /// candidate nodes, materialized lazily when the strategy selects them.
    pub fn import_jobs(&mut self, jobs: Vec<Job>) {
        self.metrics
            .histogram("batch_jobs")
            .record(jobs.len() as u64);
        for job in jobs {
            self.enqueue_virtual(job);
            self.stats.jobs_received += 1;
        }
    }

    /// Imports an encoded job batch without flattening it first: the batch
    /// trie is folded into the pending-prefix index with one union walk,
    /// and a second DFS walk registers every job (in the same
    /// lexicographic order [`JobTree::to_jobs`] would produce) — shared
    /// prefixes are traversed once, not once per job.
    pub fn import_job_tree(&mut self, tree: &JobTree) {
        let before = self.stats.jobs_received;
        self.pending.merge(tree);
        struct Importer<'w> {
            worker: &'w mut Worker,
            prefix: Vec<PathChoice>,
        }
        impl Importer<'_> {
            fn import(&mut self, job: Job) {
                let node = self.worker.tree.record_import(&job);
                self.worker.virtual_jobs.push_back(VirtualJob { job, node });
                self.worker.stats.jobs_received += 1;
            }
        }
        impl JobTreeVisitor for Importer<'_> {
            fn enter_edge(&mut self, choice: PathChoice, terminal: bool) {
                self.prefix.push(choice);
                if terminal {
                    let job = Job::new(self.prefix.clone());
                    self.import(job);
                }
            }
            fn leave_edge(&mut self) {
                self.prefix.pop();
            }
        }
        let mut importer = Importer {
            worker: self,
            prefix: Vec::with_capacity(tree.depth()),
        };
        if tree.is_terminal() {
            importer.import(Job::new(Vec::new()));
        }
        tree.walk(&mut importer);
        self.metrics
            .histogram("batch_jobs")
            .record(self.stats.jobs_received - before);
    }

    /// Exports up to `count` jobs for transfer to another worker. Virtual
    /// (never-materialized) jobs are forwarded first: this worker has paid
    /// no replay for them, and the receiver would have had to replay them
    /// anyway, so shipping them costs the cluster nothing extra. Only then
    /// are materialized candidates converted back to path jobs —
    /// shallowest first by default, because their (already paid, now
    /// re-paid by the receiver) replay cost grows with depth; their local
    /// nodes become fence nodes.
    pub fn export_jobs(&mut self, count: u64) -> Vec<Job> {
        let mut out = Vec::new();
        while (out.len() as u64) < count {
            let Some(vjob) = self.virtual_jobs.pop_back() else {
                break;
            };
            self.pending.remove(&vjob.job.path);
            self.tree.record_virtual_export(vjob.node);
            out.push(vjob.job);
        }
        if (out.len() as u64) < count {
            // Candidate selection: shallowest (or deepest) states first.
            let mut ids: Vec<(usize, StateId)> =
                self.states.values().map(|s| (s.depth(), s.id)).collect();
            ids.sort();
            if self.config.export_order == ExportOrder::Deepest {
                ids.reverse();
            }
            // Never give away the very last piece of local work: the sender
            // keeps at least one candidate so both sides stay busy.
            let exportable = ids.len().saturating_sub(1);
            for (_, id) in ids.into_iter().take(exportable) {
                if (out.len() as u64) >= count {
                    break;
                }
                if let Some(state) = self.states.remove(&id) {
                    self.scheduler.remove(id);
                    self.tree.record_export(id);
                    out.push(Job::new(state.path.clone()));
                }
            }
        }
        self.stats.jobs_sent += out.len() as u64;
        out
    }

    /// Takes back jobs whose export failed (the destination is unreachable):
    /// they rejoin the local frontier as virtual candidates, and the export
    /// accounting is rolled back so the transfer never counts as sent.
    pub fn requeue_jobs(&mut self, jobs: Vec<Job>) {
        self.stats.jobs_sent = self.stats.jobs_sent.saturating_sub(jobs.len() as u64);
        for job in jobs {
            self.enqueue_virtual(job);
        }
    }

    /// A consistent snapshot of the pending frontier: every virtual job plus
    /// every materialized candidate, as replayable path-prefix jobs. Taken
    /// between quanta, so together with `stats` at the same instant it
    /// partitions this worker's subtree exactly into completed paths and
    /// pending work — which is what makes coordinator-side crash recovery
    /// and checkpointing exact.
    pub fn frontier_snapshot(&self) -> Vec<Job> {
        let mut jobs: Vec<Job> = self.virtual_jobs.iter().map(|v| v.job.clone()).collect();
        jobs.extend(self.states.values().map(|s| Job::new(s.path.clone())));
        jobs
    }

    /// The prefix-anchor replay cache (exposed for benchmarks and tests).
    pub fn anchor_cache(&self) -> &AnchorCache {
        &self.anchors
    }

    /// Merges the global coverage vector received from the load balancer into
    /// the local one (§3.3).
    pub fn merge_global_coverage(&mut self, global: &CoverageSet) {
        self.coverage.merge(global);
    }

    /// The cumulative statistics as reported to the coordinator: the
    /// worker-loop counters plus a fresh snapshot of the shared solver's
    /// query/cache/independence counters.
    pub fn report_stats(&self) -> WorkerStats {
        let mut stats = self.stats.clone();
        stats.threads = self.config.threads.max(1) as u64;
        stats.solver = self.solver.stats();
        stats.metrics = self.metrics.snapshot();
        stats
            .metrics
            .histograms
            .insert("solver_query_us".into(), self.solver.latency_snapshot());
        stats
    }

    /// Exports this worker's hottest constraint-cache entries as a gossip
    /// slice. `None` when gossip is disabled for the run or the cache has
    /// nothing worth shipping; the encoded size of an exported slice is
    /// charged to `gossip_bytes_sent`.
    pub fn export_cache_slice(&mut self, max: usize) -> Option<CacheSlice> {
        if !self.config.cache_gossip {
            return None;
        }
        let slice = self.solver.export_slice(max);
        if slice.is_empty() {
            return None;
        }
        self.stats.gossip_bytes_sent += serde::to_bytes(&slice).len() as u64;
        Some(slice)
    }

    /// [`Worker::export_cache_slice`] for the status-report gossip path:
    /// exports only when local solving has inserted new cache entries
    /// since the last gossip export. Transfer piggybacks bypass this gate
    /// (the receiver of a job batch is about to replay exactly these
    /// constraints); gossip is background traffic and must go quiet when
    /// there is nothing new to share.
    pub fn export_gossip_slice(&mut self, max: usize) -> Option<CacheSlice> {
        if !self.config.cache_gossip {
            return None;
        }
        let generation = self.solver.cache_generation();
        if generation == self.gossip_exported_gen {
            return None;
        }
        let slice = self.export_cache_slice(max)?;
        self.gossip_exported_gen = generation;
        Some(slice)
    }

    /// Merges a gossiped constraint-cache slice into the shared solver.
    /// Imports never evict resident entries (see
    /// `ShardedQueryCache::merge_slice`), so a slice warms the cache
    /// without disturbing what this worker already learned.
    pub fn import_cache_slice(&mut self, slice: &CacheSlice) {
        if !self.config.cache_gossip || slice.is_empty() {
            return;
        }
        self.stats.gossip_bytes_received += serde::to_bytes(slice).len() as u64;
        self.solver.import_slice(slice);
    }

    /// Records the encoded size of one outgoing job batch (called by the
    /// cluster runtime, which is where the wire bytes are known).
    pub fn record_transfer_bytes(&self, bytes: u64) {
        self.metrics.histogram("transfer_bytes").record(bytes);
    }

    /// Runs up to `max_instructions` instructions of exploration across
    /// `threads` executor threads and returns how many were executed
    /// (useful + replay, summed over all threads).
    pub fn run_quantum(&mut self, max_instructions: u64) -> u64 {
        let started = Instant::now();
        let mut span = Span::enter(SpanKind::Quantum);
        let threads = self.config.threads.max(1);
        let mut parts = EngineParts {
            executor: &self.executor,
            solver: &self.solver,
            metrics: &self.metrics,
            generate_test_cases: self.config.generate_test_cases,
            states: &mut self.states,
            virtual_jobs: &mut self.virtual_jobs,
            pending: &mut self.pending,
            anchors: &mut self.anchors,
            scheduler: &mut self.scheduler,
            ids: &mut self.ids,
            tree: &mut self.tree,
            stats: &mut self.stats,
            coverage: &mut self.coverage,
            test_cases: &mut self.test_cases,
            bugs: &mut self.bugs,
        };
        let executed = if threads == 1 {
            dispatch_quantum(&mut parts, max_instructions, &[])
        } else {
            let executor = parts.executor;
            std::thread::scope(|scope| {
                let lanes: Vec<Lane> = (1..threads).map(|_| Lane::spawn(scope, executor)).collect();
                dispatch_quantum(&mut parts, max_instructions, &lanes)
            })
        };
        span.detail(executed);
        let elapsed = started.elapsed().as_micros() as u64;
        self.metrics.histogram("quantum_us").record(elapsed);
        self.metrics
            .histogram("quantum_instructions")
            .record(executed);
        executed
    }

    /// Snapshot of the local coverage.
    pub fn coverage_snapshot(&self) -> CoverageSet {
        self.coverage.clone()
    }

    /// The solver shared by this worker's executor threads (exposed for
    /// statistics).
    pub fn solver(&self) -> &Arc<Solver> {
        &self.solver
    }
}

/// Disjoint borrows of the worker fields the dispatch loop needs: the
/// executor is shared with the lane threads while everything else stays
/// exclusive to the dispatch thread.
struct EngineParts<'a> {
    executor: &'a Executor,
    solver: &'a Arc<Solver>,
    metrics: &'a Registry,
    generate_test_cases: bool,
    states: &'a mut BTreeMap<StateId, ExecutionState>,
    virtual_jobs: &'a mut VecDeque<VirtualJob>,
    pending: &'a mut JobTree,
    anchors: &'a mut AnchorCache,
    scheduler: &'a mut Scheduler,
    ids: &'a mut StateIdGen,
    tree: &'a mut WorkerTree,
    stats: &'a mut WorkerStats,
    coverage: &'a mut CoverageSet,
    test_cases: &'a mut Vec<TestCase>,
    bugs: &'a mut Vec<TestCase>,
}

/// One leased state shipped to an executor thread for one slice.
struct SliceTask {
    state: ExecutionState,
    ids: StateIdGen,
    budget: u64,
}

/// What happened during one slice, in event order.
enum SliceEvent {
    /// The stepped state forked: `successors` are the (id, path-at-fork)
    /// records for the worker tree, `siblings` the new states themselves.
    Fork {
        parent: StateId,
        successors: Vec<(StateId, Vec<PathChoice>)>,
        siblings: Vec<ExecutionState>,
    },
    /// A state terminated (the stepped state, or a sibling born dead).
    /// Boxed: terminated states are rare relative to plain steps, and an
    /// `ExecutionState` is large compared to a fork record.
    Finished(Box<ExecutionState>),
    /// A state whose materialization ran out of budget and continued
    /// replaying in normal slices hit a divergence: the recorded job path
    /// does not match the program. Counted and dropped — never a
    /// completed path (mirrors `ReplayProgress::Diverged`).
    Diverged(StateId),
}

/// The result of one slice on one executor thread.
struct SliceOutcome {
    /// The stepped state if it is still active at slice end.
    state: Option<ExecutionState>,
    events: Vec<SliceEvent>,
    executed: u64,
    useful: u64,
    replay: u64,
    /// Where this thread's id lane stopped allocating.
    ids_next: u64,
}

/// A persistent executor thread of one quantum: receives slice tasks,
/// steps them, ships outcomes back. Lanes live for the duration of one
/// `run_quantum` scope, so the per-thread spawn cost is amortized over all
/// rounds of the quantum.
struct Lane<'scope> {
    tx: Sender<SliceTask>,
    rx: Receiver<SliceOutcome>,
    _handle: std::thread::ScopedJoinHandle<'scope, ()>,
}

impl<'scope> Lane<'scope> {
    fn spawn<'env: 'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        executor: &'env Executor,
    ) -> Lane<'scope> {
        let (task_tx, task_rx) = unbounded::<SliceTask>();
        let (out_tx, out_rx) = unbounded::<SliceOutcome>();
        let handle = scope.spawn(move || {
            while let Ok(task) = task_rx.recv() {
                if out_tx.send(run_slice(executor, task)).is_err() {
                    break;
                }
            }
        });
        Lane {
            tx: task_tx,
            rx: out_rx,
            _handle: handle,
        }
    }
}

/// Steps one state for up to `budget` instructions, collecting fork and
/// termination events. Runs on an executor thread (or inline on the
/// dispatch thread for slot 0); touches nothing but the state, its id
/// lane, and the thread-safe solver behind the executor.
fn run_slice(executor: &Executor, task: SliceTask) -> SliceOutcome {
    let SliceTask {
        state,
        mut ids,
        budget,
    } = task;
    let parent = state.id;
    let mut events = Vec::new();
    let (mut executed, mut useful, mut replay) = (0u64, 0u64, 0u64);
    let mut slot = Some(state);
    while executed < budget {
        let s = slot.as_mut().expect("state present while stepping");
        let replaying = s.is_replaying();
        match executor.step(s, &mut ids) {
            StepResult::Continue => {
                executed += 1;
                if replaying {
                    replay += 1;
                } else {
                    useful += 1;
                }
            }
            StepResult::Forked(siblings) => {
                executed += 1;
                if replaying {
                    // A fork crossed while still replaying an imported job
                    // (the materialization ran out of budget): the
                    // siblings are terminated duplicates the exporting
                    // worker already accounted. Drop them, exactly as the
                    // replay engine does during materialization.
                    replay += 1;
                    drop(siblings);
                    continue;
                }
                useful += 1;
                let mut successors = vec![(s.id, s.path.clone())];
                for sibling in &siblings {
                    successors.push((sibling.id, sibling.path.clone()));
                }
                events.push(SliceEvent::Fork {
                    parent,
                    successors,
                    siblings,
                });
            }
            StepResult::Terminated(_) => {
                executed += 1;
                if replaying {
                    replay += 1;
                } else {
                    useful += 1;
                }
                let terminated = slot.take().expect("state present at termination");
                // Divergence (a mismatch the executor reported, or the
                // program ending with recorded decisions left over) must
                // be dropped and counted, never accounted as a completed
                // path — mirror `ReplayEngine::run`'s classification.
                let diverged = matches!(
                    terminated.termination,
                    Some(c9_vm::TerminationReason::ReplayDivergence { .. })
                ) || terminated.is_replaying();
                events.push(if diverged {
                    SliceEvent::Diverged(terminated.id)
                } else {
                    SliceEvent::Finished(Box::new(terminated))
                });
                break;
            }
        }
    }
    SliceOutcome {
        state: slot,
        events,
        executed,
        useful,
        replay,
        ids_next: ids.next_unused(),
    }
}

/// The dispatch loop: lease up to `lanes.len() + 1` disjoint states, step
/// each for a slice (slot 0 inline, the rest on the lanes), then merge all
/// outcomes in slot order. With no lanes this is exactly the classic
/// sequential quantum loop.
fn dispatch_quantum(parts: &mut EngineParts<'_>, max_instructions: u64, lanes: &[Lane]) -> u64 {
    let width = lanes.len() + 1;
    let mut executed = 0u64;
    while executed < max_instructions {
        // Lease phase: fill the round with disjoint states. Virtual jobs
        // are materialized (single-threadedly, counting replay work toward
        // the quantum) once the scheduler runs dry.
        let mut batch: Vec<ExecutionState> = Vec::with_capacity(width);
        while batch.len() < width {
            if let Some(id) = parts.scheduler.lease() {
                if let Some(state) = parts.states.remove(&id) {
                    batch.push(state);
                }
                continue;
            }
            // Materialization executes replay instructions, so it only
            // starts while quantum budget remains (as the classic loop
            // gated it); already-leased states still get their slice.
            if executed >= max_instructions {
                break;
            }
            let Some(job) = parts.virtual_jobs.pop_front() else {
                break;
            };
            if let Some(id) = materialize(parts, job, &mut executed, max_instructions) {
                parts.scheduler.lease_specific(id);
                if let Some(state) = parts.states.remove(&id) {
                    batch.push(state);
                }
            }
        }
        if batch.is_empty() {
            break;
        }

        // Step phase: one slice per state, each on its own id lane.
        let slice = SLICE_INSTRUCTIONS.min(max_instructions.saturating_sub(executed));
        let stride = batch.len() as u64;
        let base = parts.ids.next_unused();
        let lanes_used = batch.len() - 1;
        let mut drain = batch.into_iter();
        let first = drain.next().expect("batch not empty");
        for (k, state) in drain.enumerate() {
            let task = SliceTask {
                state,
                ids: StateIdGen::strided(base + 1 + k as u64, stride),
                budget: slice,
            };
            assert!(lanes[k].tx.send(task).is_ok(), "lane thread alive");
        }
        let mut outcomes = Vec::with_capacity(lanes_used + 1);
        outcomes.push(run_slice(
            parts.executor,
            SliceTask {
                state: first,
                ids: StateIdGen::strided(base, stride),
                budget: slice,
            },
        ));
        for lane in lanes.iter().take(lanes_used) {
            outcomes.push(lane.rx.recv().expect("lane thread alive"));
        }

        // Merge phase, in slot order: counters, tree records, forked
        // siblings, completed paths, surviving states, id lanes.
        let mut ids_high = parts.ids.next_unused();
        for outcome in outcomes {
            executed += outcome.executed;
            parts.stats.useful_instructions += outcome.useful;
            parts.stats.replay_instructions += outcome.replay;
            ids_high = ids_high.max(outcome.ids_next);
            for event in outcome.events {
                match event {
                    SliceEvent::Fork {
                        parent,
                        successors,
                        siblings,
                    } => {
                        parts.tree.record_fork(parent, &successors);
                        for sibling in siblings {
                            if sibling.is_terminated() {
                                finish_path(parts, sibling);
                            } else {
                                parts.scheduler.add(StateMeta::of(&sibling));
                                parts.states.insert(sibling.id, sibling);
                            }
                        }
                    }
                    SliceEvent::Finished(state) => finish_path(parts, *state),
                    SliceEvent::Diverged(id) => {
                        parts.stats.replay_divergences += 1;
                        // Kills the node without the completed-path
                        // accounting finish_path would apply.
                        parts.tree.record_termination(id);
                    }
                }
            }
            if let Some(active) = outcome.state {
                parts.scheduler.release(StateMeta::of(&active));
                parts.states.insert(active.id, active);
            }
        }
        parts.ids.advance_to(ids_high);
    }
    executed
}

/// Materializes a virtual job through the replay engine, backed by the
/// prefix-anchor cache: the job replays only its suffix below the deepest
/// cached anchor (from the root on a cache miss), and prefixes shared with
/// other pending jobs are snapshotted along the way so the rest of the
/// batch skips the trunk this replay just executed. Only the instructions
/// actually executed count as replay (non-useful) work; the skipped trunk
/// is recorded in `replay_saved_instructions`.
fn materialize(
    parts: &mut EngineParts<'_>,
    vjob: VirtualJob,
    executed: &mut u64,
    max_instructions: u64,
) -> Option<StateId> {
    let VirtualJob { job, node } = vjob;
    let mut span = Span::enter(SpanKind::Materialize);
    span.detail(job.path.len() as u64);
    parts
        .metrics
        .histogram("replay_trunk_len")
        .record(job.path.len() as u64);
    parts.pending.remove(&job.path);
    // Anchor points along this path: every depth where a remaining
    // pending job shares the prefix (branches off, or ends exactly
    // there). One incremental descent of the pending trie, computed up
    // front so the per-decision hook below stays O(1).
    let mut shared_depths = Vec::new();
    let mut cursor = Some(&*parts.pending);
    for (i, choice) in job.path.iter().enumerate() {
        cursor = cursor.and_then(|n| n.child(choice));
        let Some(shared) = cursor else { break };
        if shared.branch_count() >= 2 || shared.is_terminal() {
            shared_depths.push(i + 1);
        }
    }
    let id = parts.ids.fresh();
    let engine = ReplayEngine::new(parts.executor);
    let mut state = match parts.anchors.lookup(&job.path) {
        Some(anchor) => {
            // The anchor's per-state replay counter is canonical (what a
            // from-root replay would have executed to reach it), so it is
            // exactly the work this materialization skips.
            parts.stats.anchor_hits += 1;
            parts.stats.replay_saved_instructions += anchor.stats.replay_instructions;
            let suffix = job.path[anchor.path.len()..].to_vec();
            engine.resume(anchor, id, suffix)
        }
        None => {
            parts.stats.anchor_misses += 1;
            engine.start(id, job.path)
        }
    };
    parts.stats.materializations += 1;
    // Replay to the end of the recorded path (allow a generous overrun of
    // the quantum so a materialization always completes once started).
    let hard_limit = max_instructions.saturating_mul(4).max(1_000_000);
    let budget = hard_limit.saturating_sub(*executed);
    let anchors = &mut *parts.anchors;
    let run = engine.run(&mut state, parts.ids, budget, |s| {
        // Snapshot an anchor at every shared prefix, plus a sparse ladder
        // of every 4th decision, which serves batches that arrive in
        // later quanta and branch off mid-trunk. (All on the dispatch
        // thread; `threads == 1` determinism is untouched.)
        let depth = s.depth();
        if depth % 4 == 0 || shared_depths.binary_search(&depth).is_ok() {
            anchors.insert(s);
        }
    });
    *executed += run.executed;
    parts.stats.replay_instructions += run.executed;
    match run.progress {
        ReplayProgress::Diverged => {
            // The recorded path no longer matches the program's branches: a
            // corrupted or stale job. Report it and drop the state — never
            // explore past the divergence, never count it as a completed
            // path (the exporting worker still owns that subtree's
            // accounting).
            parts.stats.replay_divergences += 1;
            parts.tree.record_abandoned(node);
            None
        }
        ReplayProgress::Completed => {
            // The job designates a path that terminates exactly at its
            // node (a replayed bug or exit): account it like any other
            // completed path.
            parts.tree.record_materialization(node, id);
            finish_path(parts, state);
            None
        }
        ReplayProgress::Ready | ReplayProgress::OutOfBudget => {
            if !state.is_replaying() {
                // Anchor the job's own node before the state starts
                // mutating: batches shipped by later balancing rounds come
                // from the same frontier regions, so their paths routinely
                // run through nodes imported earlier — this is what makes
                // the cache pay across quanta, not just within one batch.
                parts.anchors.insert(&state);
            }
            // Ready, or out of budget mid-replay: either way the state
            // joins the frontier (a still-replaying state keeps following
            // its cursor in normal execution slices).
            parts.tree.record_materialization(node, id);
            parts.scheduler.add(StateMeta::of(&state));
            parts.states.insert(id, state);
            Some(id)
        }
    }
}

/// Accounts a completed path: statistics, coverage, tree bookkeeping, and
/// (when enabled, or when the path exposes a bug) a concrete test case.
fn finish_path(parts: &mut EngineParts<'_>, state: ExecutionState) {
    parts.stats.paths_completed += 1;
    parts.coverage.merge(&state.coverage);
    parts.tree.record_termination(state.id);
    let is_bug = state
        .termination
        .as_ref()
        .map(|t| t.is_bug())
        .unwrap_or(false);
    if is_bug {
        parts.stats.bugs_found += 1;
    }
    if parts.generate_test_cases || is_bug {
        if let Some(tc) = TestCase::from_state(&state, parts.solver) {
            if is_bug {
                parts.bugs.push(tc.clone());
            }
            if parts.generate_test_cases {
                parts.test_cases.push(tc);
            }
        }
    }
}
