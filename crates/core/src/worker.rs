//! A Cloud9 worker: an independent symbolic execution engine plus the
//! execution-tree bookkeeping needed for dynamic work partitioning.

use crate::portfolio::derive_seed;
use crate::tree::WorkerTree;
use c9_ir::Program;
use c9_net::{Job, WorkerId, WorkerStats};
use c9_solver::Solver;
use c9_vm::{
    build_searcher, CoverageSet, Environment, ExecutionState, Executor, ExecutorConfig, Searcher,
    StateId, StateIdGen, StateMeta, StepResult, StrategyKind, TestCase,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Configuration of one worker.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Per-path executor limits.
    pub executor: ExecutorConfig,
    /// Random seed (combined with the worker id).
    pub seed: u64,
    /// Exploration strategy.
    pub strategy: StrategyKind,
    /// Whether to solve for a concrete test case for every completed path
    /// (bug paths always get one).
    pub generate_test_cases: bool,
    /// Prefer exporting the deepest candidates when asked to shed load.
    pub export_deepest: bool,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            executor: ExecutorConfig::default(),
            seed: 1,
            strategy: StrategyKind::KleeDefault,
            generate_test_cases: false,
            export_deepest: true,
        }
    }
}

/// A worker node: explores a disjoint portion of the execution tree and
/// exchanges jobs with its peers under load-balancer coordination.
pub struct Worker {
    /// Identifier of this worker within the cluster.
    pub id: WorkerId,
    executor: Executor,
    solver: Arc<Solver>,
    config: WorkerConfig,
    /// The exploration strategy currently driving the searcher (starts as
    /// `config.strategy`, changed by portfolio reassignments).
    strategy: StrategyKind,
    states: BTreeMap<StateId, ExecutionState>,
    virtual_jobs: VecDeque<Job>,
    searcher: Box<dyn Searcher>,
    ids: StateIdGen,
    /// The worker-local execution tree (candidate/fence/dead bookkeeping).
    pub tree: WorkerTree,
    /// Cumulative statistics.
    pub stats: WorkerStats,
    /// Local line coverage (paths explored here plus the global vector
    /// received from the load balancer).
    pub coverage: CoverageSet,
    /// Test cases generated for completed paths (when enabled).
    pub test_cases: Vec<TestCase>,
    /// Test cases that expose bugs.
    pub bugs: Vec<TestCase>,
    current: Option<StateId>,
}

impl Worker {
    /// Creates a worker for `program` with the given environment model.
    pub fn new(
        id: WorkerId,
        program: Arc<Program>,
        env: Arc<dyn Environment>,
        config: WorkerConfig,
    ) -> Worker {
        // The solver is shared only within this engine's thread (`Solver` is
        // not `Sync`); the `Arc` exists so test-case generation can hold it.
        #[allow(clippy::arc_with_non_send_sync)]
        let solver = Arc::new(Solver::new());
        let lines = program.loc();
        let executor = Executor::new(program, solver.clone(), env, config.executor);
        let seed = derive_seed(config.seed, id, 0);
        let searcher = build_searcher(config.strategy, seed);
        Worker {
            id,
            executor,
            solver,
            strategy: config.strategy,
            config,
            states: BTreeMap::new(),
            virtual_jobs: VecDeque::new(),
            searcher,
            ids: StateIdGen::new(),
            tree: WorkerTree::new(),
            stats: WorkerStats::default(),
            coverage: CoverageSet::new(lines),
            test_cases: Vec::new(),
            bugs: Vec::new(),
            current: None,
        }
    }

    /// The exploration strategy currently in effect.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// Switches the exploration strategy in place (a portfolio
    /// reassignment): builds the replacement searcher with `seed` and
    /// re-registers every active state, so exploration continues without
    /// losing or duplicating frontier entries.
    pub fn set_strategy(&mut self, strategy: StrategyKind, seed: u64) {
        if strategy == self.strategy {
            return;
        }
        let mut searcher = build_searcher(strategy, seed);
        for state in self.states.values() {
            searcher.add(StateMeta::of(state));
        }
        self.searcher = searcher;
        self.strategy = strategy;
        self.stats.strategy_switches += 1;
    }

    /// Seeds this worker with the root job (the entire execution tree); done
    /// for the first worker that joins the cluster.
    pub fn seed_root(&mut self) {
        let id = self.ids.fresh();
        let state = self.executor.initial_state(id);
        self.tree.set_root(id);
        self.searcher.add(StateMeta::of(&state));
        self.states.insert(id, state);
    }

    /// Number of pending exploration jobs (materialized candidates plus
    /// virtual jobs); this is the queue length reported to the load balancer.
    pub fn queue_length(&self) -> u64 {
        (self.states.len() + self.virtual_jobs.len()) as u64
    }

    /// Whether the worker has anything to explore.
    pub fn has_work(&self) -> bool {
        self.queue_length() > 0
    }

    /// Imports jobs received from another worker: they become virtual
    /// candidate nodes, materialized lazily when the strategy selects them.
    pub fn import_jobs(&mut self, jobs: Vec<Job>) {
        for job in jobs {
            self.tree.record_import(&job);
            self.virtual_jobs.push_back(job);
            self.stats.jobs_received += 1;
        }
    }

    /// Exports up to `count` jobs for transfer to another worker. Virtual
    /// (not yet materialized) jobs are forwarded first since they are free to
    /// ship; materialized candidates are converted to path jobs and their
    /// local nodes become fence nodes.
    pub fn export_jobs(&mut self, count: u64) -> Vec<Job> {
        let mut out = Vec::new();
        while (out.len() as u64) < count {
            if let Some(job) = self.virtual_jobs.pop_back() {
                out.push(job);
                continue;
            }
            break;
        }
        if (out.len() as u64) < count {
            // Candidate selection: deepest (or shallowest) states first.
            let mut ids: Vec<(usize, StateId)> =
                self.states.values().map(|s| (s.depth(), s.id)).collect();
            ids.sort();
            if self.config.export_deepest {
                ids.reverse();
            }
            // Never give away the very last piece of local work: the sender
            // keeps at least one candidate so both sides stay busy.
            let exportable = ids.len().saturating_sub(1);
            for (_, id) in ids.into_iter().take(exportable) {
                if (out.len() as u64) >= count {
                    break;
                }
                if let Some(state) = self.states.remove(&id) {
                    if Some(id) == self.current {
                        self.current = None;
                    }
                    self.searcher.remove(id);
                    self.tree.record_export(id);
                    out.push(Job::new(state.path.clone()));
                }
            }
        }
        self.stats.jobs_sent += out.len() as u64;
        out
    }

    /// Takes back jobs whose export failed (the destination is unreachable):
    /// they rejoin the local frontier as virtual candidates, and the export
    /// accounting is rolled back so the transfer never counts as sent.
    pub fn requeue_jobs(&mut self, jobs: Vec<Job>) {
        self.stats.jobs_sent = self.stats.jobs_sent.saturating_sub(jobs.len() as u64);
        for job in jobs {
            self.tree.record_import(&job);
            self.virtual_jobs.push_back(job);
        }
    }

    /// A consistent snapshot of the pending frontier: every virtual job plus
    /// every materialized candidate, as replayable path-prefix jobs. Taken
    /// between quanta, so together with `stats` at the same instant it
    /// partitions this worker's subtree exactly into completed paths and
    /// pending work — which is what makes coordinator-side crash recovery
    /// and checkpointing exact.
    pub fn frontier_snapshot(&self) -> Vec<Job> {
        let mut jobs: Vec<Job> = self.virtual_jobs.iter().cloned().collect();
        jobs.extend(self.states.values().map(|s| Job::new(s.path.clone())));
        jobs
    }

    /// Merges the global coverage vector received from the load balancer into
    /// the local one (§3.3).
    pub fn merge_global_coverage(&mut self, global: &CoverageSet) {
        self.coverage.merge(global);
    }

    /// Runs up to `max_instructions` instructions of exploration and returns
    /// how many were executed (useful + replay).
    pub fn run_quantum(&mut self, max_instructions: u64) -> u64 {
        let mut executed = 0u64;
        while executed < max_instructions {
            // Pick something to work on.
            let state_id = match self.current {
                Some(id) if self.states.contains_key(&id) => id,
                _ => {
                    if let Some(id) = self.searcher.select() {
                        id
                    } else if let Some(job) = self.virtual_jobs.pop_front() {
                        match self.materialize(job, &mut executed, max_instructions) {
                            Some(id) => id,
                            None => continue,
                        }
                    } else {
                        break;
                    }
                }
            };
            self.current = Some(state_id);
            let Some(state) = self.states.remove(&state_id) else {
                self.searcher.remove(state_id);
                self.current = None;
                continue;
            };
            self.searcher.remove(state_id);

            // Run this state for a slice of the quantum.
            let slice_end = (executed + 512).min(max_instructions);
            let mut slot: Option<ExecutionState> = Some(state);
            while executed < slice_end {
                let s = slot.as_mut().expect("state present while stepping");
                let replaying = s.is_replaying();
                match self.executor.step(s, &mut self.ids) {
                    StepResult::Continue => {
                        executed += 1;
                        if replaying {
                            self.stats.replay_instructions += 1;
                        } else {
                            self.stats.useful_instructions += 1;
                        }
                    }
                    StepResult::Forked(siblings) => {
                        executed += 1;
                        self.stats.useful_instructions += 1;
                        let mut successors = vec![(s.id, s.path.clone())];
                        for sibling in &siblings {
                            successors.push((sibling.id, sibling.path.clone()));
                        }
                        self.tree.record_fork(state_id, &successors);
                        for sibling in siblings {
                            if sibling.is_terminated() {
                                self.finish_path(sibling);
                            } else {
                                self.searcher.add(StateMeta::of(&sibling));
                                self.states.insert(sibling.id, sibling);
                            }
                        }
                    }
                    StepResult::Terminated(_) => {
                        executed += 1;
                        if replaying {
                            self.stats.replay_instructions += 1;
                        } else {
                            self.stats.useful_instructions += 1;
                        }
                        self.current = None;
                        let terminated = slot.take().expect("state present at termination");
                        self.finish_path(terminated);
                        break;
                    }
                }
            }
            if let Some(still_active) = slot {
                self.searcher.add(StateMeta::of(&still_active));
                self.states.insert(state_id, still_active);
                if executed >= max_instructions {
                    break;
                }
            }
        }
        executed
    }

    /// Materializes a virtual job by replaying its path from the root; the
    /// instructions executed count as replay (non-useful) work.
    fn materialize(
        &mut self,
        job: Job,
        executed: &mut u64,
        max_instructions: u64,
    ) -> Option<StateId> {
        let node = self.tree.record_import(&job);
        let id = self.ids.fresh();
        let mut state = self.executor.replay_state(id, job.path);
        self.stats.materializations += 1;
        // Replay to the end of the recorded path (allow a generous overrun of
        // the quantum so a materialization always completes once started).
        let hard_limit = max_instructions.saturating_mul(4).max(1_000_000);
        while state.is_replaying() && !state.is_terminated() {
            if *executed >= hard_limit {
                break;
            }
            match self.executor.step(&mut state, &mut self.ids) {
                StepResult::Continue | StepResult::Forked(_) => {
                    *executed += 1;
                    self.stats.replay_instructions += 1;
                }
                StepResult::Terminated(_) => {
                    *executed += 1;
                    self.stats.replay_instructions += 1;
                    break;
                }
            }
        }
        if state.is_terminated() {
            if matches!(state.termination, Some(c9_vm::TerminationReason::Killed(_))) {
                self.stats.broken_replays += 1;
            }
            self.finish_path(state);
            return None;
        }
        self.tree.record_materialization(node, id);
        self.searcher.add(StateMeta::of(&state));
        self.states.insert(id, state);
        Some(id)
    }

    fn finish_path(&mut self, state: ExecutionState) {
        self.stats.paths_completed += 1;
        self.coverage.merge(&state.coverage);
        self.tree.record_termination(state.id);
        let is_bug = state
            .termination
            .as_ref()
            .map(|t| t.is_bug())
            .unwrap_or(false);
        if is_bug {
            self.stats.bugs_found += 1;
        }
        if self.config.generate_test_cases || is_bug {
            if let Some(tc) = TestCase::from_state(&state, &self.solver) {
                if is_bug {
                    self.bugs.push(tc.clone());
                }
                if self.config.generate_test_cases {
                    self.test_cases.push(tc);
                }
            }
        }
    }

    /// Snapshot of the local coverage.
    pub fn coverage_snapshot(&self) -> CoverageSet {
        self.coverage.clone()
    }

    /// The solver owned by this worker (exposed for statistics).
    pub fn solver(&self) -> &Arc<Solver> {
        &self.solver
    }
}
