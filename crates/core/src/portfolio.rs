//! Coordinator-directed strategy portfolios (class-uniform scheduling at
//! cluster scope).
//!
//! The paper gets its throughput from load balancing, but coverage per
//! CPU-hour comes from *how* each worker explores its subtree. With every
//! worker running the same hardwired searcher, adding machines multiplies
//! redundant exploration; a portfolio instead spreads the cluster's effort
//! across heterogeneous search heuristics (cf. the learned/portfolio
//! search-heuristic literature). This module is the coordinator side of
//! that design:
//!
//! * [`PortfolioConfig`] — the strategy *mix* (e.g. `dfs, random-path,
//!   cov-opt, cupa`) and whether adaptive rebalancing is on.
//! * [`Portfolio`] — assigns a strategy to every member (joiners included),
//!   keeps the mix balanced as workers come and go, credits each status
//!   report's newly covered lines to the strategy that produced it (the
//!   per-strategy *yield*), and — when adaptation is enabled — periodically
//!   moves a worker from the lowest-yield strategy to the highest-yield
//!   one.
//! * [`PortfolioCheckpoint`] — the serializable slice of that state
//!   embedded in the coordinator [`Checkpoint`](crate::Checkpoint), so a
//!   resumed run keeps the yield history it already paid for.
//! * [`derive_seed`] — deterministic per-worker searcher seeds mixed from
//!   the base seed, the worker id, and the fencing epoch, so every
//!   incarnation of every worker explores a reproducible but independent
//!   stream.

use c9_net::WorkerId;
use c9_vm::StrategyKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the cluster's strategy portfolio.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioConfig {
    /// The strategies to spread workers across, in assignment-priority
    /// order. A single-entry mix reproduces the uniform (pre-portfolio)
    /// behavior.
    pub mix: Vec<StrategyKind>,
    /// Whether yield feedback rebalances the portfolio: starving strategies
    /// lose workers, productive ones gain them.
    pub adapt: bool,
}

impl PortfolioConfig {
    /// A degenerate portfolio where every worker runs `strategy` (the
    /// uniform baseline).
    pub fn uniform(strategy: StrategyKind) -> PortfolioConfig {
        PortfolioConfig {
            mix: vec![strategy],
            adapt: false,
        }
    }

    /// Parses a comma-separated strategy mix (`"dfs,random-path,cupa"`).
    /// Unknown names are rejected with an error listing every valid
    /// strategy; an empty list is rejected too.
    pub fn parse_mix(list: &str) -> Result<Vec<StrategyKind>, String> {
        let mut mix = Vec::new();
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let kind: StrategyKind = name.parse().map_err(|e| format!("{e}"))?;
            mix.push(kind);
        }
        if mix.is_empty() {
            return Err(format!(
                "empty strategy mix; valid strategies: {}",
                StrategyKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        Ok(mix)
    }
}

/// Derives the deterministic searcher seed of one worker incarnation:
/// the run's base seed mixed with the worker id and its fencing epoch
/// through a SplitMix64 finalizer. Distinct (worker, epoch) pairs get
/// decorrelated streams; the same pair always gets the same stream.
pub fn derive_seed(base: u64, worker: WorkerId, epoch: u64) -> u64 {
    let mut x = base
        ^ u64::from(worker.0).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ epoch.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Decayed yield statistics of one strategy in the mix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StrategyYield {
    /// Lines newly added to the global coverage by reports attributed to
    /// this strategy (decayed at every rebalance so old phases fade).
    pub new_lines: f64,
    /// Number of status reports attributed (same decay).
    pub reports: f64,
}

impl StrategyYield {
    /// New coverage per report — the signal rebalancing compares.
    pub fn rate(&self) -> f64 {
        if self.reports <= 0.0 {
            0.0
        } else {
            self.new_lines / self.reports
        }
    }
}

/// The serializable portfolio state a coordinator checkpoint carries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PortfolioCheckpoint {
    /// The strategy mix of the checkpointed run.
    pub mix: Vec<StrategyKind>,
    /// Whether adaptation was enabled.
    pub adapt: bool,
    /// Per-strategy yield accumulated so far.
    pub yields: Vec<(StrategyKind, StrategyYield)>,
}

/// How much yield evidence (attributed reports per live worker) a rebalance
/// round requires before it trusts the rates enough to move a worker.
const MIN_REPORTS_PER_WORKER: f64 = 4.0;

/// Decay applied to the yield statistics after every rebalance decision, so
/// the portfolio tracks the current exploration phase instead of the run's
/// opening.
const YIELD_DECAY: f64 = 0.5;

/// The coordinator's portfolio: strategy assignments and yield feedback.
#[derive(Clone, Debug)]
pub struct Portfolio {
    mix: Vec<StrategyKind>,
    adapt: bool,
    assignments: BTreeMap<WorkerId, StrategyKind>,
    yields: BTreeMap<StrategyKind, StrategyYield>,
    /// Workers in assignment order, oldest first; rebalancing moves the
    /// most recently assigned worker of the losing strategy.
    order: Vec<WorkerId>,
    rebalances: u64,
}

impl Portfolio {
    /// Creates a portfolio for the given mix.
    pub fn new(config: PortfolioConfig) -> Portfolio {
        let mix = if config.mix.is_empty() {
            vec![StrategyKind::default()]
        } else {
            config.mix
        };
        Portfolio {
            mix,
            adapt: config.adapt,
            assignments: BTreeMap::new(),
            yields: BTreeMap::new(),
            order: Vec::new(),
            rebalances: 0,
        }
    }

    /// Restores the yield history of a checkpointed run (assignments are
    /// per-incarnation and are not restored — the resumed run's workers get
    /// fresh ones).
    pub fn restore(&mut self, checkpoint: &PortfolioCheckpoint) {
        for (kind, stats) in &checkpoint.yields {
            self.yields.insert(*kind, *stats);
        }
    }

    /// The serializable slice of this portfolio for a coordinator
    /// checkpoint.
    pub fn checkpoint(&self) -> PortfolioCheckpoint {
        PortfolioCheckpoint {
            mix: self.mix.clone(),
            adapt: self.adapt,
            yields: self.yields.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }

    /// The strategy mix.
    pub fn mix(&self) -> &[StrategyKind] {
        &self.mix
    }

    /// Whether adaptive rebalancing is enabled.
    pub fn adaptive(&self) -> bool {
        self.adapt
    }

    /// Number of portfolio rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// The current assignment of a worker, if any.
    pub fn assignment(&self, worker: WorkerId) -> Option<StrategyKind> {
        self.assignments.get(&worker).copied()
    }

    /// Assigns a strategy to a (new or re-joining) worker: the
    /// least-represented strategy of the mix, ties broken by mix order, so
    /// worker churn keeps the portfolio spread even. Idempotent for an
    /// already-assigned worker.
    pub fn assign(&mut self, worker: WorkerId) -> StrategyKind {
        if let Some(kind) = self.assignments.get(&worker) {
            return *kind;
        }
        let chosen = self
            .mix
            .iter()
            .copied()
            .min_by_key(|kind| {
                self.assignments
                    .values()
                    .filter(|assigned| *assigned == kind)
                    .count()
            })
            .unwrap_or_default();
        self.assignments.insert(worker, chosen);
        self.order.push(worker);
        chosen
    }

    /// Forgets a dead or departed worker, freeing its strategy slot for the
    /// next joiner.
    pub fn remove(&mut self, worker: WorkerId) {
        self.assignments.remove(&worker);
        self.order.retain(|w| *w != worker);
    }

    /// Credits a status report's newly covered lines to the strategy that
    /// produced it. `reported` is the strategy stamped on the report — the
    /// worker's own claim, which survives assignment races around a
    /// `SetStrategy` control.
    pub fn record_yield(&mut self, reported: StrategyKind, new_lines: u64) {
        let entry = self.yields.entry(reported).or_default();
        entry.new_lines += new_lines as f64;
        entry.reports += 1.0;
    }

    /// The current per-strategy view: (strategy, assigned workers, yield).
    pub fn standings(&self) -> Vec<(StrategyKind, usize, StrategyYield)> {
        let mut seen = Vec::new();
        for kind in &self.mix {
            if seen.contains(kind) {
                continue;
            }
            seen.push(*kind);
        }
        seen.into_iter()
            .map(|kind| {
                let workers = self.assignments.values().filter(|a| **a == kind).count();
                let stats = self.yields.get(&kind).copied().unwrap_or_default();
                (kind, workers, stats)
            })
            .collect()
    }

    /// One adaptive rebalance round: when the yield gap is established,
    /// moves the most recently assigned worker of the lowest-yield strategy
    /// to the highest-yield one and returns the reassignment. Every
    /// strategy of the mix keeps at least one worker while the cluster is
    /// large enough to afford it, so a temporarily starving heuristic can
    /// still prove itself later. Yields decay after a decision so the
    /// portfolio follows the current exploration phase.
    pub fn rebalance(&mut self) -> Vec<(WorkerId, StrategyKind)> {
        if !self.adapt || self.assignments.len() < 2 {
            return Vec::new();
        }
        let standings = self.standings();
        if standings.len() < 2 {
            return Vec::new();
        }
        let total_reports: f64 = standings.iter().map(|(_, _, y)| y.reports).sum();
        if total_reports < MIN_REPORTS_PER_WORKER * self.assignments.len() as f64 {
            return Vec::new(); // not enough evidence yet
        }
        let floor = usize::from(self.assignments.len() >= standings.len());
        let best = standings
            .iter()
            .max_by(|a, b| a.2.rate().total_cmp(&b.2.rate()))
            .map(|(k, _, y)| (*k, y.rate()));
        let worst = standings
            .iter()
            .filter(|(_, workers, _)| *workers > floor)
            .min_by(|a, b| a.2.rate().total_cmp(&b.2.rate()))
            .map(|(k, _, y)| (*k, y.rate()));
        let (Some((best, best_rate)), Some((worst, worst_rate))) = (best, worst) else {
            return Vec::new();
        };
        // Decay regardless of whether a move happens: stale evidence must
        // not pin the portfolio forever.
        for stats in self.yields.values_mut() {
            stats.new_lines *= YIELD_DECAY;
            stats.reports *= YIELD_DECAY;
        }
        if best == worst || best_rate <= worst_rate {
            return Vec::new();
        }
        let Some(mover) = self
            .order
            .iter()
            .rev()
            .copied()
            .find(|w| self.assignments.get(w) == Some(&worst))
        else {
            return Vec::new();
        };
        self.assignments.insert(mover, best);
        self.rebalances += 1;
        vec![(mover, best)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn portfolio(mix: &[StrategyKind], adapt: bool) -> Portfolio {
        Portfolio::new(PortfolioConfig {
            mix: mix.to_vec(),
            adapt,
        })
    }

    #[test]
    fn assignment_spreads_across_the_mix() {
        let mut p = portfolio(&[StrategyKind::Dfs, StrategyKind::Cupa], false);
        assert_eq!(p.assign(WorkerId(0)), StrategyKind::Dfs);
        assert_eq!(p.assign(WorkerId(1)), StrategyKind::Cupa);
        assert_eq!(p.assign(WorkerId(2)), StrategyKind::Dfs);
        assert_eq!(p.assign(WorkerId(3)), StrategyKind::Cupa);
        // Idempotent for an already-assigned worker.
        assert_eq!(p.assign(WorkerId(0)), StrategyKind::Dfs);
    }

    #[test]
    fn departure_frees_the_slot_for_the_next_joiner() {
        let mut p = portfolio(&[StrategyKind::Dfs, StrategyKind::Cupa], false);
        for i in 0..4 {
            p.assign(WorkerId(i));
        }
        p.remove(WorkerId(1)); // a cupa worker dies
        assert_eq!(p.assign(WorkerId(9)), StrategyKind::Cupa);
    }

    #[test]
    fn rebalance_moves_a_worker_from_starving_to_productive() {
        let mut p = portfolio(
            &[StrategyKind::Dfs, StrategyKind::Cupa, StrategyKind::Random],
            true,
        );
        for i in 0..6 {
            p.assign(WorkerId(i));
        }
        // Cupa finds coverage, dfs starves, random trickles.
        for _ in 0..20 {
            p.record_yield(StrategyKind::Cupa, 10);
            p.record_yield(StrategyKind::Random, 2);
            p.record_yield(StrategyKind::Dfs, 0);
        }
        let moves = p.rebalance();
        assert_eq!(moves.len(), 1);
        let (mover, target) = moves[0];
        assert_eq!(target, StrategyKind::Cupa);
        assert_eq!(p.assignment(mover), Some(StrategyKind::Cupa));
        // The mover came from the starving strategy.
        let dfs_workers = p
            .standings()
            .iter()
            .find(|(k, _, _)| *k == StrategyKind::Dfs)
            .map(|(_, w, _)| *w)
            .unwrap();
        assert_eq!(dfs_workers, 1, "dfs keeps its floor worker");
    }

    #[test]
    fn every_strategy_keeps_a_floor_worker() {
        let mut p = portfolio(&[StrategyKind::Dfs, StrategyKind::Cupa], true);
        p.assign(WorkerId(0));
        p.assign(WorkerId(1));
        for _ in 0..20 {
            p.record_yield(StrategyKind::Cupa, 10);
            p.record_yield(StrategyKind::Dfs, 0);
        }
        // Each strategy has exactly one worker (= the floor): no move.
        assert!(p.rebalance().is_empty());
    }

    #[test]
    fn rebalance_waits_for_evidence() {
        let mut p = portfolio(&[StrategyKind::Dfs, StrategyKind::Cupa], true);
        for i in 0..4 {
            p.assign(WorkerId(i));
        }
        p.record_yield(StrategyKind::Cupa, 100);
        assert!(p.rebalance().is_empty(), "one report is not evidence");
    }

    #[test]
    fn uniform_portfolio_never_rebalances() {
        let mut p = Portfolio::new(PortfolioConfig::uniform(StrategyKind::KleeDefault));
        for i in 0..4 {
            assert_eq!(p.assign(WorkerId(i)), StrategyKind::KleeDefault);
        }
        for _ in 0..100 {
            p.record_yield(StrategyKind::KleeDefault, 5);
        }
        assert!(p.rebalance().is_empty());
    }

    #[test]
    fn checkpoint_roundtrip_preserves_yields() {
        let mut p = portfolio(&[StrategyKind::Dfs, StrategyKind::Cupa], true);
        p.assign(WorkerId(0));
        p.record_yield(StrategyKind::Cupa, 7);
        let cp = p.checkpoint();
        let mut restored = portfolio(&[StrategyKind::Dfs, StrategyKind::Cupa], true);
        restored.restore(&cp);
        assert_eq!(
            restored.yields.get(&StrategyKind::Cupa),
            p.yields.get(&StrategyKind::Cupa)
        );
    }

    #[test]
    fn parse_mix_rejects_unknown_names_helpfully() {
        let err = PortfolioConfig::parse_mix("dfs,warp-drive").unwrap_err();
        assert!(err.contains("warp-drive"), "error: {err}");
        assert!(err.contains("cupa"), "error must list valid names: {err}");
        assert!(PortfolioConfig::parse_mix("").is_err());
        assert_eq!(
            PortfolioConfig::parse_mix("dfs, random-path ,cov-opt,cupa").unwrap(),
            vec![
                StrategyKind::Dfs,
                StrategyKind::RandomPath,
                StrategyKind::CovOpt,
                StrategyKind::Cupa
            ]
        );
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let a = derive_seed(1, WorkerId(0), 1);
        let b = derive_seed(1, WorkerId(0), 1);
        assert_eq!(a, b);
        assert_ne!(a, derive_seed(1, WorkerId(1), 1), "workers must differ");
        assert_ne!(a, derive_seed(1, WorkerId(0), 2), "epochs must differ");
        assert_ne!(a, derive_seed(2, WorkerId(0), 1), "base seeds must differ");
    }
}
