//! The prefix-anchor replay cache.
//!
//! Materializing a transferred job means re-executing the program from the
//! root while following the job's recorded decision path (§3.2) — work that
//! is pure overhead, paid once per imported job. But jobs arrive in batches
//! that share long path prefixes (that is why the wire format is a prefix
//! trie), and a replaying state paused right after consuming its `k`-th
//! decision is a faithful reconstruction of that depth-`k` prefix node. The
//! [`AnchorCache`] keeps clones of such states — *anchors* — keyed by their
//! path prefix: a job whose path runs through a cached prefix replays only
//! its suffix below the deepest matching anchor.
//!
//! Anchors persist across quanta, so the cache also serves batches that
//! arrive later (sibling subtrees shipped by subsequent balancing rounds),
//! not just the batch that created them. The cache is bounded both by entry
//! count and by an approximate byte budget (`--replay-cache`), evicted
//! least-recently-used first; all accesses happen on the worker's dispatch
//! thread, so no synchronization is needed and `threads == 1` determinism
//! is untouched.

use c9_vm::{ExecutionState, PathChoice, ReplayCacheConfig};
use std::collections::BTreeMap;

/// One cached prefix snapshot.
struct Anchor {
    /// The snapshot: a replaying state paused right after consuming the
    /// decision that completed its key prefix.
    state: ExecutionState,
    /// LRU tick of the last lookup that used (or inserted) this anchor.
    last_used: u64,
    /// Approximate logical size, charged against the byte budget.
    cost: u64,
}

/// A bounded LRU cache of replay prefix anchors, keyed by job-path prefix.
pub struct AnchorCache {
    config: ReplayCacheConfig,
    entries: BTreeMap<Vec<PathChoice>, Anchor>,
    tick: u64,
    bytes: u64,
    evictions: u64,
}

/// Approximate logical size of a state, for the byte budget. Clones share
/// CoW memory and reference-counted expressions, so this deliberately
/// over-counts physical usage; the budget is a safety valve, not an exact
/// accountant.
fn approx_cost(state: &ExecutionState) -> u64 {
    1024 + state.memory.allocated_bytes()
        + 64 * state.constraints.len() as u64
        + 16 * state.path.len() as u64
}

impl AnchorCache {
    /// Creates a cache with the given budget.
    pub fn new(config: ReplayCacheConfig) -> AnchorCache {
        AnchorCache {
            config,
            entries: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            evictions: 0,
        }
    }

    /// Whether anchors may be cached at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Number of anchors currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no anchors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes currently charged against the budget.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Anchors evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns a clone of the deepest cached anchor whose key is a prefix
    /// of `path` (possibly all of it), or `None` when no prefix is cached.
    pub fn lookup(&mut self, path: &[PathChoice]) -> Option<ExecutionState> {
        for depth in (1..=path.len()).rev() {
            if let Some(anchor) = self.entries.get_mut(&path[..depth]) {
                self.tick += 1;
                anchor.last_used = self.tick;
                return Some(anchor.state.clone());
            }
        }
        None
    }

    /// Caches a clone of `state` under its current path prefix. A prefix
    /// already cached is only touched (the existing snapshot is identical —
    /// replay is deterministic). Evicts least-recently-used anchors until
    /// the count and byte budgets hold; a state too large for the whole
    /// byte budget is not cached at all.
    pub fn insert(&mut self, state: &ExecutionState) {
        // An empty prefix is the initial state — cheaper to rebuild than
        // to cache (and lookups never consult depth 0).
        if !self.enabled() || state.path.is_empty() {
            return;
        }
        self.tick += 1;
        if let Some(existing) = self.entries.get_mut(state.path.as_slice()) {
            existing.last_used = self.tick;
            return;
        }
        let cost = approx_cost(state);
        if self.config.max_bytes > 0 && cost > self.config.max_bytes {
            return;
        }
        self.entries.insert(
            state.path.clone(),
            Anchor {
                state: state.clone(),
                last_used: self.tick,
                cost,
            },
        );
        self.bytes += cost;
        while self.entries.len() > self.config.capacity
            || (self.config.max_bytes > 0 && self.bytes > self.config.max_bytes)
        {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, a)| a.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.bytes -= evicted.cost;
                self.evictions += 1;
            }
        }
    }
}

impl std::fmt::Debug for AnchorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnchorCache")
            .field("anchors", &self.entries.len())
            .field("bytes", &self.bytes)
            .field("capacity", &self.config.capacity)
            .field("max_bytes", &self.config.max_bytes)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c9_ir::{Operand, ProgramBuilder, Width};
    use c9_vm::{Executor, ExecutorConfig, NullEnvironment, StateId};
    use std::sync::Arc;

    fn state_with_path(path: &[bool]) -> ExecutionState {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0, Some(Width::W32));
        f.ret(Some(Operand::word(0)));
        let main = f.finish();
        pb.set_entry(main);
        let executor = Executor::new(
            Arc::new(pb.finish()),
            Arc::new(c9_solver::Solver::new()),
            Arc::new(NullEnvironment),
            ExecutorConfig::default(),
        );
        let mut state = executor.initial_state(StateId(0));
        for &taken in path {
            state.record_choice(PathChoice::Branch(taken));
        }
        state
    }

    fn config(capacity: usize) -> ReplayCacheConfig {
        ReplayCacheConfig {
            capacity,
            max_bytes: 0,
        }
    }

    #[test]
    fn lookup_finds_the_deepest_matching_prefix() {
        let mut cache = AnchorCache::new(config(8));
        cache.insert(&state_with_path(&[true]));
        cache.insert(&state_with_path(&[true, false]));
        cache.insert(&state_with_path(&[false]));
        let target: Vec<PathChoice> = [true, false, true, true]
            .iter()
            .map(|&b| PathChoice::Branch(b))
            .collect();
        let hit = cache.lookup(&target).expect("prefix cached");
        assert_eq!(hit.path.len(), 2, "deepest prefix wins");
        // No cached prefix of an unrelated path.
        let miss: Vec<PathChoice> = vec![PathChoice::Alt {
            chosen: 0,
            total: 2,
        }];
        assert!(cache.lookup(&miss).is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = AnchorCache::new(config(2));
        cache.insert(&state_with_path(&[true]));
        cache.insert(&state_with_path(&[false]));
        // Touch [true] so [false] is the LRU entry.
        assert!(cache.lookup(&[PathChoice::Branch(true)]).is_some());
        cache.insert(&state_with_path(&[true, true]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&[PathChoice::Branch(false)]).is_none());
        assert!(cache.lookup(&[PathChoice::Branch(true)]).is_some());
    }

    #[test]
    fn byte_budget_bounds_the_cache() {
        let tiny = ReplayCacheConfig {
            capacity: 100,
            max_bytes: 1, // smaller than any state
        };
        let mut cache = AnchorCache::new(tiny);
        cache.insert(&state_with_path(&[true]));
        assert!(cache.is_empty(), "over-budget state must not be cached");

        let one_state = ReplayCacheConfig {
            capacity: 100,
            max_bytes: approx_cost(&state_with_path(&[true])) + 8,
        };
        let mut cache = AnchorCache::new(one_state);
        cache.insert(&state_with_path(&[true]));
        cache.insert(&state_with_path(&[false]));
        assert_eq!(cache.len(), 1, "byte budget holds one anchor");
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn disabled_cache_caches_nothing() {
        let mut cache = AnchorCache::new(ReplayCacheConfig::DISABLED);
        cache.insert(&state_with_path(&[true]));
        assert!(cache.is_empty());
        assert!(cache.lookup(&[PathChoice::Branch(true)]).is_none());
    }

    #[test]
    fn duplicate_insert_only_touches_the_entry() {
        let mut cache = AnchorCache::new(config(4));
        cache.insert(&state_with_path(&[true]));
        let bytes = cache.bytes();
        cache.insert(&state_with_path(&[true]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), bytes, "duplicate insert double-charged");
    }
}
