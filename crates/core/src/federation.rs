//! Federated coordination: sub-coordinators between the root and workers.
//!
//! A flat coordinator scales to a few dozen workers before its single
//! status-drain loop becomes the bottleneck (§6 of the paper evaluates up
//! to 48 nodes; the balancer handles every worker's report itself). The
//! federation layer removes that ceiling by *recursion over the existing
//! wire protocol*: the cluster is split into groups, each group is run by a
//! [`SubCoordinator`] that hosts the full membership / ledger / balancer /
//! portfolio machinery locally, and every sub-coordinator joins the root
//! coordinator **as a worker**. The root runs the unmodified
//! [`Cluster::run_coordinator`] loop over G sub-"workers"; no new frame
//! types exist and the wire version is unchanged.
//!
//! The mapping of worker-protocol concepts onto groups:
//!
//! * **Status reports** become *digests*: queue length is the sum over the
//!   group, coverage is the group's merged bit vector, stats are the
//!   snapshot-consistent sum over members, and the frontier snapshot — the
//!   union of the member ledgers, in-flight batches, and the reclaim pool —
//!   rides on *every* digest, so the root's ledger for the group is always
//!   a consistent cut of the group's pending work.
//! * **`Balance` towards the group** becomes an inter-group transfer: the
//!   sub-coordinator *harvests* jobs from a member (a `Balance` whose
//!   destination is [`COORDINATOR`] — the member's `Exported`/`Sent` pair
//!   resolves straight into the sub's reclaim pool), then ships them to the
//!   sibling group with the same announce-before-wire discipline a worker
//!   uses, so the root holds custody of the batch at every instant.
//! * **Failure of a sub-coordinator** is handled by the root exactly like a
//!   worker crash (PR 2's recovery lifted to groups): the dead group
//!   contributes its last snapshot-consistent digest stats, and the root
//!   re-injects the digest's frontier into the surviving groups. Work the
//!   group completed after its last digest is re-executed — path accounting
//!   stays exact through the loss of a whole group.
//!
//! Inter-group balancing is *depth-partitioned* by default (test-depth
//! partitioning): the donor member is the one holding the shallowest ledger
//! job — the root of the largest unexplored subtree — and the shallowest
//! harvested jobs are shipped first, so transfers move maximal exploration
//! potential per byte and sibling groups end up owning disjoint depth bands.
//!
//! [`FederatedCluster`] wires the whole tree up in-process (root, G
//! sub-coordinators, G×S workers on scoped threads) for tests and
//! single-machine runs; the `c9-coordinator --sub` binary mode does the
//! same over TCP.

use crate::balancer::{BalancerConfig, LoadBalancer, TransferRequest};
use crate::cluster::{
    Cluster, ClusterConfig, ClusterRunResult, CoordinatorRunOpts, WorkerService, GOSSIP_FOLD_EVERY,
    GOSSIP_SLICE_MAX, HOT_SET_MAX, MAX_STATUS_DRAIN, PENDING_GOSSIP_MAX,
};
use crate::membership::Membership;
use crate::portfolio::{derive_seed, Portfolio, PortfolioConfig};
use crate::worker::WorkerConfig;
use c9_ir::Program;
use c9_net::{
    Control, CoordinatorEndpoint, EnvSpec, FinalReport, InProcTransport, Job, JobBatch, JobTree,
    MemberEvent, RunId, RunSpec, StatusReport, TransferEvent, Transport, TransportError,
    WorkerEndpoint, WorkerId, WorkerStats, COORDINATOR,
};
use c9_solver::CacheSlice;
use c9_trace::{info, warn};
use c9_vm::{Environment, StrategyKind, TestCase};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Digests carry a gossip excerpt upward on every k-th report, mirroring
/// the worker-side cadence (`GOSSIP_STATUS_EVERY` in the cluster module).
const DIGEST_GOSSIP_EVERY: u64 = 4;

/// Configuration of one sub-coordinator.
#[derive(Clone, Debug)]
pub struct FederationConfig {
    /// Listen addresses of statically connected group members, by worker
    /// id (empty strings for transports without peer addressing, e.g. the
    /// in-process harness).
    pub static_members: Vec<String>,
    /// Wait for at least this many live group members before starting
    /// (static members already count).
    pub min_members: usize,
    /// How long to wait for `min_members` before starting anyway.
    pub join_wait: Duration,
    /// Declare a group member dead after this much silence and reclaim its
    /// ledger. `None` disables the group-level failure detector (the right
    /// choice when members are scoped threads that cannot die alone).
    pub failure_timeout: Option<Duration>,
    /// Cadence of the intra-group balancing rounds.
    pub balance_interval: Duration,
    /// Depth-partitioned inter-group balancing: harvest from the member
    /// holding the shallowest pending job and ship the shallowest harvest
    /// first. Off, the donor is simply the longest queue.
    pub depth_partition: bool,
    /// How long a root `Balance` request may wait for harvested jobs before
    /// whatever was gathered is shipped (or the request is dropped empty).
    pub export_timeout: Duration,
    /// How long to wait for member final reports after `Stop`.
    pub final_timeout: Duration,
    /// Intra-group balancing parameters.
    pub balancer: BalancerConfig,
    /// Group-local strategy portfolio; `None` runs every member on the
    /// strategy the root assigned to the group.
    pub portfolio: Option<PortfolioConfig>,
}

impl Default for FederationConfig {
    fn default() -> FederationConfig {
        FederationConfig {
            static_members: Vec::new(),
            min_members: 1,
            join_wait: Duration::from_secs(60),
            failure_timeout: None,
            balance_interval: Duration::from_millis(20),
            depth_partition: true,
            export_timeout: Duration::from_millis(500),
            final_timeout: Duration::from_secs(30),
            balancer: BalancerConfig::default(),
            portfolio: None,
        }
    }
}

/// Counters a sub-coordinator accumulates about its own group.
#[derive(Clone, Debug, Default)]
pub struct SubSummary {
    /// Group members ever seen.
    pub workers: usize,
    /// Members declared dead by the group failure detector.
    pub workers_failed: u64,
    /// Inter-group batches shipped to siblings.
    pub batches_exported: u64,
    /// Inter-group batches received from siblings.
    pub batches_imported: u64,
    /// Jobs re-injected into the group (reclaimed, injected by the root,
    /// or imported from siblings).
    pub jobs_reclaimed: u64,
    /// Digests sent to the root.
    pub digests_sent: u64,
}

/// An inter-group transfer the root requested, awaiting harvested jobs.
struct PendingExport {
    destination: WorkerId,
    count: u64,
    deadline: Instant,
    asked: bool,
}

/// Sub-coordinator state that feeds the upward (root-facing) protocol.
struct UpwardState {
    /// The strategy the root assigned to this group (stamped on digests).
    strategy: StrategyKind,
    /// Transfer events to ride the next digest.
    events: Vec<TransferEvent>,
    /// Sequence of inter-group exports (per sub, monotonically increasing).
    export_seq: u64,
    /// Digests sent so far (drives the upward gossip cadence).
    digests_sent: u64,
    last_digest: Instant,
    /// Jobs harvested from members, staged for an inter-group export.
    harvest: Vec<Job>,
    /// Inter-group transfers the root requested, one entry per sibling
    /// destination (a repeated request refreshes its entry), served in
    /// arrival order from the shared harvest pool.
    pending_exports: VecDeque<PendingExport>,
    /// The group hot set (union of member gossip slices).
    hot_set: CacheSlice,
    pending_gossip: Vec<CacheSlice>,
    /// Whether the hot set learned entries since the last upward export.
    gossip_dirty: bool,
    /// Per-member count of status bugs already forwarded upward.
    bugs_forwarded: Vec<usize>,
}

/// A coordinator for one worker group inside a federated cluster.
///
/// Downward (`C`) it *is* a coordinator: it admits group members, runs
/// membership with ledgers and failure detection, intra-group load
/// balancing, and a strategy portfolio. Upward (`U`) it *is* a worker: it
/// joins the root, receives the run spec, reports aggregated digests, and
/// honours `Balance` requests by harvesting jobs from its members.
pub struct SubCoordinator<U: WorkerEndpoint, C: CoordinatorEndpoint> {
    uplink: U,
    group: C,
    fed: FederationConfig,
    abort: Arc<AtomicBool>,
}

impl<U: WorkerEndpoint, C: CoordinatorEndpoint> SubCoordinator<U, C> {
    /// Creates a sub-coordinator over an established uplink (worker-side
    /// endpoint towards the root) and group endpoint (coordinator-side
    /// endpoint towards the members).
    pub fn new(uplink: U, group: C, fed: FederationConfig) -> SubCoordinator<U, C> {
        SubCoordinator {
            uplink,
            group,
            fed,
            abort: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A flag that simulates a crash of a *running* sub-coordinator: once
    /// set, the main loop returns at its next iteration without a word to
    /// anyone — endpoints drop, heartbeats stop, and both the root and the
    /// group members observe the silence exactly as they would a SIGKILL.
    /// The flag is only honoured after the run has started (a sub killed
    /// before it shipped the run specs never admitted observable work).
    pub fn abort_flag(&self) -> Arc<AtomicBool> {
        self.abort.clone()
    }

    /// Waits for the root to ship the run spec, then runs the group.
    /// Group members that join while the spec is still pending are admitted
    /// immediately (their spec follows once the run starts).
    pub fn run(mut self) -> Result<SubSummary, TransportError> {
        let start = Instant::now();
        let mut membership = Membership::new(self.fed.failure_timeout);
        for addr in self.fed.static_members.clone() {
            membership.add_static(addr, start);
        }
        let spec = loop {
            if let Some(spec) = self.uplink.try_recv_start() {
                break *spec;
            }
            admit_group_joins(&mut self.group, &mut membership, None);
            std::thread::sleep(Duration::from_millis(2));
        };
        self.drive_group(spec, membership)
    }

    /// Runs the group for a spec already in hand (the TCP binary receives
    /// it through its own `wait_start` handshake before constructing the
    /// sub-coordinator).
    pub fn run_with_spec(self, spec: RunSpec) -> Result<SubSummary, TransportError> {
        let start = Instant::now();
        let mut membership = Membership::new(self.fed.failure_timeout);
        for addr in self.fed.static_members.clone() {
            membership.add_static(addr, start);
        }
        self.drive_group(spec, membership)
    }

    #[allow(clippy::too_many_lines)]
    fn drive_group(
        mut self,
        spec: RunSpec,
        mut membership: Membership,
    ) -> Result<SubSummary, TransportError> {
        let run = spec.run;
        let epoch = spec.worker_epoch;
        let my_id = self.uplink.id();
        self.uplink.start_heartbeat(spec.heartbeat_interval);
        let mut portfolio = Portfolio::new(
            self.fed
                .portfolio
                .clone()
                .unwrap_or_else(|| PortfolioConfig::uniform(spec.strategy)),
        );

        // Wait for the group quorum, then ship every member its spec.
        let join_deadline = Instant::now() + self.fed.join_wait;
        while membership.alive_count() < self.fed.min_members.max(1) {
            if admit_group_joins(&mut self.group, &mut membership, None) == 0 {
                if Instant::now() >= join_deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        for member in membership.members().to_vec() {
            if !member.is_alive() {
                continue;
            }
            let strategy = portfolio.assign(member.worker);
            membership.set_strategy(member.worker, strategy);
            let member_spec = member_spec(&spec, member.worker, member.epoch, strategy);
            if self.group.send_start(member.worker, member_spec).is_err() {
                membership.mark_dead(member.worker);
                portfolio.remove(member.worker);
            }
        }
        let infos = membership.peer_infos();
        for worker in membership.alive() {
            let _ = self
                .group
                .send_control(worker, run, Control::Membership(infos.clone()));
        }

        let mut lb = LoadBalancer::new(
            membership.len().max(1),
            spec.program.loc(),
            self.fed.balancer,
        );
        let mut summary = SubSummary {
            workers: membership.len(),
            ..SubSummary::default()
        };
        let mut up = UpwardState {
            strategy: spec.strategy,
            events: Vec::new(),
            export_seq: 0,
            digests_sent: 0,
            last_digest: Instant::now() - spec.status_interval,
            harvest: Vec::new(),
            pending_exports: VecDeque::new(),
            hot_set: CacheSlice::default(),
            pending_gossip: Vec::new(),
            gossip_dirty: false,
            bugs_forwarded: Vec::new(),
        };
        let mut last_balance = Instant::now();
        let mut last_gossip = Instant::now();
        let mut harvest_idle_since: Option<Instant> = None;
        let mut stopping = false;

        loop {
            // A set abort flag is a simulated SIGKILL: vanish mid-loop.
            // Heartbeats stop and the endpoints drop with `self`; the root
            // detects the silence and reclaims this group's last digest
            // frontier, members detect the dead group endpoint and exit.
            if self.abort.load(Ordering::Relaxed) {
                return Ok(summary);
            }

            admit_group_joins(
                &mut self.group,
                &mut membership,
                Some((&mut portfolio, &spec)),
            );
            summary.workers = membership.len();
            for member in membership.members() {
                if member.is_alive() {
                    lb.ensure_worker(member.worker);
                } else {
                    lb.set_alive(member.worker, false);
                    portfolio.remove(member.worker);
                }
            }
            while let Some(event) = self.group.try_recv_event() {
                if let MemberEvent::Leave { worker, .. } = &event {
                    lb.set_alive(*worker, false);
                    portfolio.remove(*worker);
                }
                apply_member_event(&mut membership, event);
            }
            for worker in membership.detect_failures(Instant::now()) {
                lb.set_alive(worker, false);
                portfolio.remove(worker);
                summary.workers_failed += 1;
                warn!("group member {worker} declared dead; reclaiming its pending jobs");
            }

            // Drain member status reports (bounded, like the root's drain).
            let mut got_any = false;
            let mut drained = 0usize;
            while drained < MAX_STATUS_DRAIN {
                let Some(report) = (if got_any {
                    self.group.recv_status(Duration::ZERO)
                } else {
                    self.group.recv_status(Duration::from_millis(2))
                }) else {
                    break;
                };
                got_any = true;
                drained += 1;
                if report.run != run {
                    continue;
                }
                if !membership.record_status(&report, Instant::now()) {
                    continue;
                }
                let w = report.worker;
                let (global, newly_covered) = lb.report(w, report.queue_length, &report.coverage);
                portfolio.record_yield(report.strategy, newly_covered);
                let _ = self
                    .group
                    .send_control(w, run, Control::GlobalCoverage(global));
                if let Some(gossip) = report.gossip {
                    if up.pending_gossip.len() >= PENDING_GOSSIP_MAX {
                        up.pending_gossip.remove(0);
                    }
                    up.pending_gossip.push(gossip);
                }
            }

            // Root-facing inbox: the run-scoped controls a worker receives,
            // interpreted at group scope.
            while let Some((r, msg)) = self.uplink.try_recv_control() {
                if r != run && r != RunId::SERVICE {
                    continue;
                }
                match msg {
                    Control::Stop => stopping = true,
                    Control::GlobalCoverage(global) => lb.merge_coverage(&global),
                    Control::HotSet(slice) => {
                        for worker in membership.alive() {
                            let _ = self.group.send_control(
                                worker,
                                run,
                                Control::HotSet(slice.clone()),
                            );
                        }
                    }
                    Control::SetStrategy { strategy, seed } => {
                        up.strategy = strategy;
                        for member in membership.members().to_vec() {
                            if !member.is_alive() {
                                continue;
                            }
                            membership.set_strategy(member.worker, strategy);
                            let _ = self.group.send_control(
                                member.worker,
                                run,
                                Control::SetStrategy {
                                    strategy,
                                    seed: derive_seed(seed, member.worker, member.epoch),
                                },
                            );
                        }
                    }
                    Control::Inject { seq, encoded } => {
                        if let Some(tree) = JobTree::decode(&encoded) {
                            up.events.push(TransferEvent::Imported {
                                source: COORDINATOR,
                                seq,
                                encoded,
                            });
                            membership.seed_pool(tree.to_jobs());
                        }
                    }
                    Control::Balance { destination, count } => {
                        // The root asks for several destinations per
                        // balancing round; keep one entry per sibling so
                        // every destination is eventually served.
                        if let Some(pending) = up
                            .pending_exports
                            .iter_mut()
                            .find(|p| p.destination == destination)
                        {
                            pending.count = pending.count.max(count);
                        } else {
                            up.pending_exports.push_back(PendingExport {
                                destination,
                                count,
                                deadline: Instant::now() + self.fed.export_timeout,
                                asked: false,
                            });
                        }
                    }
                    // The root's peer table names the sibling groups;
                    // inter-group batches dial those addresses.
                    Control::Membership(peers) => self.uplink.update_peers(&peers),
                }
            }

            // Batches from sibling groups.
            while let Some(batch) = self.uplink.try_recv_jobs() {
                if batch.run != run {
                    continue;
                }
                let Some(tree) = JobTree::decode(&batch.encoded) else {
                    continue;
                };
                if let Some(slice) = &batch.slice {
                    // The sibling's piggybacked cache warmth benefits every
                    // member about to replay these jobs.
                    for worker in membership.alive() {
                        let _ =
                            self.group
                                .send_control(worker, run, Control::HotSet(slice.clone()));
                    }
                }
                up.events.push(TransferEvent::Imported {
                    source: batch.source,
                    seq: batch.seq,
                    encoded: batch.encoded,
                });
                summary.batches_imported += 1;
                membership.seed_pool(tree.to_jobs());
            }

            // Reclaimed and root-injected jobs go straight back to the
            // members; member exports addressed to this coordinator (the
            // harvest answers, however late they arrive) stage for the
            // inter-group transfers the root requested.
            let pool = membership.take_pool();
            if !pool.is_empty() {
                summary.jobs_reclaimed +=
                    reinject_into_group(&mut self.group, &mut membership, run, pool);
            }
            let harvested = membership.take_harvest();
            if !harvested.is_empty() {
                up.harvest.extend(harvested);
            }
            // A harvest no export wants (the root stopped asking — the
            // cluster balanced itself out underneath the request) returns
            // to the members rather than sitting in limbo.
            if up.pending_exports.is_empty() && !up.harvest.is_empty() {
                let idle_since = *harvest_idle_since.get_or_insert_with(Instant::now);
                if idle_since.elapsed() > self.fed.export_timeout {
                    let stale = std::mem::take(&mut up.harvest);
                    summary.jobs_reclaimed +=
                        reinject_into_group(&mut self.group, &mut membership, run, stale);
                    harvest_idle_since = None;
                }
            } else {
                harvest_idle_since = None;
            }

            // Progress the front pending inter-group export: ask a donor
            // once, ship when enough jobs are staged or the deadline
            // passes. One export flushes per loop turn; the rest of the
            // queue keeps its arrival order.
            let mut flush_export = false;
            if let Some(pending) = up.pending_exports.front_mut() {
                let now = Instant::now();
                let want = pending.count as usize;
                if up.harvest.len() < want && now < pending.deadline && !pending.asked {
                    if let Some(victim) = pick_harvest_victim(&membership, self.fed.depth_partition)
                    {
                        let need = (want - up.harvest.len()) as u64;
                        let _ = self.group.send_control(
                            victim,
                            run,
                            Control::Balance {
                                destination: COORDINATOR,
                                count: need,
                            },
                        );
                        pending.asked = true;
                    } else {
                        // Nobody has work to give; resolve the request now.
                        pending.deadline = now;
                    }
                }
                if up.harvest.len() >= want || now >= pending.deadline {
                    flush_export = true;
                }
            }
            if flush_export {
                let pending = up
                    .pending_exports
                    .pop_front()
                    .expect("flush without pending");
                let selected = select_export(
                    &mut up.harvest,
                    pending.count as usize,
                    self.fed.depth_partition,
                );
                if !selected.is_empty() {
                    up.export_seq += 1;
                    let seq = up.export_seq;
                    let encoded = JobTree::from_jobs(&selected).encode();
                    // Announce the export on a digest *before* the wire
                    // send: if this sub dies in between, the root holds the
                    // batch in its in-flight table and can re-inject it.
                    up.events.push(TransferEvent::Exported {
                        destination: pending.destination,
                        seq,
                        encoded: encoded.clone(),
                    });
                    self.send_digest(&membership, &lb, &mut up, run, my_id, epoch, &mut summary)?;
                    let slice = (!up.hot_set.is_empty()).then(|| {
                        let mut excerpt = up.hot_set.clone();
                        excerpt.truncate_ranked(GOSSIP_SLICE_MAX);
                        excerpt
                    });
                    let batch = JobBatch {
                        source: my_id,
                        run,
                        source_epoch: epoch,
                        seq,
                        encoded,
                        slice,
                    };
                    if self.uplink.send_jobs(pending.destination, batch).is_ok() {
                        up.events.push(TransferEvent::Sent {
                            destination: pending.destination,
                            seq,
                        });
                        summary.batches_exported += 1;
                    } else {
                        up.events.push(TransferEvent::Requeued {
                            destination: pending.destination,
                            seq,
                        });
                        membership.seed_pool(selected);
                    }
                    self.send_digest(&membership, &lb, &mut up, run, my_id, epoch, &mut summary)?;
                }
                // Leftover harvest stays staged for the next queued (or
                // soon re-issued) export; the idle sweep above returns it
                // to the members if no request follows.
            }

            // Fold parked gossip into the group hot set and rebroadcast the
            // excerpt when the fold learned anything (same cadence and
            // bounds as the flat coordinator).
            if last_gossip.elapsed() >= self.fed.balance_interval * GOSSIP_FOLD_EVERY
                && !up.pending_gossip.is_empty()
            {
                let mut added = 0;
                for slice in std::mem::take(&mut up.pending_gossip) {
                    added += up.hot_set.merge(&slice);
                }
                up.hot_set.truncate_ranked(HOT_SET_MAX);
                if added > 0 && !up.hot_set.is_empty() {
                    let mut excerpt = up.hot_set.clone();
                    excerpt.truncate_ranked(GOSSIP_SLICE_MAX);
                    for worker in membership.alive() {
                        let _ =
                            self.group
                                .send_control(worker, run, Control::HotSet(excerpt.clone()));
                    }
                    up.gossip_dirty = true;
                }
                last_gossip = Instant::now();
            }

            // Intra-group balancing and portfolio adaptation.
            if last_balance.elapsed() >= self.fed.balance_interval {
                for TransferRequest {
                    source,
                    destination,
                    count,
                } in lb.balance()
                {
                    let _ = self.group.send_control(
                        source,
                        run,
                        Control::Balance { destination, count },
                    );
                }
                for (worker, strategy) in portfolio.rebalance() {
                    let Some(member) = membership.member(worker) else {
                        continue;
                    };
                    let seed =
                        derive_seed(spec.seed, worker, member.epoch) ^ portfolio.rebalances();
                    membership.set_strategy(worker, strategy);
                    info!("group portfolio rebalance: member {worker} now runs {strategy}");
                    let _ = self.group.send_control(
                        worker,
                        run,
                        Control::SetStrategy { strategy, seed },
                    );
                }
                last_balance = Instant::now();
            }

            // The upward digest. An unreachable root ends the run: stop the
            // group (best effort) and report the transport failure.
            if up.last_digest.elapsed() >= spec.status_interval {
                if let Err(e) =
                    self.send_digest(&membership, &lb, &mut up, run, my_id, epoch, &mut summary)
                {
                    for worker in membership.alive() {
                        let _ = self.group.send_control(worker, run, Control::Stop);
                    }
                    return Err(e);
                }
            }

            if stopping {
                break;
            }
            if !got_any {
                std::thread::sleep(Duration::from_micros(500));
            }
        }

        self.shutdown_group(membership, lb, up, run, my_id, epoch, summary)
    }

    /// One aggregated status report towards the root: the whole group
    /// presented as a single worker. The frontier snapshot — member
    /// ledgers, in-flight batches, the reclaim pool, and the harvest
    /// staging buffer — rides on every digest, paired with the
    /// snapshot-consistent stats sum, so the root always holds a cut it
    /// can recover the group from.
    #[allow(clippy::too_many_arguments)]
    fn send_digest(
        &mut self,
        membership: &Membership,
        lb: &LoadBalancer,
        up: &mut UpwardState,
        run: RunId,
        worker: WorkerId,
        epoch: u64,
        summary: &mut SubSummary,
    ) -> Result<(), TransportError> {
        let mut stats = WorkerStats::default();
        let mut queue = up.harvest.len() as u64;
        let mut all_idle = true;
        let mut alive = 0usize;
        let mut new_bugs: Vec<TestCase> = Vec::new();
        for (i, member) in membership.members().iter().enumerate() {
            stats.merge(member.summary_stats());
            if member.is_alive() {
                alive += 1;
                queue += member.queue_length;
                if !member.idle || member.queue_length > 0 {
                    all_idle = false;
                }
            }
            if up.bugs_forwarded.len() <= i {
                up.bugs_forwarded.resize(i + 1, 0);
            }
            let seen = up.bugs_forwarded[i];
            if member.status_bugs.len() > seen {
                new_bugs.extend(member.status_bugs[seen..].iter().cloned());
                up.bugs_forwarded[i] = member.status_bugs.len();
            }
        }
        let idle = alive > 0
            && all_idle
            && queue == 0
            && membership.settled()
            && up.pending_exports.is_empty();
        let mut frontier_jobs = membership.frontier_jobs();
        frontier_jobs.extend(up.harvest.iter().cloned());
        let gossip = (up.digests_sent.is_multiple_of(DIGEST_GOSSIP_EVERY)
            && up.gossip_dirty
            && !up.hot_set.is_empty())
        .then(|| {
            let mut excerpt = up.hot_set.clone();
            excerpt.truncate_ranked(GOSSIP_SLICE_MAX);
            excerpt
        });
        if gossip.is_some() {
            up.gossip_dirty = false;
        }
        let report = StatusReport {
            run,
            worker,
            epoch,
            queue_length: queue,
            coverage: lb.global_coverage().clone(),
            stats,
            idle,
            strategy: up.strategy,
            frontier: Some(JobTree::from_jobs(&frontier_jobs).encode()),
            new_bugs,
            transfers: std::mem::take(&mut up.events),
            gossip,
        };
        up.digests_sent += 1;
        up.last_digest = Instant::now();
        summary.digests_sent += 1;
        self.uplink.send_status(report)
    }

    /// Stops the group, collects member finals, and sends the aggregated
    /// final report upward.
    #[allow(clippy::too_many_arguments)]
    fn shutdown_group(
        mut self,
        mut membership: Membership,
        lb: LoadBalancer,
        mut up: UpwardState,
        run: RunId,
        my_id: WorkerId,
        epoch: u64,
        mut summary: SubSummary,
    ) -> Result<SubSummary, TransportError> {
        for worker in membership.alive() {
            let _ = self.group.send_control(worker, run, Control::Stop);
        }
        let mut coverage = lb.global_coverage().clone();
        let mut test_cases: Vec<TestCase> = Vec::new();
        let mut bugs: Vec<TestCase> = Vec::new();
        let deadline = Instant::now() + self.fed.final_timeout;
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return Ok(summary);
            }
            let outstanding = membership
                .members()
                .iter()
                .any(|m| m.is_alive() && !m.got_final);
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            while let Some(event) = self.group.try_recv_event() {
                apply_member_event(&mut membership, event);
            }
            for worker in membership.detect_failures(Instant::now()) {
                summary.workers_failed += 1;
                warn!("group member {worker} died during shutdown");
            }
            // Status reports queued behind the Stop still carry transfer
            // notices that resolve in-flight batches into the frontier.
            while let Some(report) = self.group.recv_status(Duration::ZERO) {
                if report.run == run {
                    membership.record_status(&report, Instant::now());
                }
            }
            let step = (deadline - now).min(Duration::from_millis(50));
            if let Some(report) = self.group.recv_final(step) {
                if report.run == run && membership.record_final(&report) {
                    coverage.merge(&report.coverage);
                    test_cases.extend(report.test_cases);
                    bugs.extend(report.bugs);
                }
            }
        }
        while let Some(report) = self.group.recv_status(Duration::ZERO) {
            if report.run == run {
                membership.record_status(&report, Instant::now());
            }
        }

        // The group's exact contribution: final stats where the member
        // reported them, its last snapshot-consistent stats otherwise —
        // plus the bugs a member without a final shipped eagerly on its
        // snapshots (their paths are never re-explored).
        let mut stats = WorkerStats::default();
        for member in membership.members() {
            stats.merge(member.summary_stats());
            if !member.got_final {
                bugs.extend(member.status_bugs.iter().cloned());
            }
        }
        let mut frontier_jobs = membership.frontier_jobs();
        frontier_jobs.append(&mut up.harvest);
        let report = FinalReport {
            run,
            worker: my_id,
            epoch,
            stats,
            coverage,
            test_cases,
            bugs,
            frontier: JobTree::from_jobs(&frontier_jobs).encode(),
            transfers: std::mem::take(&mut up.events),
        };
        self.uplink.send_final(report)?;
        Ok(summary)
    }
}

/// Patches the group's run spec for one member: its own derived seed,
/// fencing epoch, and portfolio strategy. Snapshots are forced on (at
/// least every report) — the whole federation recovery story rests on the
/// sub-coordinator's ledgers being current.
fn member_spec(spec: &RunSpec, worker: WorkerId, epoch: u64, strategy: StrategyKind) -> RunSpec {
    let mut member = spec.clone();
    member.seed = derive_seed(spec.seed, worker, epoch);
    member.strategy = strategy;
    member.seed_root = spec.seed_root && worker == WorkerId(0);
    member.worker_epoch = epoch;
    member.snapshot_every = spec.snapshot_every.max(1);
    member
}

/// Admits pending group joins. Before the run starts (`started` is `None`)
/// members are registered and acknowledged with a placeholder strategy;
/// once started, the joiner draws a portfolio strategy, receives its run
/// spec, and the updated peer table is announced to everyone.
fn admit_group_joins<C: CoordinatorEndpoint>(
    group: &mut C,
    membership: &mut Membership,
    mut started: Option<(&mut Portfolio, &RunSpec)>,
) -> usize {
    let mut admitted = 0;
    while let Some(request) = group.try_recv_join() {
        let now = Instant::now();
        let (worker, epoch) = membership.join(request.listen_addr.clone(), request.previous, now);
        let strategy = match started.as_mut() {
            Some((portfolio, _)) => {
                if let Some((old, _)) = request.previous {
                    if membership.member(old).is_some_and(|m| !m.is_alive()) {
                        portfolio.remove(old);
                    }
                }
                let strategy = portfolio.assign(worker);
                membership.set_strategy(worker, strategy);
                strategy
            }
            None => WorkerConfig::default().strategy,
        };
        if group
            .admit(
                request.token,
                worker,
                epoch,
                membership.peer_infos(),
                strategy,
            )
            .is_err()
        {
            membership.mark_dead(worker);
            if let Some((portfolio, _)) = started.as_mut() {
                portfolio.remove(worker);
            }
            continue;
        }
        if let Some((portfolio, spec)) = started.as_mut() {
            let member_spec = member_spec(spec, worker, epoch, strategy);
            if group.send_start(worker, member_spec).is_err() {
                membership.mark_dead(worker);
                portfolio.remove(worker);
                continue;
            }
            let infos = membership.peer_infos();
            for peer in membership.alive() {
                if peer != worker {
                    let _ = group.send_control(peer, spec.run, Control::Membership(infos.clone()));
                }
            }
        }
        info!("group member {worker} joined (epoch {epoch})");
        admitted += 1;
    }
    admitted
}

fn apply_member_event(membership: &mut Membership, event: MemberEvent) {
    match event {
        MemberEvent::Heartbeat { worker, epoch } => {
            membership.record_heartbeat(worker, epoch, Instant::now());
        }
        MemberEvent::Leave { worker, epoch } => {
            if membership.leave(worker, epoch) {
                info!("group member {worker} left gracefully");
            }
        }
    }
}

/// Distributes pooled jobs across the live group members, least-loaded
/// first, through the exactly-once `Inject` protocol (the group-level twin
/// of the root coordinator's re-injection).
fn reinject_into_group<C: CoordinatorEndpoint>(
    group: &mut C,
    membership: &mut Membership,
    run: RunId,
    jobs: Vec<Job>,
) -> u64 {
    if jobs.is_empty() {
        return 0;
    }
    let mut targets: Vec<(u64, WorkerId)> = membership
        .members()
        .iter()
        .filter(|m| m.is_alive())
        .map(|m| (m.queue_length, m.worker))
        .collect();
    if targets.is_empty() {
        membership.seed_pool(jobs);
        return 0;
    }
    targets.sort();
    let total = jobs.len() as u64;
    let chunk_size = jobs.len().div_ceil(targets.len());
    let mut rest = jobs;
    let mut t = 0;
    while !rest.is_empty() {
        let chunk: Vec<Job> = rest.drain(..chunk_size.min(rest.len())).collect();
        let (_, destination) = targets[t % targets.len()];
        t += 1;
        let now = Instant::now();
        let encoded = JobTree::from_jobs(&chunk).encode();
        let seq = membership.record_inject(destination, chunk, now);
        if group
            .send_control(destination, run, Control::Inject { seq, encoded })
            .is_err()
        {
            membership.cancel_inject(destination, seq);
        }
    }
    total
}

/// Picks the member to harvest an inter-group export from. Depth
/// partitioning selects the member whose ledger holds the shallowest
/// pending job — the root of the largest unexplored subtree, the most
/// exploration potential per transferred byte — with the longer queue as
/// the tie-breaker. Without it, the longest queue donates.
fn pick_harvest_victim(membership: &Membership, depth_partition: bool) -> Option<WorkerId> {
    let candidates = membership
        .members()
        .iter()
        .filter(|m| m.is_alive() && (m.queue_length > 0 || m.ledger_len() > 0));
    if depth_partition {
        candidates
            .min_by_key(|m| {
                (
                    m.ledger_min_depth().unwrap_or(usize::MAX),
                    std::cmp::Reverse(m.queue_length),
                )
            })
            .map(|m| m.worker)
    } else {
        candidates.max_by_key(|m| m.queue_length).map(|m| m.worker)
    }
}

/// Takes up to `count` jobs out of the harvest buffer for an inter-group
/// export. Depth partitioning ships the shallowest jobs first, so sibling
/// groups receive subtree roots and the donor keeps its deep, nearly
/// finished work.
fn select_export(harvest: &mut Vec<Job>, count: usize, depth_partition: bool) -> Vec<Job> {
    if depth_partition {
        harvest.sort_by_key(Job::depth);
    }
    let take = count.min(harvest.len());
    harvest.drain(..take).collect()
}

/// An in-process federated cluster: one root coordinator, `groups`
/// sub-coordinators, and `groups × group_size` workers, all on scoped
/// threads connected by channels. The root runs the unmodified
/// [`Cluster::run_coordinator`] loop and sees exactly `groups` "workers".
pub struct FederatedCluster {
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: ClusterConfig,
    groups: usize,
    group_size: usize,
    fed: FederationConfig,
}

impl FederatedCluster {
    /// Creates a federated cluster of `groups × group_size` workers.
    /// `config` parameterizes the root coordinator (its `num_workers` is
    /// ignored; set `failure_timeout` to exercise sub-coordinator failure)
    /// and is the template for the run specs the groups receive.
    pub fn new(
        program: Arc<Program>,
        env: Arc<dyn Environment>,
        config: ClusterConfig,
        groups: usize,
        group_size: usize,
    ) -> FederatedCluster {
        FederatedCluster {
            program,
            env,
            config,
            groups: groups.max(1),
            group_size: group_size.max(1),
            fed: FederationConfig::default(),
        }
    }

    /// Overrides the per-group federation parameters (`static_members` and
    /// `min_members` are still forced to the group size).
    pub fn with_federation(mut self, fed: FederationConfig) -> FederatedCluster {
        self.fed = fed;
        self
    }

    /// Runs the federated cluster to completion.
    pub fn run(&self) -> ClusterRunResult {
        self.run_with_kill(None)
    }

    /// Runs the federated cluster, optionally killing sub-coordinator
    /// `kill.0` (abort-flag SIGKILL simulation) once `kill.1` has elapsed.
    /// The root's failure detector (`config.failure_timeout`) must be
    /// enabled for the cluster to recover from the kill.
    pub fn run_with_kill(&self, kill: Option<(usize, Duration)>) -> ClusterRunResult {
        let mut root_config = self.config.clone();
        root_config.num_workers = self.groups;
        // The recovery story needs the root's ledger current: digests carry
        // a frontier every time.
        root_config.snapshot_every = root_config.snapshot_every.max(1);
        let mut fed = self.fed.clone();
        fed.static_members = vec![String::new(); self.group_size];
        fed.min_members = self.group_size;
        fed.balance_interval = root_config.balance_interval;

        let root_fabric = InProcTransport
            .establish(self.groups)
            .expect("in-process transport cannot fail");
        let mut root_ep = root_fabric.coordinator;
        let sub_uplinks = root_fabric.workers;
        let opts = CoordinatorRunOpts {
            env: EnvSpec::Null,
            run: RunId(1),
            initial_workers: (0..self.groups).map(|g| format!("group-{g}")).collect(),
            min_workers: self.groups,
            join_wait: Duration::from_secs(5),
            target: self.program.name.clone(),
        };
        let root = Cluster::new(self.program.clone(), self.env.clone(), root_config);

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut abort_flags = Vec::with_capacity(self.groups);
            for uplink in sub_uplinks {
                let fabric = InProcTransport
                    .establish(self.group_size)
                    .expect("in-process transport cannot fail");
                for mut endpoint in fabric.workers {
                    let env = self.env.clone();
                    scope.spawn(move || {
                        WorkerService::new(&mut endpoint, move |_| env.clone())
                            .exit_when_drained(true)
                            .serve();
                    });
                }
                let sub = SubCoordinator::new(uplink, fabric.coordinator, fed.clone());
                abort_flags.push(sub.abort_flag());
                scope.spawn(move || {
                    let _ = sub.run();
                });
            }
            if let Some((victim, after)) = kill {
                let flag = abort_flags[victim.min(abort_flags.len() - 1)].clone();
                let done = &done;
                scope.spawn(move || {
                    let deadline = Instant::now() + after;
                    while Instant::now() < deadline {
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    flag.store(true, Ordering::Relaxed);
                });
            }
            let result = root.run_coordinator(&mut root_ep, opts);
            done.store(true, Ordering::Relaxed);
            result
        })
    }
}

#[cfg(test)]
mod federation_tests {
    use super::*;
    use crate::tests::branching_program;
    use c9_vm::{NullEnvironment, PathChoice};

    fn job(depth: usize) -> Job {
        Job::new(vec![PathChoice::Branch(true); depth])
    }

    #[test]
    fn select_export_ships_shallowest_first() {
        let mut harvest = vec![job(5), job(1), job(3), job(2)];
        let selected = select_export(&mut harvest, 2, true);
        assert_eq!(
            selected.iter().map(Job::depth).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(
            harvest.iter().map(Job::depth).collect::<Vec<_>>(),
            vec![3, 5]
        );
    }

    #[test]
    fn select_export_without_partitioning_keeps_order() {
        let mut harvest = vec![job(5), job(1), job(3)];
        let selected = select_export(&mut harvest, 2, false);
        assert_eq!(
            selected.iter().map(Job::depth).collect::<Vec<_>>(),
            vec![5, 1]
        );
        assert_eq!(harvest.len(), 1);
    }

    #[test]
    fn federated_run_matches_flat_path_count() {
        let program = Arc::new(branching_program(6));
        let config = ClusterConfig {
            num_workers: 4,
            status_interval: Duration::from_millis(5),
            balance_interval: Duration::from_millis(10),
            snapshot_every: 1,
            ..ClusterConfig::default()
        };
        let flat = Cluster::new(program.clone(), Arc::new(NullEnvironment), config.clone()).run();
        let federated =
            FederatedCluster::new(program, Arc::new(NullEnvironment), config, 2, 2).run();
        assert!(flat.summary.goal_reached);
        assert!(federated.summary.goal_reached);
        assert_eq!(
            federated.summary.paths_completed(),
            flat.summary.paths_completed(),
            "federated cluster must explore exactly the flat cluster's paths"
        );
    }
}
