//! Worker- and cluster-level statistics.

use c9_net::WorkerStats;
use c9_vm::CoverageSet;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One periodic sample recorded by the load balancer, used to regenerate the
/// time-series figures (Fig. 12 and Fig. 13).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Time since the start of the run, at the end of this interval.
    pub elapsed: Duration,
    /// Candidate states transferred between workers during this interval.
    pub states_transferred: u64,
    /// Total candidate states across all workers at the end of the interval.
    pub total_states: u64,
    /// Total useful instructions executed so far (cumulative).
    pub useful_instructions: u64,
    /// Global line coverage at the end of the interval, in `[0, 1]`.
    pub coverage: f64,
}

/// The aggregated outcome of a cluster run.
#[derive(Clone, Debug, Default)]
pub struct ClusterSummary {
    /// Number of workers that participated.
    pub num_workers: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Whether the exploration goal was reached (exhaustion or coverage
    /// target) rather than the time limit expiring.
    pub goal_reached: bool,
    /// Whether every path was explored.
    pub exhausted: bool,
    /// Per-worker statistics.
    pub worker_stats: Vec<WorkerStats>,
    /// Global line coverage.
    pub coverage: CoverageSet,
    /// Periodic samples for time-series figures.
    pub timeline: Vec<IntervalSample>,
    /// Total number of distinct bugs found (by termination reason + path).
    pub bugs_found: u64,
    /// Workers declared dead by the failure detector during the run.
    pub workers_failed: u64,
    /// Workers that joined the running cluster (elastic membership).
    pub workers_joined: u64,
    /// Jobs reclaimed from dead workers (or a resumed checkpoint) and
    /// re-injected into the survivors.
    pub jobs_reclaimed: u64,
    /// Mid-run strategy reassignments issued by the adaptive portfolio.
    pub strategy_rebalances: u64,
}

impl ClusterSummary {
    /// Total useful (non-replay) instructions across all workers.
    pub fn useful_instructions(&self) -> u64 {
        self.worker_stats
            .iter()
            .map(|w| w.useful_instructions)
            .sum()
    }

    /// Total replay instructions across all workers.
    pub fn replay_instructions(&self) -> u64 {
        self.worker_stats
            .iter()
            .map(|w| w.replay_instructions)
            .sum()
    }

    /// Total completed paths across all workers.
    pub fn paths_completed(&self) -> u64 {
        self.worker_stats.iter().map(|w| w.paths_completed).sum()
    }

    /// Total replay instructions skipped by resuming materializations from
    /// cached prefix anchors instead of the root.
    pub fn replay_saved_instructions(&self) -> u64 {
        self.worker_stats
            .iter()
            .map(|w| w.replay_saved_instructions)
            .sum()
    }

    /// Fraction of materializations (across all workers) that resumed from
    /// a cached prefix anchor.
    pub fn anchor_hit_rate(&self) -> f64 {
        let hits: u64 = self.worker_stats.iter().map(|w| w.anchor_hits).sum();
        let misses: u64 = self.worker_stats.iter().map(|w| w.anchor_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Total replay divergences (corrupted or stale jobs dropped during
    /// materialization) across all workers; zero on a healthy run.
    pub fn replay_divergences(&self) -> u64 {
        self.worker_stats.iter().map(|w| w.replay_divergences).sum()
    }

    /// Total jobs transferred between workers.
    pub fn jobs_transferred(&self) -> u64 {
        self.worker_stats.iter().map(|w| w.jobs_sent).sum()
    }

    /// Useful work per worker (the normalized metric of Fig. 9, bottom).
    pub fn useful_instructions_per_worker(&self) -> f64 {
        if self.num_workers == 0 {
            return 0.0;
        }
        self.useful_instructions() as f64 / self.num_workers as f64
    }

    /// Global line-coverage ratio.
    pub fn coverage_ratio(&self) -> f64 {
        self.coverage.ratio()
    }

    /// Aggregated solver counters across all workers (each worker reports
    /// the totals of the one solver its executor threads share).
    pub fn solver_stats(&self) -> c9_solver::SolverStats {
        let mut total = c9_solver::SolverStats::default();
        for w in &self.worker_stats {
            total.merge(&w.solver);
        }
        total
    }
}
