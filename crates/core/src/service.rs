//! The coordinator-side run service: a registry of runs multiplexed over
//! one worker roster.
//!
//! Where [`Cluster::run_coordinator`](crate::Cluster) drives exactly one
//! run to completion, the [`RunService`] owns a *registry* of runs
//! (`Queued → Running → Draining → Done/Failed`, with `Preempted` as the
//! frozen side state) and drives up to a configured number of them
//! concurrently over the same workers. Every run gets its own membership
//! ledger, load balancer, and strategy portfolio — balancing state is keyed
//! per `(worker, run)` — while the transport multiplexes the run-scoped
//! frames of all of them over one socket (or channel) per worker.
//!
//! Preemption reuses the checkpoint machinery: preempting a run stops it on
//! every worker, folds the final reports into an in-memory [`Checkpoint`],
//! and parks it; reactivation re-admits the run under a fresh wire id with
//! the checkpoint as its resume state, exactly like `--resume` continues an
//! interrupted run from disk.
//!
//! Clients talk to a running service through a cloneable [`ServiceHandle`]
//! (submit, list, status, cancel, preempt, resume, results, shutdown); the
//! newline-delimited JSON front door in [`frontdoor`](crate::frontdoor)
//! exposes the same operations over TCP.

use crate::balancer::LoadBalancer;
use crate::cluster::{ClusterConfig, ClusterRunResult, HOT_SET_MAX};
use crate::membership::{Checkpoint, Membership};
use crate::portfolio::{Portfolio, PortfolioConfig};
use crate::stats::{ClusterSummary, IntervalSample};
use c9_ir::Program;
use c9_net::{
    Control, CoordinatorEndpoint, EnvSpec, FinalReport, JobTree, RunId, StatusReport, WorkerId,
};
use c9_solver::CacheSlice;
use c9_trace::{info, warn};
use c9_vm::{CoverageSet, TestCase};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a run is in its life cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Submitted, waiting for a concurrency slot.
    Queued,
    /// Admitted: its specs are on the workers and it is executing.
    Running,
    /// Stopping: `Stop` frames are out, final reports are being collected.
    Draining,
    /// Frozen: its frontier lives in an in-memory checkpoint; `resume`
    /// re-queues it.
    Preempted,
    /// Finished (to exhaustion, a goal, a limit, or by `cancel`).
    Done,
    /// Could not run (a worker rejected its spec, or the service shut down
    /// underneath it).
    Failed,
}

impl std::fmt::Display for RunState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Draining => "draining",
            RunState::Preempted => "preempted",
            RunState::Done => "done",
            RunState::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// A run handed to [`ServiceHandle::submit`].
pub struct RunSubmission {
    /// Human-readable workload name (recorded in reports and checkpoints).
    pub name: String,
    /// The program under test.
    pub program: Arc<Program>,
    /// The environment model workers should instantiate.
    pub env: EnvSpec,
    /// The per-run cluster configuration (limits, quantum, balancing
    /// cadence, portfolio, worker config). `resume` may carry a checkpoint
    /// to continue from; `num_workers`, `failure_timeout`, and
    /// `checkpoint_path` are ignored — the service owns the roster and
    /// keeps preemption checkpoints in memory.
    pub config: ClusterConfig,
}

/// A registry snapshot of one run, as returned by list/status.
#[derive(Clone, Debug)]
pub struct RunInfo {
    /// The run's public id (stable across preemption and reactivation).
    pub id: RunId,
    /// The submitted workload name.
    pub name: String,
    /// Life-cycle state.
    pub state: RunState,
    /// Whether the run was ended by `cancel`.
    pub cancelled: bool,
    /// Paths completed so far (live estimate while running).
    pub paths_completed: u64,
    /// Global line-coverage ratio reached so far.
    pub coverage: f64,
    /// Bugs found so far.
    pub bugs_found: u64,
    /// Wall-clock time spent executing (across activations).
    pub elapsed: Duration,
}

/// Tuning of the [`RunService`].
#[derive(Clone, Debug)]
pub struct RunServiceConfig {
    /// How many runs may execute concurrently; further submissions queue.
    pub max_concurrent: usize,
    /// Write a per-run `run-<id>.json` report into this directory when a
    /// run finishes.
    pub report_dir: Option<PathBuf>,
}

impl Default for RunServiceConfig {
    fn default() -> RunServiceConfig {
        RunServiceConfig {
            max_concurrent: 2,
            report_dir: None,
        }
    }
}

/// Aggregate totals across every run a service drove to `Done`, returned
/// by [`RunService::run`] at shutdown. Per-run numbers stay in each run's
/// `run-<id>.json` report; this is the roll-up a `--serve` operator reads
/// at the end of the day.
#[derive(Clone, Debug, Default)]
pub struct ServiceSummary {
    /// Runs that reached `Done` (including cancelled ones).
    pub runs_finished: u64,
    /// Paths completed across those runs.
    pub paths_completed: u64,
    /// Bugs found across those runs.
    pub bugs_found: u64,
    /// Solver counters merged across every worker of every finished run
    /// (queries, cache hits, warm hits from imported entries).
    pub solver: c9_solver::SolverStats,
}

enum ServiceRequest {
    Submit(Box<RunSubmission>, Sender<RunId>),
    List(Sender<Vec<RunInfo>>),
    Status(RunId, Sender<Option<RunInfo>>),
    Cancel(RunId, Sender<bool>),
    Preempt(RunId, Sender<bool>),
    Resume(RunId, Sender<bool>),
    Results(RunId, Sender<Option<ClusterRunResult>>),
    Shutdown(Sender<()>),
}

/// A cloneable client of a running [`RunService`]. All calls block until
/// the service's event loop picks the request up (microseconds — the loop
/// never blocks on run execution).
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<ServiceRequest>,
}

impl ServiceHandle {
    /// Submits a run; returns its public id, or `None` if the service is
    /// gone.
    pub fn submit(&self, submission: RunSubmission) -> Option<RunId> {
        let (tx, rx) = unbounded();
        self.tx
            .send(ServiceRequest::Submit(Box::new(submission), tx))
            .ok()?;
        rx.recv().ok()
    }

    /// Lists every run the registry knows, in submission order.
    pub fn list(&self) -> Vec<RunInfo> {
        let (tx, rx) = unbounded();
        if self.tx.send(ServiceRequest::List(tx)).is_err() {
            return Vec::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// Fetches one run's registry snapshot.
    pub fn status(&self, run: RunId) -> Option<RunInfo> {
        let (tx, rx) = unbounded();
        self.tx.send(ServiceRequest::Status(run, tx)).ok()?;
        rx.recv().ok().flatten()
    }

    /// Cancels a queued or running run. Returns whether the run existed in
    /// a cancellable state; a running run transitions through `Draining`
    /// and lands in `Done` with whatever it had explored.
    pub fn cancel(&self, run: RunId) -> bool {
        let (tx, rx) = unbounded();
        self.tx.send(ServiceRequest::Cancel(run, tx)).is_ok() && rx.recv().unwrap_or(false)
    }

    /// Preempts a running run: checkpoints its frontier and frees its
    /// concurrency slot. Returns whether the run was running.
    pub fn preempt(&self, run: RunId) -> bool {
        let (tx, rx) = unbounded();
        self.tx.send(ServiceRequest::Preempt(run, tx)).is_ok() && rx.recv().unwrap_or(false)
    }

    /// Re-queues a preempted run; it reactivates from its checkpoint when a
    /// slot frees up.
    pub fn resume(&self, run: RunId) -> bool {
        let (tx, rx) = unbounded();
        self.tx.send(ServiceRequest::Resume(run, tx)).is_ok() && rx.recv().unwrap_or(false)
    }

    /// Fetches the results of a finished run (`Done`), including its test
    /// cases and bugs.
    pub fn results(&self, run: RunId) -> Option<ClusterRunResult> {
        let (tx, rx) = unbounded();
        self.tx.send(ServiceRequest::Results(run, tx)).ok()?;
        rx.recv().ok().flatten()
    }

    /// Stops the service: every worker gets a service-level `Stop`, active
    /// runs are abandoned, and the event loop returns. Blocks until the
    /// service acknowledged (or is already gone).
    pub fn shutdown(&self) {
        let (tx, rx) = unbounded();
        if self.tx.send(ServiceRequest::Shutdown(tx)).is_ok() {
            let _ = rx.recv();
        }
    }
}

/// One registry entry, owning everything needed to (re)activate the run.
struct RunEntry {
    id: RunId,
    name: String,
    program: Arc<Program>,
    env: EnvSpec,
    config: ClusterConfig,
    state: RunState,
    cancelled: bool,
    /// The frozen state of a preempted run (also carries accumulated
    /// stats/coverage/elapsed across activations, like any resume).
    checkpoint: Option<Checkpoint>,
    /// Test cases and bugs accumulated by finished activations (a
    /// checkpoint carries stats, not artifacts).
    test_cases: Vec<TestCase>,
    bugs: Vec<TestCase>,
    result: Option<ClusterRunResult>,
}

/// Why a draining run is being stopped.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Finish,
    Cancel,
    Preempt,
}

/// The per-activation driving state of a running run: its own membership
/// ledger, balancer, and portfolio — the per-`(worker, run)` keying the
/// multi-tenant protocol needs.
struct ActiveRun {
    public: RunId,
    wire: RunId,
    config: ClusterConfig,
    membership: Membership,
    portfolio: Portfolio,
    lb: LoadBalancer,
    summary: ClusterSummary,
    start: Instant,
    last_balance: Instant,
    last_sample: Instant,
    transferred_at_last_sample: u64,
    everyone_had_work: Vec<bool>,
    /// Per-run worker index → service-roster worker id (the transport
    /// destination). Identical when the roster is dense, but kept explicit
    /// so runs admitted after joins still address the right daemons.
    dest: Vec<WorkerId>,
    draining: bool,
    outcome: Outcome,
    /// Artifacts collected from this activation's final reports.
    test_cases: Vec<TestCase>,
    bugs: Vec<TestCase>,
    /// The run's cluster hot set: the merge of every constraint-cache
    /// slice its workers gossiped on status reports, rebroadcast to the
    /// whole roster when it grows. Per-run, so tenants never see each
    /// other's constraints.
    hot_set: CacheSlice,
    /// Gossip received since the last fold; merged in one batch on the
    /// balance cadence so status routing never pays per-report merges.
    pending_gossip: Vec<CacheSlice>,
    /// When the pending gossip was last folded into the hot set.
    last_gossip: Instant,
}

impl ActiveRun {
    /// The roster id to which frames for per-run worker `w` must be sent.
    fn dest(&self, w: WorkerId) -> WorkerId {
        self.dest.get(w.index()).copied().unwrap_or(w)
    }

    fn base_paths(&self) -> u64 {
        self.config
            .resume
            .as_ref()
            .map(|c| c.base_paths())
            .unwrap_or(0)
    }

    fn total_paths(&self) -> u64 {
        self.base_paths()
            + self
                .membership
                .members()
                .iter()
                .map(|m| {
                    m.summary_stats().paths_completed.max(if m.is_alive() {
                        m.latest_stats.paths_completed
                    } else {
                        0
                    })
                })
                .sum::<u64>()
    }
}

/// The multi-tenant run service. Generic over the transport like the
/// single-run coordinator: the same loop drives in-process channels (tests)
/// and TCP daemons (the `c9-coordinator --serve` front door).
pub struct RunService<C: CoordinatorEndpoint> {
    endpoint: C,
    config: RunServiceConfig,
    /// Service-level membership: the roster of worker daemons. Used only
    /// for identities, addresses, and join admission — per-run fencing and
    /// ledgers live in each run's own membership.
    roster: Membership,
    registry: BTreeMap<u64, RunEntry>,
    queue: VecDeque<RunId>,
    active: Vec<ActiveRun>,
    next_id: u64,
    summary: ServiceSummary,
    rx: Receiver<ServiceRequest>,
    tx: Sender<ServiceRequest>,
}

impl<C: CoordinatorEndpoint> RunService<C> {
    /// Creates a service over `endpoint` with an empty roster; workers
    /// appear via static registration ([`RunService::add_worker`]) or
    /// elastic joins.
    pub fn new(endpoint: C, config: RunServiceConfig) -> RunService<C> {
        let (tx, rx) = unbounded();
        RunService {
            endpoint,
            config,
            roster: Membership::new(None),
            registry: BTreeMap::new(),
            queue: VecDeque::new(),
            active: Vec::new(),
            next_id: 1,
            summary: ServiceSummary::default(),
            rx,
            tx,
        }
    }

    /// Registers a statically connected worker (one the endpoint already
    /// reaches — a dialed daemon, or an in-process worker thread).
    pub fn add_worker(&mut self, addr: String) -> WorkerId {
        let (worker, _) = self.roster.add_static(addr, Instant::now());
        worker
    }

    /// A client handle to this service, cloneable across threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            tx: self.tx.clone(),
        }
    }

    /// Runs the service event loop until a shutdown request arrives, then
    /// returns the totals aggregated across every finished run.
    pub fn run(mut self) -> ServiceSummary {
        loop {
            // Client requests first: submissions and control operations.
            let mut shutdown: Option<Sender<()>> = None;
            while let Ok(request) = self.rx.try_recv() {
                if let ServiceRequest::Shutdown(ack) = request {
                    shutdown = Some(ack);
                    break;
                }
                self.handle_request(request);
            }
            if let Some(ack) = shutdown {
                for worker in self.roster.alive() {
                    let _ = self
                        .endpoint
                        .send_control(worker, RunId::SERVICE, Control::Stop);
                }
                for run in &mut self.active {
                    warn!("run {} abandoned by service shutdown", run.public);
                }
                for entry in self.registry.values_mut() {
                    if matches!(
                        entry.state,
                        RunState::Queued | RunState::Running | RunState::Draining
                    ) {
                        entry.state = RunState::Failed;
                    }
                }
                let _ = ack.send(());
                return self.summary;
            }

            // Elastic joins extend the roster; runs started afterwards
            // include the newcomers. (Runs in flight keep their roster.)
            self.poll_joins();
            while self.endpoint.try_recv_event().is_some() {
                // Per-run failure detection is not part of the service
                // (daemon loss fails the affected runs at drain timeout);
                // heartbeats and leaves are drained so they cannot pile up.
            }

            // Admission: fill free slots from the queue, in order.
            while self.active.len() < self.config.max_concurrent.max(1) {
                let Some(id) = self.queue.pop_front() else {
                    break;
                };
                self.activate(id);
            }

            // Status frames, routed to the run they are stamped with. The
            // drain is bounded per tick (see `MAX_STATUS_DRAIN`): a report
            // flood must not keep the loop from ever driving its runs.
            let mut got_any = false;
            let mut drained = 0usize;
            while drained < crate::cluster::MAX_STATUS_DRAIN {
                let Some(report) = (if got_any {
                    self.endpoint.recv_status(Duration::ZERO)
                } else {
                    self.endpoint.recv_status(Duration::from_millis(2))
                }) else {
                    break;
                };
                got_any = true;
                drained += 1;
                self.route_status(report);
            }

            // Per-run driving: reinjection, stopping conditions, sampling,
            // balancing.
            for i in 0..self.active.len() {
                self.drive_run(i);
            }

            // Final reports, routed by run; a run whose whole roster
            // reported final is finalized according to its outcome.
            while let Some(report) = self.endpoint.recv_final(Duration::ZERO) {
                self.route_final(report);
            }
            let mut finished: Vec<usize> = Vec::new();
            for (i, run) in self.active.iter().enumerate() {
                if run.draining
                    && run
                        .membership
                        .members()
                        .iter()
                        .all(|m| m.got_final || !m.is_alive())
                {
                    finished.push(i);
                }
            }
            for i in finished.into_iter().rev() {
                let run = self.active.swap_remove(i);
                self.finalize(run);
            }
        }
    }

    fn handle_request(&mut self, request: ServiceRequest) {
        match request {
            ServiceRequest::Submit(submission, reply) => {
                let id = RunId(self.next_id);
                self.next_id += 1;
                let RunSubmission {
                    name,
                    program,
                    env,
                    mut config,
                } = *submission;
                // The service owns the roster and keeps checkpoints in
                // memory; per-run failure detection and disk checkpoints
                // are single-run features.
                config.failure_timeout = None;
                config.checkpoint_path = None;
                let checkpoint = config.resume.take();
                info!("run {id} submitted: {name}");
                self.registry.insert(
                    id.0,
                    RunEntry {
                        id,
                        name,
                        program,
                        env,
                        config,
                        state: RunState::Queued,
                        cancelled: false,
                        checkpoint,
                        test_cases: Vec::new(),
                        bugs: Vec::new(),
                        result: None,
                    },
                );
                self.queue.push_back(id);
                let _ = reply.send(id);
            }
            ServiceRequest::List(reply) => {
                let infos = self
                    .registry
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
                    .into_iter()
                    .filter_map(|id| self.info(RunId(id)))
                    .collect();
                let _ = reply.send(infos);
            }
            ServiceRequest::Status(id, reply) => {
                let _ = reply.send(self.info(id));
            }
            ServiceRequest::Cancel(id, reply) => {
                let _ = reply.send(self.cancel(id));
            }
            ServiceRequest::Preempt(id, reply) => {
                let _ = reply.send(self.stop_active(id, Outcome::Preempt));
            }
            ServiceRequest::Resume(id, reply) => {
                let ok = match self.registry.get_mut(&id.0) {
                    Some(entry) if entry.state == RunState::Preempted => {
                        entry.state = RunState::Queued;
                        self.queue.push_back(id);
                        info!("run {id} re-queued from its checkpoint");
                        true
                    }
                    _ => false,
                };
                let _ = reply.send(ok);
            }
            ServiceRequest::Results(id, reply) => {
                let _ = reply.send(
                    self.registry
                        .get(&id.0)
                        .and_then(|entry| entry.result.clone()),
                );
            }
            ServiceRequest::Shutdown(_) => unreachable!("handled by the event loop"),
        }
    }

    fn info(&self, id: RunId) -> Option<RunInfo> {
        let entry = self.registry.get(&id.0)?;
        let mut info = RunInfo {
            id,
            name: entry.name.clone(),
            state: entry.state,
            cancelled: entry.cancelled,
            paths_completed: 0,
            coverage: 0.0,
            bugs_found: 0,
            elapsed: Duration::ZERO,
        };
        if let Some(result) = &entry.result {
            info.paths_completed = result.summary.paths_completed();
            info.coverage = result.summary.coverage_ratio();
            info.bugs_found = result.summary.bugs_found;
            info.elapsed = result.summary.elapsed;
        } else if let Some(checkpoint) = &entry.checkpoint {
            info.paths_completed = checkpoint.base_paths();
            info.coverage = checkpoint.coverage.ratio();
            info.elapsed = checkpoint.elapsed;
        }
        if let Some(run) = self.active.iter().find(|r| r.public == id) {
            info.paths_completed = run.total_paths();
            info.coverage = run.lb.global_coverage().ratio();
            info.elapsed = run
                .config
                .resume
                .as_ref()
                .map(|c| c.elapsed)
                .unwrap_or_default()
                + run.start.elapsed();
        }
        Some(info)
    }

    fn cancel(&mut self, id: RunId) -> bool {
        match self.registry.get_mut(&id.0) {
            Some(entry) if entry.state == RunState::Queued => {
                entry.state = RunState::Done;
                entry.cancelled = true;
                entry.result = Some(ClusterRunResult::default());
                self.queue.retain(|queued| *queued != id);
                info!("run {id} cancelled while queued");
                true
            }
            Some(entry) if entry.state == RunState::Preempted => {
                entry.state = RunState::Done;
                entry.cancelled = true;
                // Whatever the preempted activations had explored is the
                // result.
                let mut result = ClusterRunResult {
                    test_cases: std::mem::take(&mut entry.test_cases),
                    bugs: std::mem::take(&mut entry.bugs),
                    ..ClusterRunResult::default()
                };
                if let Some(checkpoint) = entry.checkpoint.take() {
                    result.summary.worker_stats = checkpoint.base_stats;
                    result.summary.coverage = checkpoint.coverage;
                    result.summary.elapsed = checkpoint.elapsed;
                }
                entry.result = Some(result);
                info!("run {id} cancelled while preempted");
                true
            }
            Some(entry) if entry.state == RunState::Running => {
                let _ = entry;
                self.stop_active(id, Outcome::Cancel)
            }
            _ => false,
        }
    }

    /// Admits elastic joiners into the service roster. A joiner is admitted
    /// at the service level only — runs already in flight keep the roster
    /// they started with; the newcomer participates in runs activated from
    /// now on.
    fn poll_joins(&mut self) {
        while let Some(request) = self.endpoint.try_recv_join() {
            let now = Instant::now();
            let (worker, epoch) =
                self.roster
                    .join(request.listen_addr.clone(), request.previous, now);
            let strategy = c9_vm::StrategyKind::default();
            self.roster.set_strategy(worker, strategy);
            if self
                .endpoint
                .admit(
                    request.token,
                    worker,
                    epoch,
                    self.roster.peer_infos(),
                    strategy,
                )
                .is_err()
            {
                self.roster.mark_dead(worker);
                continue;
            }
            info!(
                "worker {worker} joined the service roster ({})",
                request.listen_addr
            );
        }
    }

    /// Sends run-scoped `Stop` to every roster worker of an active run and
    /// marks it draining with the given outcome.
    fn stop_active(&mut self, id: RunId, outcome: Outcome) -> bool {
        let Some(run) = self.active.iter_mut().find(|r| r.public == id) else {
            return false;
        };
        if run.draining {
            return false;
        }
        run.draining = true;
        run.outcome = outcome;
        run.summary.coverage.merge(run.lb.global_coverage());
        for worker in run.membership.alive() {
            let _ = self
                .endpoint
                .send_control(run.dest(worker), run.wire, Control::Stop);
        }
        if let Some(entry) = self.registry.get_mut(&id.0) {
            entry.state = RunState::Draining;
            if outcome == Outcome::Cancel {
                entry.cancelled = true;
            }
        }
        info!(
            "run {id} draining ({})",
            match outcome {
                Outcome::Finish => "finished",
                Outcome::Cancel => "cancelled",
                Outcome::Preempt => "preempting",
            }
        );
        true
    }

    /// Admits a queued run: builds its per-run membership/balancer/
    /// portfolio over the current roster and ships every worker its spec
    /// under a fresh wire id.
    fn activate(&mut self, id: RunId) {
        let Some(entry) = self.registry.get_mut(&id.0) else {
            return;
        };
        if entry.state != RunState::Queued {
            return;
        }
        if self.roster.alive_count() == 0 {
            // No workers yet; put it back and try again next tick.
            self.queue.push_front(id);
            return;
        }
        let wire = RunId(self.next_id);
        self.next_id += 1;
        let start = Instant::now();

        let mut config = entry.config.clone();
        config.resume = entry.checkpoint.take();
        config.num_workers = self.roster.alive_count();

        let mut membership = Membership::new(None);
        let portfolio_config = config
            .portfolio
            .clone()
            .unwrap_or_else(|| PortfolioConfig::uniform(config.worker.strategy));
        let mut portfolio = Portfolio::new(portfolio_config);
        if let Some(resume) = &config.resume {
            portfolio.restore(&resume.portfolio);
        }
        // Per-run epochs mirror the roster order, so every run derives the
        // same per-worker seeds a solo run of the same configuration would.
        let roster: Vec<(WorkerId, String)> = self
            .roster
            .members()
            .iter()
            .filter(|m| m.is_alive())
            .map(|m| (m.worker, m.addr.clone()))
            .collect();
        for (_, addr) in &roster {
            let (worker, epoch) = membership.add_static(addr.clone(), start);
            let strategy = portfolio.assign(worker);
            membership.set_strategy(worker, strategy);
            let _ = epoch;
        }
        if let Some(resume) = &config.resume {
            membership.seed_pool(resume.jobs());
        }

        let mut lb = LoadBalancer::new(membership.len(), entry.program.loc(), config.balancer);
        if let Some(resume) = &config.resume {
            lb.merge_coverage(&resume.coverage);
        }

        // Ship the specs. Per-run worker ids are dense 0..n in roster
        // order; the roster id at the same position is the transport
        // destination.
        let mut failed = false;
        for (i, (roster_id, _)) in roster.iter().enumerate() {
            let run_worker = WorkerId(i as u32);
            let member_epoch = membership
                .member(run_worker)
                .map(|m| m.epoch)
                .unwrap_or_default();
            let strategy = membership
                .member(run_worker)
                .and_then(|m| m.strategy)
                .unwrap_or(config.worker.strategy);
            let spec = config.run_spec(
                &entry.program,
                entry.env,
                run_worker,
                wire,
                member_epoch,
                strategy,
            );
            if self.endpoint.send_start(*roster_id, spec).is_err() {
                failed = true;
                break;
            }
        }
        if failed {
            entry.state = RunState::Failed;
            warn!("run {id} failed: a worker rejected its spec");
            return;
        }
        // Announce the run's peer table behind the starts (TCP workers
        // refresh their peer connections from it; in-process transports
        // ignore it).
        let infos = membership.peer_infos();
        for (i, (roster_id, _)) in roster.iter().enumerate() {
            let _ = i;
            let _ =
                self.endpoint
                    .send_control(*roster_id, wire, Control::Membership(infos.clone()));
        }

        entry.state = RunState::Running;
        info!(
            "run {id} activated as wire run {wire} on {} workers",
            roster.len()
        );
        let num_workers = membership.len();
        let dest = roster.iter().map(|(id, _)| *id).collect();
        self.active.push(ActiveRun {
            public: id,
            wire,
            membership,
            portfolio,
            lb,
            summary: ClusterSummary {
                num_workers,
                coverage: CoverageSet::new(entry.program.loc()),
                ..ClusterSummary::default()
            },
            start,
            last_balance: start,
            last_sample: start,
            transferred_at_last_sample: 0,
            everyone_had_work: vec![false; num_workers],
            dest,
            draining: false,
            outcome: Outcome::Finish,
            test_cases: Vec::new(),
            bugs: Vec::new(),
            hot_set: CacheSlice::default(),
            pending_gossip: Vec::new(),
            last_gossip: start,
            config,
        });
    }

    /// Routes one status report to the run it is stamped with. The per-run
    /// worker id on the report is also the roster id here, because the
    /// service admits runs over the dense roster prefix.
    fn route_status(&mut self, report: StatusReport) {
        let Some(run) = self.active.iter_mut().find(|r| r.wire == report.run) else {
            return; // a frame of a finished run, late on the wire
        };
        let now = Instant::now();
        if !run.membership.record_status(&report, now) {
            return;
        }
        let w = report.worker;
        if w.index() >= run.everyone_had_work.len() {
            run.everyone_had_work.resize(w.index() + 1, false);
        }
        if report.queue_length > 0 {
            run.everyone_had_work[w.index()] = true;
        }
        let (global, newly_covered) = run.lb.report(w, report.queue_length, &report.coverage);
        run.portfolio.record_yield(report.strategy, newly_covered);
        if let Some(gossip) = report.gossip {
            if run.pending_gossip.len() >= crate::cluster::PENDING_GOSSIP_MAX {
                run.pending_gossip.remove(0);
            }
            run.pending_gossip.push(gossip);
        }
        let _ = self
            .endpoint
            .send_control(run.dest(w), run.wire, Control::GlobalCoverage(global));
    }

    fn route_final(&mut self, report: FinalReport) {
        let Some(run) = self.active.iter_mut().find(|r| r.wire == report.run) else {
            return;
        };
        if run.membership.record_final(&report) {
            run.summary.coverage.merge(&report.coverage);
            run.summary.bugs_found += report.bugs.len() as u64;
            run.test_cases.extend(report.test_cases);
            run.bugs.extend(report.bugs);
        }
    }

    /// One driving tick for one active run: reinjection, stopping
    /// conditions, timeline sampling, balancing — the per-run slice of the
    /// single-run balancer loop.
    fn drive_run(&mut self, i: usize) {
        let run = &mut self.active[i];
        let wire = run.wire;

        // Reinjection of pooled jobs (resume seeds, cancelled injects).
        let pool = run.membership.take_pool();
        if !pool.is_empty() {
            let mut targets: Vec<(u64, WorkerId)> = run
                .membership
                .members()
                .iter()
                .filter(|m| m.is_alive())
                .map(|m| (m.queue_length, m.worker))
                .collect();
            if targets.is_empty() {
                run.membership.seed_pool(pool);
            } else {
                targets.sort();
                let chunk_size = pool.len().div_ceil(targets.len());
                let mut rest = pool;
                let mut t = 0;
                while !rest.is_empty() {
                    let chunk: Vec<_> = rest.drain(..chunk_size.min(rest.len())).collect();
                    let (_, destination) = targets[t % targets.len()];
                    t += 1;
                    let encoded = JobTree::from_jobs(&chunk).encode();
                    let seq = run
                        .membership
                        .record_inject(destination, chunk, Instant::now());
                    run.summary.jobs_reclaimed += 1;
                    if self
                        .endpoint
                        .send_control(
                            run.dest(destination),
                            wire,
                            Control::Inject { seq, encoded },
                        )
                        .is_err()
                    {
                        run.membership.cancel_inject(destination, seq);
                    }
                }
            }
        }

        if run.draining {
            return;
        }

        let elapsed = run
            .config
            .resume
            .as_ref()
            .map(|c| c.elapsed)
            .unwrap_or_default()
            + run.start.elapsed();
        let total_paths = run.total_paths();

        // Stopping conditions, mirroring the single-run loop.
        let mut goal_reached = false;
        let mut exhausted = false;
        if let Some(target) = run.config.coverage_target {
            if run.lb.global_coverage().ratio() >= target {
                goal_reached = true;
            }
        }
        if let Some(max_paths) = run.config.max_total_paths {
            if total_paths >= max_paths {
                goal_reached = true;
            }
        }
        let members = run.membership.members();
        let all_idle = run.membership.alive_count() > 0
            && members
                .iter()
                .filter(|m| m.is_alive())
                .all(|m| m.idle && m.queue_length == 0);
        if all_idle && run.lb.all_idle() && run.membership.settled() {
            exhausted = true;
            goal_reached = true;
        }
        let timed_out = run
            .config
            .time_limit
            .map(|limit| elapsed >= limit)
            .unwrap_or(false);

        // Timeline sampling.
        if run.last_sample.elapsed() >= run.config.sample_interval || goal_reached || timed_out {
            let transferred_now = run.lb.total_transferred();
            run.summary.timeline.push(IntervalSample {
                elapsed,
                states_transferred: transferred_now - run.transferred_at_last_sample,
                total_states: run.lb.queue_lengths().iter().sum(),
                useful_instructions: members
                    .iter()
                    .map(|m| m.latest_stats.useful_instructions)
                    .sum(),
                coverage: run.lb.global_coverage().ratio(),
            });
            run.transferred_at_last_sample = transferred_now;
            run.last_sample = Instant::now();
        }

        if goal_reached || timed_out {
            run.summary.goal_reached = goal_reached;
            run.summary.exhausted = exhausted;
            let id = run.public;
            self.stop_active(id, Outcome::Finish);
            return;
        }

        // Cache gossip: fold the slices received since the last fold into
        // the run's hot set in one batch — merging per report would starve
        // status routing at tight report cadences — and rebroadcast the
        // hottest excerpt to the roster only when the fold learned new
        // entries (see the cadence rationale in `Cluster::balancer_loop`).
        // This runs even when load balancing is disabled (static
        // partitions still profit from shared cache warmth).
        if run.last_gossip.elapsed()
            >= run.config.balance_interval * crate::cluster::GOSSIP_FOLD_EVERY
            && !run.pending_gossip.is_empty()
        {
            let mut added = 0;
            for slice in run.pending_gossip.drain(..) {
                added += run.hot_set.merge(&slice);
            }
            run.hot_set.truncate_ranked(HOT_SET_MAX);
            if added > 0 && !run.hot_set.is_empty() {
                let mut excerpt = run.hot_set.clone();
                excerpt.truncate_ranked(crate::cluster::GOSSIP_SLICE_MAX);
                for worker in run.membership.alive() {
                    let _ = self.endpoint.send_control(
                        run.dest(worker),
                        wire,
                        Control::HotSet(excerpt.clone()),
                    );
                }
            }
            run.last_gossip = Instant::now();
        }

        // Balancing and portfolio adaptation.
        let lb_disabled_by_time = run
            .config
            .disable_lb_after
            .map(|d| elapsed >= d)
            .unwrap_or(false);
        let lb_disabled_static = run.config.static_partition
            && run
                .membership
                .members()
                .iter()
                .filter(|m| m.is_alive())
                .all(|m| {
                    run.everyone_had_work
                        .get(m.worker.index())
                        .copied()
                        .unwrap_or(false)
                });
        if !lb_disabled_by_time
            && !lb_disabled_static
            && run.last_balance.elapsed() >= run.config.balance_interval
        {
            for request in run.lb.balance() {
                // The endpoint destination is the roster id; the payload
                // destination stays the per-run id the worker's peer table
                // resolves.
                let _ = self.endpoint.send_control(
                    run.dest(request.source),
                    wire,
                    Control::Balance {
                        destination: request.destination,
                        count: request.count,
                    },
                );
            }
            for (worker, strategy) in run.portfolio.rebalance() {
                let Some(member) = run.membership.member(worker) else {
                    continue;
                };
                let seed =
                    crate::portfolio::derive_seed(run.config.worker.seed, worker, member.epoch)
                        ^ run.portfolio.rebalances();
                run.membership.set_strategy(worker, strategy);
                run.summary.strategy_rebalances += 1;
                let _ = self.endpoint.send_control(
                    run.dest(worker),
                    wire,
                    Control::SetStrategy { strategy, seed },
                );
            }
            run.last_balance = Instant::now();
        }
    }

    /// Folds a fully drained activation back into its registry entry:
    /// `Done` with results, or `Preempted` with a checkpoint.
    fn finalize(&mut self, mut run: ActiveRun) {
        let Some(entry) = self.registry.get_mut(&run.public.0) else {
            return;
        };
        run.summary.coverage.merge(run.lb.global_coverage());
        let base_stats = run
            .config
            .resume
            .as_ref()
            .map(|c| c.base_stats.clone())
            .unwrap_or_default();
        let base_elapsed = run
            .config
            .resume
            .as_ref()
            .map(|c| c.elapsed)
            .unwrap_or_default();
        let mut worker_stats = base_stats;
        for member in run.membership.members() {
            worker_stats.push(member.summary_stats().clone());
        }
        let elapsed = base_elapsed + run.start.elapsed();

        entry.test_cases.extend(std::mem::take(&mut run.test_cases));
        entry.bugs.extend(std::mem::take(&mut run.bugs));

        if run.outcome == Outcome::Preempt {
            entry.checkpoint = Some(Checkpoint {
                run: entry.id,
                target: entry.name.clone(),
                base_stats: worker_stats,
                frontier: JobTree::from_jobs(&run.membership.frontier_jobs()).encode(),
                coverage: run.summary.coverage.clone(),
                elapsed,
                portfolio: run.portfolio.checkpoint(),
            });
            entry.state = RunState::Preempted;
            info!(
                "run {} preempted ({} pending jobs frozen)",
                entry.id,
                entry
                    .checkpoint
                    .as_ref()
                    .map(|c| c.jobs().len())
                    .unwrap_or(0)
            );
            return;
        }

        let mut summary = std::mem::take(&mut run.summary);
        summary.worker_stats = worker_stats;
        summary.elapsed = elapsed;
        summary.num_workers = run.membership.len().max(1);
        summary.bugs_found = entry.bugs.len() as u64;
        if run.outcome == Outcome::Cancel {
            summary.goal_reached = false;
        }
        let result = ClusterRunResult {
            summary,
            test_cases: std::mem::take(&mut entry.test_cases),
            bugs: entry.bugs.clone(),
        };
        entry.bugs.clear();
        entry.state = RunState::Done;
        self.summary.runs_finished += 1;
        self.summary.paths_completed += result.summary.paths_completed();
        self.summary.bugs_found += result.summary.bugs_found;
        self.summary.solver.merge(&result.summary.solver_stats());
        info!(
            "run {} done: {} paths, {} bugs{}",
            entry.id,
            result.summary.paths_completed(),
            result.summary.bugs_found,
            if entry.cancelled { " (cancelled)" } else { "" }
        );
        if let Some(dir) = &self.config.report_dir {
            let path = dir.join(format!("run-{}.json", entry.id.0));
            if let Err(e) = crate::report::write_run_report(&path, entry.id, &result.summary) {
                warn!("cannot write per-run report {}: {e}", path.display());
            }
        }
        entry.result = Some(result);
    }
}

/// Runs a [`RunService`] over an in-process cluster of `num_workers`
/// multi-run worker loops ([`WorkerService`](crate::WorkerService)), hands
/// a [`ServiceHandle`] to `f`, and tears the whole thing down when `f`
/// returns. The in-process analogue of `c9-coordinator --serve` plus a
/// fleet of `c9-worker` daemons — tests drive multi-tenant scenarios
/// through it without sockets.
pub fn serve_inproc<F, G, R>(
    num_workers: usize,
    config: RunServiceConfig,
    env_factory: F,
    f: G,
) -> R
where
    F: Fn(EnvSpec) -> Arc<dyn c9_vm::Environment> + Send + Sync + Clone,
    G: FnOnce(ServiceHandle) -> R,
{
    use c9_net::{InProcTransport, Transport};
    let endpoints = InProcTransport
        .establish(num_workers.max(1))
        .expect("in-process transport establish failed");
    let mut service = RunService::new(endpoints.coordinator, config);
    for _ in 0..num_workers.max(1) {
        service.add_worker(String::new());
    }
    let handle = service.handle();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for mut endpoint in endpoints.workers {
            let factory = env_factory.clone();
            joins.push(scope.spawn(move || {
                crate::WorkerService::new(&mut endpoint, move |spec| factory(spec)).serve();
            }));
        }
        let driver = scope.spawn(move || service.run());
        let result = f(handle.clone());
        // Idempotent: `f` may have shut the service down already.
        handle.shutdown();
        driver.join().expect("service thread panicked");
        for join in joins {
            join.join().expect("worker thread panicked");
        }
        result
    })
}
