//! Tests of the cluster-parallel engine.
//!
//! The key correctness property (§3.2): dynamic partitioning keeps worker
//! frontiers disjoint while covering the whole execution tree, so the number
//! of explored paths must be the same no matter how many workers explore
//! them.

use crate::{
    Cluster, ClusterConfig, ExportOrder, Job, ReplayCacheConfig, StrategyKind, Worker,
    WorkerConfig, WorkerId,
};
use c9_ir::{AbortKind, BinaryOp, Operand, Program, ProgramBuilder, Width};
use c9_vm::{sysno, NullEnvironment, PathChoice};
use std::sync::Arc;
use std::time::Duration;

/// A program with `n` symbolic bytes and 2^n paths (one branch per byte).
pub(crate) fn branching_program(n: usize) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("branching");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(n as u32));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(n as u32)],
    );
    let mut next = f.create_block();
    for i in 0..n {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        let byte = f.load(Operand::Reg(addr), Width::W8);
        let cond = f.binary(
            BinaryOp::Ult,
            Operand::Reg(byte),
            Operand::byte(32 + i as u8),
        );
        let then_bb = f.create_block();
        f.branch(Operand::Reg(cond), then_bb, next);
        f.switch_to(then_bb);
        f.jump(next);
        f.switch_to(next);
        if i + 1 < n {
            next = f.create_block();
        }
    }
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

/// A program that crashes only for one specific 2-byte input.
fn crashing_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(2));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(2)],
    );
    let b0 = f.load(Operand::Reg(buf), Width::W8);
    let addr1 = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(1));
    let b1 = f.load(Operand::Reg(addr1), Width::W8);
    let is_b = f.binary(BinaryOp::Eq, Operand::Reg(b0), Operand::byte(b'B'));
    let is_u = f.binary(BinaryOp::Eq, Operand::Reg(b1), Operand::byte(b'U'));
    let both = f.binary(BinaryOp::And, Operand::Reg(is_b), Operand::Reg(is_u));
    let crash_bb = f.create_block();
    let ok_bb = f.create_block();
    f.branch(Operand::Reg(both), crash_bb, ok_bb);
    f.switch_to(crash_bb);
    f.abort(AbortKind::Crash, "segfault");
    f.switch_to(ok_bb);
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

fn run_cluster(program: Program, workers: usize, config: ClusterConfig) -> crate::ClusterRunResult {
    let cluster = Cluster::new(
        Arc::new(program),
        Arc::new(NullEnvironment),
        ClusterConfig {
            num_workers: workers,
            ..config
        },
    );
    cluster.run()
}

fn default_config() -> ClusterConfig {
    ClusterConfig {
        time_limit: Some(Duration::from_secs(30)),
        status_interval: Duration::from_millis(2),
        balance_interval: Duration::from_millis(5),
        sample_interval: Duration::from_millis(20),
        quantum: 2_000,
        ..ClusterConfig::default()
    }
}

#[test]
fn single_worker_cluster_explores_all_paths() {
    let result = run_cluster(branching_program(4), 1, default_config());
    assert!(result.summary.exhausted, "run did not exhaust the tree");
    assert_eq!(result.summary.paths_completed(), 16);
}

#[test]
fn path_count_is_independent_of_worker_count() {
    let expected = 1u64 << 5;
    for workers in [1usize, 2, 4] {
        let result = run_cluster(branching_program(5), workers, default_config());
        assert!(
            result.summary.exhausted,
            "{workers}-worker run did not exhaust"
        );
        assert_eq!(
            result.summary.paths_completed(),
            expected,
            "wrong number of paths with {workers} workers"
        );
        assert_eq!(result.summary.worker_stats.len(), workers);
    }
}

#[test]
fn multi_worker_cluster_transfers_jobs_and_does_replay_work() {
    let mut config = default_config();
    // A deeper tree and small quanta so that load balancing has a chance to
    // move work before the first worker finishes everything on its own.
    config.quantum = 300;
    config.status_interval = Duration::from_millis(1);
    config.balance_interval = Duration::from_millis(1);
    let result = run_cluster(branching_program(9), 3, config);
    assert!(result.summary.exhausted);
    assert_eq!(result.summary.paths_completed(), 512);
    // With more than one worker, some jobs must have moved and been replayed.
    assert!(
        result.summary.jobs_transferred() > 0,
        "no jobs were transferred between workers"
    );
    assert!(
        result.summary.replay_instructions() > 0,
        "job materialization should count as replay work"
    );
    // Replays never diverge thanks to the deterministic per-state allocator.
    for w in &result.summary.worker_stats {
        assert_eq!(w.replay_divergences, 0);
    }
}

#[test]
fn bug_is_found_regardless_of_worker_count() {
    for workers in [1usize, 3] {
        let mut config = default_config();
        config.worker.generate_test_cases = true;
        let result = run_cluster(crashing_program(), workers, config);
        assert!(result.summary.exhausted);
        assert_eq!(result.summary.bugs_found, 1, "workers = {workers}");
        let bug = &result.bugs[0];
        let bytes = bug.bytes_with_prefix("sym0");
        assert_eq!(bytes, vec![b'B', b'U']);
    }
}

#[test]
fn coverage_reaches_one_on_exhaustive_run() {
    let result = run_cluster(branching_program(3), 2, default_config());
    assert!(result.summary.exhausted);
    assert!(
        result.summary.coverage_ratio() > 0.9,
        "coverage {:.2} too low",
        result.summary.coverage_ratio()
    );
}

#[test]
fn time_limit_stops_an_unbounded_run() {
    // A wide program (2^16 paths) with a very short time limit: the run must
    // stop quickly and report that it did not exhaust.
    let mut config = default_config();
    config.time_limit = Some(Duration::from_millis(300));
    let result = run_cluster(branching_program(16), 2, config);
    assert!(!result.summary.exhausted || result.summary.paths_completed() == 1 << 16);
    assert!(result.summary.elapsed < Duration::from_secs(10));
}

#[test]
fn static_partitioning_still_completes_small_trees() {
    let mut config = default_config();
    config.static_partition = true;
    let result = run_cluster(branching_program(5), 3, config);
    assert!(result.summary.exhausted);
    assert_eq!(result.summary.paths_completed(), 32);
}

#[test]
fn timeline_samples_are_recorded() {
    let result = run_cluster(branching_program(6), 2, default_config());
    assert!(!result.summary.timeline.is_empty());
    let last = result.summary.timeline.last().unwrap();
    assert!(last.useful_instructions > 0);
}

#[test]
fn dfs_strategy_also_exhausts() {
    let mut config = default_config();
    config.worker.strategy = StrategyKind::Dfs;
    let result = run_cluster(branching_program(4), 2, config);
    assert!(result.summary.exhausted);
    assert_eq!(result.summary.paths_completed(), 16);
}

// ---------------------------------------------------------------------------
// Worker-level unit tests (no threads).
// ---------------------------------------------------------------------------

#[test]
fn worker_export_import_roundtrip_preserves_completeness() {
    let program = Arc::new(branching_program(4));
    let env = Arc::new(NullEnvironment);
    let mut w1 = Worker::new(
        WorkerId(0),
        program.clone(),
        env.clone(),
        WorkerConfig::default(),
    );
    w1.seed_root();

    // Let the first worker expand until it has a few frontier candidates,
    // then move half of them to a second worker.
    for _ in 0..1000 {
        if w1.queue_length() >= 4 {
            break;
        }
        w1.run_quantum(10);
    }
    let before_queue = w1.queue_length();
    assert!(before_queue >= 4, "worker did not expand its frontier");
    let count = (before_queue / 2).max(1);
    let jobs: Vec<Job> = w1.export_jobs(count);
    assert!(!jobs.is_empty());
    assert_eq!(w1.stats.jobs_sent, jobs.len() as u64);

    let mut w2 = Worker::new(WorkerId(1), program, env, WorkerConfig::default());
    w2.import_jobs(jobs);
    assert_eq!(w2.stats.jobs_received, w2.queue_length());

    // Both workers run to completion; together they must find all 16 paths.
    for _ in 0..10_000 {
        if !w1.has_work() && !w2.has_work() {
            break;
        }
        w1.run_quantum(1_000);
        w2.run_quantum(1_000);
    }
    assert!(!w1.has_work() && !w2.has_work());
    let total = w1.stats.paths_completed + w2.stats.paths_completed;
    assert_eq!(total, 16);
    // The second worker had to replay the received paths.
    assert!(w2.stats.replay_instructions > 0);
    assert!(w2.stats.materializations > 0);
    assert_eq!(w1.stats.replay_divergences + w2.stats.replay_divergences, 0);
}

#[test]
fn worker_tree_tracks_node_lifecycle_during_exploration() {
    let program = Arc::new(branching_program(3));
    let mut w = Worker::new(
        WorkerId(0),
        program,
        Arc::new(NullEnvironment),
        WorkerConfig::default(),
    );
    w.seed_root();
    while w.has_work() {
        w.run_quantum(1_000);
    }
    let (candidates, _fences, dead) = w.tree.life_counts();
    assert_eq!(candidates, 0, "all candidates must be consumed");
    assert!(dead >= 8, "every explored node must end up dead");
    assert_eq!(w.stats.paths_completed, 8);
}

#[test]
fn corrupted_job_diverges_without_panic_or_wrong_exploration() {
    let program = Arc::new(branching_program(3));
    let mut w = Worker::new(
        WorkerId(0),
        program,
        Arc::new(NullEnvironment),
        WorkerConfig::default(),
    );
    // Two deliberately corrupted jobs: one claims a multi-way decision at a
    // symbolic two-way branch, the other records more decisions than the
    // program has along that path.
    w.import_jobs(vec![
        Job::new(vec![
            PathChoice::Alt {
                chosen: 7,
                total: 9,
            },
            PathChoice::Branch(true),
        ]),
        Job::new(vec![PathChoice::Branch(true); 12]),
    ]);
    while w.has_work() {
        w.run_quantum(10_000);
    }
    // Both replays diverged: reported, counted, and dropped — never
    // explored as (wrong) paths, never counted as completed ones.
    assert_eq!(w.stats.replay_divergences, 2);
    assert_eq!(w.stats.materializations, 2);
    assert_eq!(w.stats.paths_completed, 0);
    assert_eq!(w.stats.bugs_found, 0);
    let (candidates, _fences, dead) = w.tree.life_counts();
    assert_eq!(candidates, 0, "diverged jobs must leave no candidates");
    assert_eq!(dead, 2, "diverged nodes must be marked dead");
    // The divergence counter reaches the coordinator with every report.
    assert_eq!(w.report_stats().replay_divergences, 2);
}

#[test]
fn divergence_past_the_materialization_budget_is_still_dropped() {
    // A concrete trunk longer than the 1M-instruction materialization
    // budget: replay runs out of budget mid-trunk, the still-replaying
    // state continues in normal execution slices, and only *there* reaches
    // the symbolic branch where the corrupted decision (an Alt at a
    // two-way branch) diverges. The slice loop must classify it exactly
    // like the replay engine: counted, dropped, never a completed path.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(1));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(1)],
    );
    let counter = f.copy(Operand::word(0));
    let loop_bb = f.create_block();
    let done_bb = f.create_block();
    f.jump(loop_bb);
    f.switch_to(loop_bb);
    let next = f.binary(BinaryOp::Add, Operand::Reg(counter), Operand::word(1));
    f.assign_to(counter, c9_ir::Rvalue::Use(Operand::Reg(next)));
    let more = f.binary(BinaryOp::Ult, Operand::Reg(counter), Operand::word(300_000));
    f.branch(Operand::Reg(more), loop_bb, done_bb);
    f.switch_to(done_bb);
    let byte = f.load(Operand::Reg(buf), Width::W8);
    let cond = f.binary(BinaryOp::Ult, Operand::Reg(byte), Operand::byte(64));
    let then_bb = f.create_block();
    let else_bb = f.create_block();
    f.branch(Operand::Reg(cond), then_bb, else_bb);
    f.switch_to(then_bb);
    f.ret(Some(Operand::word(0)));
    f.switch_to(else_bb);
    f.ret(Some(Operand::word(1)));
    let main = f.finish();
    pb.set_entry(main);

    let mut w = Worker::new(
        WorkerId(0),
        Arc::new(pb.finish()),
        Arc::new(NullEnvironment),
        WorkerConfig::default(),
    );
    w.import_jobs(vec![Job::new(vec![PathChoice::Alt {
        chosen: 1,
        total: 3,
    }])]);
    for _ in 0..100_000 {
        if !w.has_work() {
            break;
        }
        w.run_quantum(10_000);
    }
    assert!(!w.has_work());
    assert_eq!(w.stats.replay_divergences, 1);
    assert_eq!(w.stats.paths_completed, 0, "divergence counted as a path");
    assert_eq!(w.stats.bugs_found, 0);
    assert!(
        w.stats.replay_instructions > 1_000_000,
        "the trunk must outlive the materialization budget \
         (executed {} replay instructions)",
        w.stats.replay_instructions
    );
}

#[test]
fn export_prefers_virtual_jobs_over_materialized_states() {
    let program = Arc::new(branching_program(6));
    let env = Arc::new(NullEnvironment);
    let mut w = Worker::new(WorkerId(0), program, env, WorkerConfig::default());
    w.seed_root();
    for _ in 0..1000 {
        if w.queue_length() >= 4 {
            break;
        }
        w.run_quantum(10);
    }
    let materialized_before = w.frontier_snapshot().len() as u64;
    // Hand the worker three virtual jobs, then ask it to shed three: the
    // virtual jobs must go back out — this worker paid no replay for them
    // — leaving every materialized state (whose replay was already paid)
    // in place.
    let foreign: Vec<Job> = vec![
        Job::new(vec![PathChoice::Branch(true); 5]),
        Job::new(vec![PathChoice::Branch(false); 5]),
        Job::new(vec![
            PathChoice::Branch(true),
            PathChoice::Branch(false),
            PathChoice::Branch(true),
        ]),
    ];
    w.import_jobs(foreign.clone());
    let materializations_before = w.stats.materializations;
    let exported = w.export_jobs(3);
    let mut exported_sorted = exported.clone();
    exported_sorted.sort();
    let mut foreign_sorted = foreign;
    foreign_sorted.sort();
    assert_eq!(
        exported_sorted, foreign_sorted,
        "virtual jobs must ship first"
    );
    assert_eq!(w.stats.materializations, materializations_before);
    assert_eq!(w.frontier_snapshot().len() as u64, materialized_before);
}

#[test]
fn shallowest_first_export_reduces_receiver_replay() {
    // Identical deterministic expansions; the only difference is the
    // export heuristic. Shipping shallow candidates means short replay
    // paths at the receiver, so total replay work must drop — at an
    // unchanged exhaustive path total.
    let run = |order: ExportOrder| -> (u64, u64) {
        let program = Arc::new(branching_program(9));
        let env = Arc::new(NullEnvironment);
        let config = WorkerConfig {
            export_order: order,
            // Cache off to isolate the heuristic's effect.
            replay_cache: ReplayCacheConfig::DISABLED,
            ..WorkerConfig::default()
        };
        let mut w1 = Worker::new(WorkerId(0), program.clone(), env.clone(), config);
        w1.seed_root();
        for _ in 0..10_000 {
            if w1.queue_length() >= 12 {
                break;
            }
            w1.run_quantum(10);
        }
        assert!(w1.queue_length() >= 12, "frontier did not expand");
        let jobs = w1.export_jobs(6);
        assert_eq!(jobs.len(), 6);
        let mut w2 = Worker::new(WorkerId(1), program, env, config);
        w2.import_jobs(jobs);
        for _ in 0..100_000 {
            if !w1.has_work() && !w2.has_work() {
                break;
            }
            w1.run_quantum(10_000);
            w2.run_quantum(10_000);
        }
        assert!(!w1.has_work() && !w2.has_work());
        (
            w1.stats.paths_completed + w2.stats.paths_completed,
            w1.stats.replay_instructions + w2.stats.replay_instructions,
        )
    };
    let (paths_deep, replay_deep) = run(ExportOrder::Deepest);
    let (paths_shallow, replay_shallow) = run(ExportOrder::Shallowest);
    assert_eq!(paths_deep, 512);
    assert_eq!(paths_shallow, 512, "heuristic must not change the tree");
    assert!(
        replay_shallow < replay_deep,
        "shallowest-first export must cost less replay \
         (shallow {replay_shallow} vs deep {replay_deep})"
    );
}

#[test]
fn anchor_cache_skips_shared_trunk_replay() {
    // One worker expands a deep tree and sheds a large sibling-heavy
    // batch; two identical receivers materialize it, one with the
    // prefix-anchor cache and one replaying every job from the root. The
    // cached receiver must explore the exact same tree for a fraction of
    // the replay work.
    let program = Arc::new(branching_program(13));
    let env = Arc::new(NullEnvironment);
    let mut source = Worker::new(
        WorkerId(0),
        program.clone(),
        env.clone(),
        WorkerConfig {
            // Shed the deep end of the frontier: long sibling-heavy paths,
            // the worst case for naive per-job root replay.
            export_order: ExportOrder::Deepest,
            ..WorkerConfig::default()
        },
    );
    source.seed_root();
    for _ in 0..100_000 {
        if source.queue_length() >= 128 {
            break;
        }
        source.run_quantum(100);
    }
    let jobs = source.export_jobs(96);
    assert_eq!(jobs.len(), 96);

    let receive = |cache: ReplayCacheConfig| -> (u64, u64, u64, u64) {
        let config = WorkerConfig {
            replay_cache: cache,
            ..WorkerConfig::default()
        };
        let mut w = Worker::new(WorkerId(1), program.clone(), env.clone(), config);
        w.import_jobs(jobs.clone());
        for _ in 0..1_000_000 {
            if !w.has_work() {
                break;
            }
            w.run_quantum(10_000);
        }
        assert!(!w.has_work());
        (
            w.stats.paths_completed,
            w.stats.replay_instructions,
            w.stats.replay_saved_instructions,
            w.stats.anchor_hits,
        )
    };
    let (paths_off, replay_off, saved_off, _) = receive(ReplayCacheConfig::DISABLED);
    let (paths_on, replay_on, saved_on, hits_on) = receive(ReplayCacheConfig::default());
    eprintln!(
        "anchor cache replay drop: {replay_off} -> {replay_on} \
         ({:.1}x, {saved_on} saved, {hits_on} hits)",
        replay_off as f64 / replay_on.max(1) as f64
    );
    assert_eq!(paths_on, paths_off, "cache changed the explored tree");
    assert_eq!(saved_off, 0);
    assert!(hits_on > 0, "no anchor was ever hit");
    assert!(saved_on > 0, "no replay work was saved");
    assert!(
        replay_on * 3 <= replay_off,
        "expected >=3x replay drop: {replay_on} (cache on) vs {replay_off} (off)"
    );
    // The executed+saved total accounts for exactly the work the naive
    // replay performs.
    assert_eq!(replay_on + saved_on, replay_off);
}

#[test]
fn exporting_worker_never_gives_away_its_last_candidate() {
    let program = Arc::new(branching_program(3));
    let mut w = Worker::new(
        WorkerId(0),
        program,
        Arc::new(NullEnvironment),
        WorkerConfig::default(),
    );
    w.seed_root();
    // Before any exploration there is exactly one candidate (the root); an
    // export request must not take it.
    let jobs = w.export_jobs(10);
    assert!(jobs.is_empty());
    assert!(w.has_work());
}
