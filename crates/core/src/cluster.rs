//! The cluster harness: workers coordinated by a load balancer over a
//! pluggable transport.
//!
//! This reproduces the deployment of §3.3 and §6 of the paper: every worker
//! is an independent symbolic execution engine with its own solver and state
//! store (shared-nothing); workers exchange jobs only as serialized path
//! encodings; the load balancer sees only queue lengths and coverage bit
//! vectors. The worker and balancer loops are written against the
//! [`WorkerEndpoint`] / [`CoordinatorEndpoint`] traits of `c9-net`, so the
//! same code runs over in-process channels ([`InProcTransport`], the
//! default for [`Cluster::run`]) or TCP sockets spanning OS processes
//! (`TcpTransport` with the `c9-worker` / `c9-coordinator` binaries) —
//! wall-clock speedups come from real parallelism in both cases.

use crate::balancer::{BalancerConfig, LoadBalancer, TransferRequest};
use crate::stats::{ClusterSummary, IntervalSample};
use crate::worker::{Worker, WorkerConfig};
use c9_ir::Program;
use c9_net::{
    Control, CoordinatorEndpoint, EnvSpec, FinalReport, InProcTransport, JobBatch, JobTree,
    RunSpec, StatusReport, Transport, WorkerEndpoint, WorkerId,
};
use c9_vm::{CoverageSet, Environment, TestCase};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub num_workers: usize,
    /// Per-worker configuration.
    pub worker: WorkerConfig,
    /// Stop after this much wall-clock time (None = run to exhaustion).
    pub time_limit: Option<Duration>,
    /// Stop once global line coverage reaches this fraction.
    pub coverage_target: Option<f64>,
    /// Stop once this many paths have completed across the cluster.
    pub max_total_paths: Option<u64>,
    /// How often workers report status to the load balancer.
    pub status_interval: Duration,
    /// How often the load balancer runs the balancing algorithm.
    pub balance_interval: Duration,
    /// How often a timeline sample is recorded (the paper's "10-second
    /// buckets", scaled down).
    pub sample_interval: Duration,
    /// Balancing algorithm parameters.
    pub balancer: BalancerConfig,
    /// Disable load balancing after this much time (the Fig. 13 ablation).
    pub disable_lb_after: Option<Duration>,
    /// Only balance until every worker has received work once, then never
    /// again (static partitioning ablation, §2).
    pub static_partition: bool,
    /// Instructions per worker quantum between message-handling points.
    pub quantum: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            num_workers: 2,
            worker: WorkerConfig::default(),
            time_limit: None,
            coverage_target: None,
            max_total_paths: None,
            status_interval: Duration::from_millis(10),
            balance_interval: Duration::from_millis(20),
            sample_interval: Duration::from_millis(100),
            balancer: BalancerConfig::default(),
            disable_lb_after: None,
            static_partition: false,
            quantum: 20_000,
        }
    }
}

impl ClusterConfig {
    /// Builds the wire run spec a remote worker needs to participate in a
    /// run of `program` under this configuration. `epoch` must be unique
    /// among the runs the target worker daemons serve (a timestamp or
    /// counter); it fences this run's messages off from stale in-flight
    /// frames of earlier runs.
    pub fn run_spec(
        &self,
        program: &Program,
        env: EnvSpec,
        worker: WorkerId,
        epoch: u64,
    ) -> RunSpec {
        RunSpec {
            program: program.clone(),
            env,
            executor: self.worker.executor,
            seed: self.worker.seed,
            strategy: self.worker.strategy,
            generate_test_cases: self.worker.generate_test_cases,
            export_deepest: self.worker.export_deepest,
            quantum: self.quantum,
            status_interval: self.status_interval,
            seed_root: worker.0 == 0,
            epoch,
        }
    }
}

/// The outcome of a cluster run, including generated test cases.
#[derive(Clone, Debug, Default)]
pub struct ClusterRunResult {
    /// Aggregate statistics and timeline.
    pub summary: ClusterSummary,
    /// Test cases from all workers (when enabled in the worker config).
    pub test_cases: Vec<TestCase>,
    /// Bug-exposing test cases from all workers.
    pub bugs: Vec<TestCase>,
}

/// How long the coordinator waits for final reports after issuing `Stop`
/// when the workers are remote processes that may have died.
const REMOTE_FINAL_TIMEOUT: Duration = Duration::from_secs(30);

/// Final-report wait for locally hosted workers: effectively unbounded,
/// because a local worker always either sends its final report or drops its
/// endpoint (ending the wait via disconnect) — reports are never lost.
const LOCAL_FINAL_TIMEOUT: Duration = Duration::from_secs(60 * 60 * 24);

/// A Cloud9 cluster: one program, one environment model, N workers.
pub struct Cluster {
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: ClusterConfig,
}

impl Cluster {
    /// Creates a cluster for `program` with the given environment model.
    pub fn new(program: Arc<Program>, env: Arc<dyn Environment>, config: ClusterConfig) -> Cluster {
        Cluster {
            program,
            env,
            config,
        }
    }

    /// Runs the cluster on in-process channels until a stopping condition is
    /// met and returns the aggregated results.
    pub fn run(&self) -> ClusterRunResult {
        self.run_with_transport(InProcTransport)
    }

    /// Runs the cluster over any transport that hosts the worker endpoints
    /// locally (in-process channels, or loopback TCP where every byte
    /// crosses the kernel's network stack). One thread is spawned per
    /// worker; the coordinator runs on the calling thread.
    pub fn run_with_transport<T: Transport>(&self, transport: T) -> ClusterRunResult
    where
        T::WorkerEnd: Send,
    {
        let n = self.config.num_workers.max(1);
        let start = Instant::now();
        let endpoints = transport.establish(n).expect("transport establish failed");
        let mut coordinator = endpoints.coordinator;
        let workers = endpoints.workers;
        assert_eq!(
            workers.len(),
            n,
            "run_with_transport needs a transport with locally hosted workers; \
             use run_coordinator for remote daemons"
        );

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (i, mut endpoint) in workers.into_iter().enumerate() {
                let program = self.program.clone();
                let env = self.env.clone();
                let config = self.config.clone();
                handles.push(scope.spawn(move || {
                    run_worker_loop(
                        &mut endpoint,
                        program,
                        env,
                        config.worker,
                        config.quantum,
                        config.status_interval,
                        i == 0,
                    );
                }));
            }
            let result = self.drive(&mut coordinator, start, n, LOCAL_FINAL_TIMEOUT);
            for handle in handles {
                handle.join().expect("worker thread panicked");
            }
            result
        })
    }

    /// Drives a cluster whose workers live in other processes: runs the
    /// balancing loop against the coordinator endpoint (the workers must
    /// already have received their run specs) and aggregates the results.
    pub fn run_coordinator<C: CoordinatorEndpoint>(&self, coordinator: &mut C) -> ClusterRunResult {
        let n = coordinator.num_workers().max(1);
        self.drive(coordinator, Instant::now(), n, REMOTE_FINAL_TIMEOUT)
    }

    /// The balancing loop plus final-report aggregation.
    fn drive<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        start: Instant,
        n: usize,
        final_timeout: Duration,
    ) -> ClusterRunResult {
        let summary = self.balancer_loop(endpoint, start, n);
        let mut result = ClusterRunResult {
            summary,
            ..ClusterRunResult::default()
        };

        // Collect one final report per worker (they arrive in any order).
        let deadline = Instant::now() + final_timeout;
        let mut finals: Vec<Option<FinalReport>> = (0..n).map(|_| None).collect();
        let mut collected = 0;
        while collected < n {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let Some(report) = endpoint.recv_final(deadline - now) else {
                break;
            };
            let w = report.worker.index();
            if w < n && finals[w].is_none() {
                finals[w] = Some(report);
                collected += 1;
            }
        }
        for report in finals.into_iter().flatten() {
            result.summary.worker_stats.push(report.stats);
            result.summary.coverage.merge(&report.coverage);
            result.summary.bugs_found += report.bugs.len() as u64;
            result.test_cases.extend(report.test_cases);
            result.bugs.extend(report.bugs);
        }
        result.summary.num_workers = n;
        result.summary.elapsed = start.elapsed();
        result
    }

    #[allow(clippy::too_many_lines)]
    fn balancer_loop<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        start: Instant,
        n: usize,
    ) -> ClusterSummary {
        let mut lb = LoadBalancer::new(n, self.program.loc(), self.config.balancer);
        let mut idle = vec![false; n];
        let mut sent_totals = vec![0u64; n];
        let mut received_totals = vec![0u64; n];
        let mut useful_totals = vec![0u64; n];
        let mut paths_totals = vec![0u64; n];
        let mut last_balance = Instant::now();
        let mut last_sample = Instant::now();
        let mut transferred_at_last_sample = 0u64;
        let mut everyone_had_work = vec![false; n];
        let mut summary = ClusterSummary {
            num_workers: n,
            coverage: CoverageSet::new(self.program.loc()),
            ..ClusterSummary::default()
        };

        loop {
            // Drain status reports (block briefly for the first one).
            let mut got_any = false;
            while let Some(report) = if got_any {
                endpoint.recv_status(Duration::ZERO)
            } else {
                endpoint.recv_status(Duration::from_millis(2))
            } {
                got_any = true;
                let w = report.worker.index();
                if w >= n {
                    continue;
                }
                idle[w] = report.idle;
                sent_totals[w] = report.stats.jobs_sent;
                received_totals[w] = report.stats.jobs_received;
                useful_totals[w] = report.stats.useful_instructions;
                paths_totals[w] = report.stats.paths_completed;
                if report.queue_length > 0 {
                    everyone_had_work[w] = true;
                }
                let global = lb.report(report.worker, report.queue_length, &report.coverage);
                let _ = endpoint.send_control(report.worker, Control::GlobalCoverage(global));
            }

            let elapsed = start.elapsed();

            // Stopping conditions.
            let mut goal_reached = false;
            let mut exhausted = false;
            if let Some(target) = self.config.coverage_target {
                if lb.global_coverage().ratio() >= target {
                    goal_reached = true;
                }
            }
            if let Some(max_paths) = self.config.max_total_paths {
                if paths_totals.iter().sum::<u64>() >= max_paths {
                    goal_reached = true;
                }
            }
            let in_flight_settled =
                sent_totals.iter().sum::<u64>() == received_totals.iter().sum::<u64>();
            if idle.iter().all(|i| *i) && lb.all_idle() && in_flight_settled {
                exhausted = true;
                goal_reached = true;
            }
            let timed_out = self
                .config
                .time_limit
                .map(|limit| elapsed >= limit)
                .unwrap_or(false);

            // Timeline sampling.
            if last_sample.elapsed() >= self.config.sample_interval || goal_reached || timed_out {
                let transferred_now = lb.total_transferred();
                summary.timeline.push(IntervalSample {
                    elapsed,
                    states_transferred: transferred_now - transferred_at_last_sample,
                    total_states: lb.queue_lengths().iter().sum(),
                    useful_instructions: useful_totals.iter().sum(),
                    coverage: lb.global_coverage().ratio(),
                });
                transferred_at_last_sample = transferred_now;
                last_sample = Instant::now();
            }

            if goal_reached || timed_out {
                summary.goal_reached = goal_reached;
                summary.exhausted = exhausted;
                break;
            }

            // Load balancing.
            let lb_disabled_by_time = self
                .config
                .disable_lb_after
                .map(|d| elapsed >= d)
                .unwrap_or(false);
            let lb_disabled_static =
                self.config.static_partition && everyone_had_work.iter().all(|w| *w);
            if !lb_disabled_by_time
                && !lb_disabled_static
                && last_balance.elapsed() >= self.config.balance_interval
            {
                for TransferRequest {
                    source,
                    destination,
                    count,
                } in lb.balance()
                {
                    let _ = endpoint.send_control(source, Control::Balance { destination, count });
                }
                last_balance = Instant::now();
            }
        }

        summary.coverage.merge(lb.global_coverage());
        for w in 0..n {
            let _ = endpoint.send_control(WorkerId(w as u32), Control::Stop);
        }
        summary
    }
}

/// The worker event loop, shared by every transport: handle control
/// messages, import job batches from peers, explore in quanta, report
/// status, and ship a final report at shutdown.
///
/// `seed_root` must be true for exactly one worker of a fresh run (worker 0
/// receives the seed job: the entire execution tree).
pub fn run_worker_loop<E: WorkerEndpoint>(
    endpoint: &mut E,
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: WorkerConfig,
    quantum: u64,
    status_interval: Duration,
    seed_root: bool,
) {
    let id = endpoint.id();
    let mut worker = Worker::new(id, program, env, config);
    if seed_root {
        worker.seed_root();
    }
    let mut last_status = Instant::now() - status_interval;

    loop {
        // Handle control messages.
        let mut stop = false;
        while let Some(msg) = endpoint.try_recv_control() {
            match msg {
                Control::Stop => {
                    stop = true;
                    break;
                }
                Control::GlobalCoverage(global) => worker.merge_global_coverage(&global),
                Control::Balance { destination, count } => {
                    let jobs = worker.export_jobs(count);
                    if !jobs.is_empty() {
                        let encoded = JobTree::from_jobs(&jobs).encode();
                        worker.stats.job_bytes_sent += encoded.len() as u64;
                        let _ = endpoint.send_jobs(
                            destination,
                            JobBatch {
                                source: id,
                                epoch: 0, // stamped by the transport
                                encoded,
                            },
                        );
                    }
                }
            }
        }
        if stop {
            break;
        }

        // Receive jobs from peers.
        while let Some(batch) = endpoint.try_recv_jobs() {
            if let Some(tree) = JobTree::decode(&batch.encoded) {
                worker.import_jobs(tree.to_jobs());
            }
        }

        // Explore.
        let idle = !worker.has_work();
        if !idle {
            worker.run_quantum(quantum);
        } else {
            std::thread::sleep(Duration::from_micros(500));
        }

        // Report status.
        if last_status.elapsed() >= status_interval {
            let report = StatusReport {
                worker: id,
                queue_length: worker.queue_length(),
                coverage: worker.coverage_snapshot(),
                stats: worker.stats.clone(),
                idle: !worker.has_work(),
            };
            if endpoint.send_status(report).is_err() {
                break;
            }
            last_status = Instant::now();
        }
    }

    let _ = endpoint.send_final(FinalReport {
        worker: id,
        stats: worker.stats.clone(),
        coverage: worker.coverage_snapshot(),
        test_cases: std::mem::take(&mut worker.test_cases),
        bugs: std::mem::take(&mut worker.bugs),
    });
}

/// Runs the worker side of a run spec received over the wire. The caller
/// maps [`RunSpec::env`] to a concrete environment (the trait object cannot
/// cross the wire) and supplies the endpoint.
pub fn run_worker_from_spec<E: WorkerEndpoint>(
    endpoint: &mut E,
    spec: RunSpec,
    env: Arc<dyn Environment>,
) {
    let config = WorkerConfig {
        executor: spec.executor,
        seed: spec.seed,
        strategy: spec.strategy,
        generate_test_cases: spec.generate_test_cases,
        export_deepest: spec.export_deepest,
    };
    run_worker_loop(
        endpoint,
        Arc::new(spec.program),
        env,
        config,
        spec.quantum,
        spec.status_interval,
        spec.seed_root,
    );
}
