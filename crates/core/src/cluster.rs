//! The cluster harness: workers on OS threads coordinated by a load balancer.
//!
//! This reproduces the deployment of §3.3 and §6 of the paper at the scale of
//! one machine: every worker is an independent symbolic execution engine with
//! its own solver and state store (shared-nothing); workers exchange jobs
//! only as serialized path encodings over channels; the load balancer sees
//! only queue lengths and coverage bit vectors. Wall-clock speedups therefore
//! come from real parallelism, exactly as in the paper's cluster — only the
//! transport (in-process channels instead of TCP) differs.

use crate::balancer::{BalancerConfig, LoadBalancer, TransferRequest, WorkerId};
use crate::job::JobTree;
use crate::stats::{ClusterSummary, IntervalSample, WorkerStats};
use crate::worker::{Worker, WorkerConfig};
use c9_ir::Program;
use c9_vm::{CoverageSet, Environment, TestCase};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub num_workers: usize,
    /// Per-worker configuration.
    pub worker: WorkerConfig,
    /// Stop after this much wall-clock time (None = run to exhaustion).
    pub time_limit: Option<Duration>,
    /// Stop once global line coverage reaches this fraction.
    pub coverage_target: Option<f64>,
    /// Stop once this many paths have completed across the cluster.
    pub max_total_paths: Option<u64>,
    /// How often workers report status to the load balancer.
    pub status_interval: Duration,
    /// How often the load balancer runs the balancing algorithm.
    pub balance_interval: Duration,
    /// How often a timeline sample is recorded (the paper's "10-second
    /// buckets", scaled down).
    pub sample_interval: Duration,
    /// Balancing algorithm parameters.
    pub balancer: BalancerConfig,
    /// Disable load balancing after this much time (the Fig. 13 ablation).
    pub disable_lb_after: Option<Duration>,
    /// Only balance until every worker has received work once, then never
    /// again (static partitioning ablation, §2).
    pub static_partition: bool,
    /// Instructions per worker quantum between message-handling points.
    pub quantum: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            num_workers: 2,
            worker: WorkerConfig::default(),
            time_limit: None,
            coverage_target: None,
            max_total_paths: None,
            status_interval: Duration::from_millis(10),
            balance_interval: Duration::from_millis(20),
            sample_interval: Duration::from_millis(100),
            balancer: BalancerConfig::default(),
            disable_lb_after: None,
            static_partition: false,
            quantum: 20_000,
        }
    }
}

/// Control messages from the load balancer to a worker.
enum Control {
    /// Transfer `count` jobs to worker `destination`.
    Balance { destination: WorkerId, count: u64 },
    /// The updated global coverage bit vector.
    GlobalCoverage(CoverageSet),
    /// Stop and report final results.
    Stop,
}

/// Status report from a worker to the load balancer.
struct StatusReport {
    worker: WorkerId,
    queue_length: u64,
    coverage: CoverageSet,
    stats: WorkerStats,
    idle: bool,
}

/// Final report from a worker at shutdown.
struct FinalReport {
    stats: WorkerStats,
    coverage: CoverageSet,
    test_cases: Vec<TestCase>,
    bugs: Vec<TestCase>,
}

/// The outcome of a cluster run, including generated test cases.
#[derive(Clone, Debug, Default)]
pub struct ClusterRunResult {
    /// Aggregate statistics and timeline.
    pub summary: ClusterSummary,
    /// Test cases from all workers (when enabled in the worker config).
    pub test_cases: Vec<TestCase>,
    /// Bug-exposing test cases from all workers.
    pub bugs: Vec<TestCase>,
}

/// A Cloud9 cluster: one program, one environment model, N workers.
pub struct Cluster {
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: ClusterConfig,
}

impl Cluster {
    /// Creates a cluster for `program` with the given environment model.
    pub fn new(program: Arc<Program>, env: Arc<dyn Environment>, config: ClusterConfig) -> Cluster {
        Cluster {
            program,
            env,
            config,
        }
    }

    /// Runs the cluster until a stopping condition is met and returns the
    /// aggregated results.
    pub fn run(&self) -> ClusterRunResult {
        let n = self.config.num_workers.max(1);
        let start = Instant::now();

        // Channels: LB -> worker control, worker -> worker jobs, worker -> LB status.
        let mut control_txs = Vec::with_capacity(n);
        let mut control_rxs = Vec::with_capacity(n);
        let mut job_txs: Vec<Sender<Vec<u8>>> = Vec::with_capacity(n);
        let mut job_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (ctx, crx) = unbounded::<Control>();
            control_txs.push(ctx);
            control_rxs.push(Some(crx));
            let (jtx, jrx) = unbounded::<Vec<u8>>();
            job_txs.push(jtx);
            job_rxs.push(Some(jrx));
        }
        let (status_tx, status_rx) = unbounded::<StatusReport>();

        let result = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for i in 0..n {
                let control_rx = control_rxs[i].take().expect("control rx");
                let job_rx = job_rxs[i].take().expect("job rx");
                let job_txs = job_txs.clone();
                let status_tx = status_tx.clone();
                let program = self.program.clone();
                let env = self.env.clone();
                let config = self.config.clone();
                handles.push(scope.spawn(move || {
                    worker_thread(
                        WorkerId(i as u32),
                        program,
                        env,
                        config,
                        control_rx,
                        job_rx,
                        job_txs,
                        status_tx,
                    )
                }));
            }
            drop(status_tx);

            let summary = self.balancer_loop(start, &control_txs, &status_rx, n);

            let mut result = ClusterRunResult {
                summary,
                ..ClusterRunResult::default()
            };
            for handle in handles {
                let report = handle.join().expect("worker thread panicked");
                result.summary.worker_stats.push(report.stats);
                result.summary.coverage.merge(&report.coverage);
                result.summary.bugs_found += report.bugs.len() as u64;
                result.test_cases.extend(report.test_cases);
                result.bugs.extend(report.bugs);
            }
            result.summary.num_workers = n;
            result.summary.elapsed = start.elapsed();
            result
        });
        result
    }

    #[allow(clippy::too_many_lines)]
    fn balancer_loop(
        &self,
        start: Instant,
        control_txs: &[Sender<Control>],
        status_rx: &Receiver<StatusReport>,
        n: usize,
    ) -> ClusterSummary {
        let mut lb = LoadBalancer::new(n, self.program.loc(), self.config.balancer);
        let mut idle = vec![false; n];
        let mut sent_totals = vec![0u64; n];
        let mut received_totals = vec![0u64; n];
        let mut useful_totals = vec![0u64; n];
        let mut paths_totals = vec![0u64; n];
        let mut last_balance = Instant::now();
        let mut last_sample = Instant::now();
        let mut transferred_at_last_sample = 0u64;
        let mut everyone_had_work = vec![false; n];
        let mut summary = ClusterSummary {
            num_workers: n,
            coverage: CoverageSet::new(self.program.loc()),
            ..ClusterSummary::default()
        };

        loop {
            // Drain status reports (block briefly for the first one).
            let mut got_any = false;
            while let Ok(report) = if got_any {
                status_rx.try_recv().map_err(|_| ())
            } else {
                status_rx
                    .recv_timeout(Duration::from_millis(2))
                    .map_err(|_| ())
            } {
                got_any = true;
                let w = report.worker.0 as usize;
                idle[w] = report.idle;
                sent_totals[w] = report.stats.jobs_sent;
                received_totals[w] = report.stats.jobs_received;
                useful_totals[w] = report.stats.useful_instructions;
                paths_totals[w] = report.stats.paths_completed;
                if report.queue_length > 0 {
                    everyone_had_work[w] = true;
                }
                let global = lb.report(report.worker, report.queue_length, &report.coverage);
                let _ = control_txs[w].send(Control::GlobalCoverage(global));
            }

            let elapsed = start.elapsed();

            // Stopping conditions.
            let mut goal_reached = false;
            let mut exhausted = false;
            if let Some(target) = self.config.coverage_target {
                if lb.global_coverage().ratio() >= target {
                    goal_reached = true;
                }
            }
            if let Some(max_paths) = self.config.max_total_paths {
                if paths_totals.iter().sum::<u64>() >= max_paths {
                    goal_reached = true;
                }
            }
            let in_flight_settled = sent_totals.iter().sum::<u64>() == received_totals.iter().sum::<u64>();
            if idle.iter().all(|i| *i) && lb.all_idle() && in_flight_settled {
                exhausted = true;
                goal_reached = true;
            }
            let timed_out = self
                .config
                .time_limit
                .map(|limit| elapsed >= limit)
                .unwrap_or(false);

            // Timeline sampling.
            if last_sample.elapsed() >= self.config.sample_interval || goal_reached || timed_out {
                let transferred_now = lb.total_transferred();
                summary.timeline.push(IntervalSample {
                    elapsed,
                    states_transferred: transferred_now - transferred_at_last_sample,
                    total_states: lb.queue_lengths().iter().sum(),
                    useful_instructions: useful_totals.iter().sum(),
                    coverage: lb.global_coverage().ratio(),
                });
                transferred_at_last_sample = transferred_now;
                last_sample = Instant::now();
            }

            if goal_reached || timed_out {
                summary.goal_reached = goal_reached;
                summary.exhausted = exhausted;
                break;
            }

            // Load balancing.
            let lb_disabled_by_time = self
                .config
                .disable_lb_after
                .map(|d| elapsed >= d)
                .unwrap_or(false);
            let lb_disabled_static =
                self.config.static_partition && everyone_had_work.iter().all(|w| *w);
            if !lb_disabled_by_time
                && !lb_disabled_static
                && last_balance.elapsed() >= self.config.balance_interval
            {
                for TransferRequest {
                    source,
                    destination,
                    count,
                } in lb.balance()
                {
                    let _ = control_txs[source.0 as usize].send(Control::Balance {
                        destination,
                        count,
                    });
                }
                last_balance = Instant::now();
            }
        }

        summary.coverage.merge(lb.global_coverage());
        for tx in control_txs {
            let _ = tx.send(Control::Stop);
        }
        summary
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_thread(
    id: WorkerId,
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: ClusterConfig,
    control_rx: Receiver<Control>,
    job_rx: Receiver<Vec<u8>>,
    job_txs: Vec<Sender<Vec<u8>>>,
    status_tx: Sender<StatusReport>,
) -> FinalReport {
    let mut worker = Worker::new(id, program, env, config.worker);
    if id.0 == 0 {
        // The first worker receives the seed job: the entire execution tree.
        worker.seed_root();
    }
    let mut last_status = Instant::now() - config.status_interval;

    loop {
        // Handle control messages.
        let mut stop = false;
        while let Ok(msg) = control_rx.try_recv() {
            match msg {
                Control::Stop => {
                    stop = true;
                    break;
                }
                Control::GlobalCoverage(global) => worker.merge_global_coverage(&global),
                Control::Balance { destination, count } => {
                    let jobs = worker.export_jobs(count);
                    if !jobs.is_empty() {
                        let encoded = JobTree::from_jobs(&jobs).encode();
                        worker.stats.job_bytes_sent += encoded.len() as u64;
                        let _ = job_txs[destination.0 as usize].send(encoded);
                    }
                }
            }
        }
        if stop {
            break;
        }

        // Receive jobs from peers.
        while let Ok(bytes) = job_rx.try_recv() {
            if let Some(tree) = JobTree::decode(&bytes) {
                worker.import_jobs(tree.to_jobs());
            }
        }

        // Explore.
        let idle = !worker.has_work();
        if !idle {
            worker.run_quantum(config.quantum);
        } else {
            std::thread::sleep(Duration::from_micros(500));
        }

        // Report status.
        if last_status.elapsed() >= config.status_interval {
            let report = StatusReport {
                worker: id,
                queue_length: worker.queue_length(),
                coverage: worker.coverage_snapshot(),
                stats: worker.stats.clone(),
                idle: !worker.has_work(),
            };
            if status_tx.send(report).is_err() {
                break;
            }
            last_status = Instant::now();
        }
    }

    FinalReport {
        stats: worker.stats.clone(),
        coverage: worker.coverage_snapshot(),
        test_cases: std::mem::take(&mut worker.test_cases),
        bugs: std::mem::take(&mut worker.bugs),
    }
}
