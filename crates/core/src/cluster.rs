//! The cluster harness: workers coordinated by a load balancer over a
//! pluggable transport.
//!
//! This reproduces the deployment of §3.3 and §6 of the paper: every worker
//! is an independent symbolic execution engine with its own solver and state
//! store (shared-nothing); workers exchange jobs only as serialized path
//! encodings; the load balancer sees only queue lengths and coverage bit
//! vectors. The worker and balancer loops are written against the
//! [`WorkerEndpoint`] / [`CoordinatorEndpoint`] traits of `c9-net`, so the
//! same code runs over in-process channels ([`InProcTransport`], the
//! default for [`Cluster::run`]) or TCP sockets spanning OS processes
//! (`TcpTransport` with the `c9-worker` / `c9-coordinator` binaries) —
//! wall-clock speedups come from real parallelism in both cases.
//!
//! Membership is *elastic*: the coordinator loop admits workers that join a
//! running cluster (folding them into the next balancing round), runs a
//! missed-heartbeat failure detector, and — because jobs are replayable
//! path prefixes (§3.2) — recovers from a worker crash by re-injecting the
//! dead worker's ledger into the survivors. The same ledger, serialized
//! periodically, is the coordinator [`Checkpoint`] a restarted run resumes
//! from.

use crate::balancer::{BalancerConfig, LoadBalancer, TransferRequest};
use crate::membership::{Checkpoint, Membership};
use crate::portfolio::{derive_seed, Portfolio, PortfolioConfig};
use crate::stats::{ClusterSummary, IntervalSample};
use crate::worker::{Worker, WorkerConfig};
use c9_ir::Program;
use c9_net::{
    Control, CoordinatorEndpoint, EnvSpec, FinalReport, InProcTransport, Job, JobBatch, JobTree,
    MemberEvent, RunId, RunSpec, RunSpecBuilder, StatusReport, TransferEvent, Transport,
    WorkerEndpoint, WorkerId, COORDINATOR,
};
use c9_solver::CacheSlice;
use c9_trace::{error, info, warn, Span, SpanKind};
use c9_vm::{CoverageSet, Environment, StrategyKind, TestCase};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Entry bound of the constraint-cache slices workers piggyback on job
/// batches and status-report gossip: enough to cover a transferred
/// frontier region's hot queries, small enough to stay a fraction of the
/// job payload itself.
pub(crate) const GOSSIP_SLICE_MAX: usize = 256;

/// Entry bound of the coordinator's merged "cluster hot set", rebroadcast
/// to every worker on balance rounds.
pub(crate) const HOT_SET_MAX: usize = 1024;

/// Gossip rides every k-th status report, bounding background traffic on
/// the report cadence (job-batch piggybacks are unaffected — they ship
/// with every transfer).
const GOSSIP_STATUS_EVERY: u32 = 4;

/// Status reports processed per coordinator round at most. Reports can
/// arrive faster than the drain processes them (tight status intervals,
/// many workers, recovery re-injection); without a bound the drain never
/// falls through to stopping conditions, gossip folds, or balancing, and
/// parked gossip slices pile up without limit.
pub(crate) const MAX_STATUS_DRAIN: usize = 256;

/// The gossip fold-and-rebroadcast runs every this-many balance
/// intervals. Folding is cheap but rebroadcasting serializes the hot-set
/// excerpt once per worker; at aggressive balance cadences (single-digit
/// milliseconds) doing that every interval costs more than the warmth it
/// spreads.
pub(crate) const GOSSIP_FOLD_EVERY: u32 = 8;

/// Bound on parked, not-yet-folded gossip slices; beyond it the oldest
/// slice is dropped. Gossip is opportunistic warmth — losing a stale
/// slice under pressure is always safe.
pub(crate) const PENDING_GOSSIP_MAX: usize = 128;

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub num_workers: usize,
    /// Per-worker configuration.
    pub worker: WorkerConfig,
    /// Stop after this much wall-clock time (None = run to exhaustion).
    pub time_limit: Option<Duration>,
    /// Stop once global line coverage reaches this fraction.
    pub coverage_target: Option<f64>,
    /// Stop once this many paths have completed across the cluster.
    pub max_total_paths: Option<u64>,
    /// How often workers report status to the load balancer.
    pub status_interval: Duration,
    /// How often the load balancer runs the balancing algorithm.
    pub balance_interval: Duration,
    /// How often a timeline sample is recorded (the paper's "10-second
    /// buckets", scaled down).
    pub sample_interval: Duration,
    /// Balancing algorithm parameters.
    pub balancer: BalancerConfig,
    /// Disable load balancing after this much time (the Fig. 13 ablation).
    pub disable_lb_after: Option<Duration>,
    /// Only balance until every worker has received work once, then never
    /// again (static partitioning ablation, §2).
    pub static_partition: bool,
    /// Instructions per worker quantum between message-handling points.
    pub quantum: u64,
    /// Declare a worker dead after this much silence (no status report and
    /// no heartbeat) and re-inject its pending jobs into the survivors.
    /// None disables the failure detector — the right choice for
    /// transports whose workers cannot die independently.
    pub failure_timeout: Option<Duration>,
    /// How often worker transports send liveness heartbeats, independently
    /// of the worker loop (zero disables them).
    pub heartbeat_interval: Duration,
    /// Workers attach a frontier snapshot to every `snapshot_every`-th
    /// status report (zero = never). Snapshots are what make crash
    /// recovery and checkpoint/resume exact; 1 keeps the coordinator's
    /// ledger current to the latest report.
    pub snapshot_every: u32,
    /// Write a [`Checkpoint`] here periodically and at the end of the run.
    pub checkpoint_path: Option<PathBuf>,
    /// How often the periodic checkpoint is written.
    pub checkpoint_interval: Duration,
    /// Continue a previous run: its frontier is injected instead of the
    /// root job, and its stats are folded into the final summary.
    pub resume: Option<Checkpoint>,
    /// The strategy portfolio: when set, each worker is assigned a strategy
    /// from the mix (spread evenly, re-spread on churn) instead of everyone
    /// running [`WorkerConfig::strategy`]; with `adapt` on, per-strategy
    /// coverage yield rebalances the assignment every balancing round.
    pub portfolio: Option<PortfolioConfig>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            num_workers: 2,
            worker: WorkerConfig::default(),
            time_limit: None,
            coverage_target: None,
            max_total_paths: None,
            status_interval: Duration::from_millis(10),
            balance_interval: Duration::from_millis(20),
            sample_interval: Duration::from_millis(100),
            balancer: BalancerConfig::default(),
            disable_lb_after: None,
            static_partition: false,
            quantum: 20_000,
            failure_timeout: None,
            heartbeat_interval: Duration::from_millis(25),
            snapshot_every: 0,
            checkpoint_path: None,
            checkpoint_interval: Duration::from_secs(1),
            resume: None,
            portfolio: None,
        }
    }
}

impl ClusterConfig {
    /// Builds the wire run spec a remote worker needs to participate in a
    /// run of `program` under this configuration. `run` identifies the run
    /// among all runs the target worker daemons serve (never
    /// [`RunId::SERVICE`]); `worker_epoch` is the per-worker fencing epoch
    /// assigned by the coordinator's membership at join time; `strategy` is
    /// the portfolio's assignment for this worker. The searcher seed is
    /// derived deterministically from the base seed, the worker id, and the
    /// epoch. Specs are assembled through [`RunSpecBuilder`], so an invalid
    /// configuration (zero quantum, reserved run id, …) is caught here
    /// rather than on the wire.
    pub fn run_spec(
        &self,
        program: &Program,
        env: EnvSpec,
        worker: WorkerId,
        run: RunId,
        worker_epoch: u64,
        strategy: StrategyKind,
    ) -> RunSpec {
        RunSpecBuilder::new()
            .program(program.clone())
            .env(env)
            .executor(self.worker.executor)
            .seed(derive_seed(self.worker.seed, worker, worker_epoch))
            .strategy(strategy)
            .generate_test_cases(self.worker.generate_test_cases)
            .export_order(self.worker.export_order)
            .replay_cache(self.worker.replay_cache)
            .threads(self.worker.threads)
            .quantum(self.quantum)
            .status_interval(self.status_interval)
            .seed_root(worker.0 == 0 && self.resume.is_none())
            .run(run)
            .worker_epoch(worker_epoch)
            .heartbeat_interval(self.heartbeat_interval)
            .snapshot_every(self.snapshot_every)
            .solver_cache(self.worker.solver_cache)
            .solver_backend(self.worker.solver_backend)
            .cache_gossip(self.worker.cache_gossip)
            .build()
            .expect("cluster config produces a valid run spec")
    }

    fn loop_opts(&self, run: RunId, seed_root: bool, worker_epoch: u64) -> WorkerLoopOpts {
        WorkerLoopOpts {
            run,
            quantum: self.quantum,
            status_interval: self.status_interval,
            seed_root,
            worker_epoch,
            snapshot_every: self.snapshot_every,
            heartbeat_interval: self.heartbeat_interval,
        }
    }
}

/// Options of a coordinator-driven run over a remote transport.
#[derive(Clone, Debug)]
pub struct CoordinatorRunOpts {
    /// The environment model remote workers should instantiate.
    pub env: EnvSpec,
    /// The run identity stamped on every frame of this run. Must be unique
    /// among the runs the target worker daemons serve and never
    /// [`RunId::SERVICE`].
    pub run: RunId,
    /// Listen addresses of statically dialed workers, by worker id. The
    /// endpoint must already be connected to exactly these.
    pub initial_workers: Vec<String>,
    /// Wait for at least this many live members before starting the run
    /// (elastic deployments; statically dialed workers already count).
    pub min_workers: usize,
    /// How long to wait for `min_workers` before starting anyway.
    pub join_wait: Duration,
    /// Workload name recorded in checkpoints.
    pub target: String,
}

impl Default for CoordinatorRunOpts {
    fn default() -> CoordinatorRunOpts {
        CoordinatorRunOpts {
            env: EnvSpec::Null,
            run: RunId(1),
            initial_workers: Vec::new(),
            min_workers: 1,
            join_wait: Duration::from_secs(60),
            target: String::new(),
        }
    }
}

/// The outcome of a cluster run, including generated test cases.
#[derive(Clone, Debug, Default)]
pub struct ClusterRunResult {
    /// Aggregate statistics and timeline.
    pub summary: ClusterSummary,
    /// Test cases from all workers (when enabled in the worker config).
    pub test_cases: Vec<TestCase>,
    /// Bug-exposing test cases from all workers.
    pub bugs: Vec<TestCase>,
}

/// How long the coordinator waits for final reports after issuing `Stop`
/// when the workers are remote processes that may have died.
const REMOTE_FINAL_TIMEOUT: Duration = Duration::from_secs(30);

/// Final-report wait for locally hosted workers: effectively unbounded,
/// because a local worker always either sends its final report or drops its
/// endpoint (ending the wait via disconnect) — reports are never lost.
const LOCAL_FINAL_TIMEOUT: Duration = Duration::from_secs(60 * 60 * 24);

/// A Cloud9 cluster: one program, one environment model, N workers.
pub struct Cluster {
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: ClusterConfig,
}

impl Cluster {
    /// Creates a cluster for `program` with the given environment model.
    pub fn new(program: Arc<Program>, env: Arc<dyn Environment>, config: ClusterConfig) -> Cluster {
        Cluster {
            program,
            env,
            config,
        }
    }

    /// Runs the cluster on in-process channels until a stopping condition is
    /// met and returns the aggregated results.
    pub fn run(&self) -> ClusterRunResult {
        self.run_with_transport(InProcTransport)
    }

    /// Builds this run's strategy portfolio: the configured mix, or the
    /// uniform single-strategy portfolio when none was configured, with the
    /// yield history of a resumed checkpoint restored.
    fn make_portfolio(&self) -> Portfolio {
        let config = self
            .config
            .portfolio
            .clone()
            .unwrap_or_else(|| PortfolioConfig::uniform(self.config.worker.strategy));
        let mut portfolio = Portfolio::new(config);
        if let Some(resume) = &self.config.resume {
            portfolio.restore(&resume.portfolio);
        }
        portfolio
    }

    /// Runs the cluster over any transport that hosts the worker endpoints
    /// locally (in-process channels, or loopback TCP where every byte
    /// crosses the kernel's network stack). One thread is spawned per
    /// worker; the coordinator runs on the calling thread.
    pub fn run_with_transport<T: Transport>(&self, transport: T) -> ClusterRunResult
    where
        T::WorkerEnd: Send,
    {
        let n = self.config.num_workers.max(1);
        let start = Instant::now();
        let endpoints = transport.establish(n).expect("transport establish failed");
        let mut coordinator = endpoints.coordinator;
        let workers = endpoints.workers;
        assert_eq!(
            workers.len(),
            n,
            "run_with_transport needs a transport with locally hosted workers; \
             use run_coordinator for remote daemons"
        );

        let mut membership = Membership::new(self.config.failure_timeout);
        let mut portfolio = self.make_portfolio();
        let mut epochs = Vec::with_capacity(n);
        for _ in 0..n {
            let (worker, epoch) = membership.add_static(String::new(), start);
            epochs.push(epoch);
            let strategy = portfolio.assign(worker);
            membership.set_strategy(worker, strategy);
        }
        if let Some(resume) = &self.config.resume {
            membership.seed_pool(resume.jobs());
        }

        let opts = CoordinatorRunOpts {
            target: self.program.name.clone(),
            min_workers: n,
            ..CoordinatorRunOpts::default()
        };
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (i, mut endpoint) in workers.into_iter().enumerate() {
                let program = self.program.clone();
                let env = self.env.clone();
                let config = self.config.clone();
                let loop_opts =
                    config.loop_opts(opts.run, i == 0 && config.resume.is_none(), epochs[i]);
                // Locally hosted workers get their portfolio assignment and
                // derived seed through their config (remote daemons get the
                // same through the run spec).
                let mut worker_config = config.worker;
                worker_config.strategy = portfolio
                    .assignment(WorkerId(i as u32))
                    .unwrap_or(config.worker.strategy);
                worker_config.seed = derive_seed(config.worker.seed, WorkerId(i as u32), epochs[i]);
                handles.push(scope.spawn(move || {
                    run_worker_loop(&mut endpoint, program, env, worker_config, loop_opts);
                }));
            }
            let result = self.drive(
                &mut coordinator,
                &mut membership,
                &mut portfolio,
                start,
                &opts,
                LOCAL_FINAL_TIMEOUT,
            );
            for handle in handles {
                handle.join().expect("worker thread panicked");
            }
            result
        })
    }

    /// Drives a cluster whose workers live in other processes: registers
    /// the statically dialed workers, waits for elastic joins up to
    /// `opts.min_workers`, ships every member its run spec, runs the
    /// balancing loop of §3.3 (with failure detection and crash recovery),
    /// and aggregates the results.
    pub fn run_coordinator<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        opts: CoordinatorRunOpts,
    ) -> ClusterRunResult {
        let start = Instant::now();
        let mut membership = Membership::new(self.config.failure_timeout);
        let mut portfolio = self.make_portfolio();
        for addr in &opts.initial_workers {
            let (worker, _) = membership.add_static(addr.clone(), start);
            let strategy = portfolio.assign(worker);
            membership.set_strategy(worker, strategy);
        }

        // Admit joiners until the requested quorum (statically dialed
        // workers already count towards it).
        let join_deadline = start + opts.join_wait;
        while membership.alive_count() < opts.min_workers.max(1) {
            if self.admit_joins(endpoint, &mut membership, &mut portfolio, &opts, false) == 0 {
                if Instant::now() >= join_deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        // Ship every member its run spec, carrying its portfolio strategy.
        for member in membership.members().to_vec() {
            if !member.is_alive() {
                continue;
            }
            let strategy = portfolio.assign(member.worker);
            membership.set_strategy(member.worker, strategy);
            let spec = self.config.run_spec(
                &self.program,
                opts.env,
                member.worker,
                opts.run,
                member.epoch,
                strategy,
            );
            if endpoint.send_start(member.worker, spec).is_err() {
                membership.mark_dead(member.worker);
                portfolio.remove(member.worker);
            }
        }
        // Re-announce the final pre-run membership after the starts, so
        // every member sees the peer table as of the moment the run began
        // (including any worker admitted while the specs were shipping).
        let infos = membership.peer_infos();
        for worker in membership.alive() {
            let _ = endpoint.send_control(worker, opts.run, Control::Membership(infos.clone()));
        }
        if let Some(resume) = &self.config.resume {
            membership.seed_pool(resume.jobs());
        }

        self.drive(
            endpoint,
            &mut membership,
            &mut portfolio,
            start,
            &opts,
            REMOTE_FINAL_TIMEOUT,
        )
    }

    /// Polls for joining workers and admits them: assigns identity, epoch,
    /// and a portfolio strategy, acknowledges, announces the new membership
    /// to everyone, and (when the run is underway) ships the run spec so
    /// the joiner is folded into the next balancing round. Returns how many
    /// were admitted.
    fn admit_joins<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        membership: &mut Membership,
        portfolio: &mut Portfolio,
        opts: &CoordinatorRunOpts,
        started: bool,
    ) -> usize {
        let mut admitted = 0;
        while let Some(request) = endpoint.try_recv_join() {
            let now = Instant::now();
            let (worker, epoch) =
                membership.join(request.listen_addr.clone(), request.previous, now);
            // A fenced previous incarnation gives its strategy slot back
            // before the new incarnation draws one, so a crash-rejoin cycle
            // keeps the portfolio spread stable. (A `previous` naming a
            // still-live member was not fenced and keeps its slot.)
            if let Some((old, _)) = request.previous {
                if membership.member(old).is_some_and(|m| !m.is_alive()) {
                    portfolio.remove(old);
                }
            }
            let strategy = portfolio.assign(worker);
            membership.set_strategy(worker, strategy);
            if endpoint
                .admit(
                    request.token,
                    worker,
                    epoch,
                    membership.peer_infos(),
                    strategy,
                )
                .is_err()
            {
                membership.mark_dead(worker);
                portfolio.remove(worker);
                continue;
            }
            if started {
                let spec = self.config.run_spec(
                    &self.program,
                    opts.env,
                    worker,
                    opts.run,
                    epoch,
                    strategy,
                );
                if endpoint.send_start(worker, spec).is_err() {
                    membership.mark_dead(worker);
                    portfolio.remove(worker);
                    continue;
                }
            }
            info!(
                "worker {worker} joined (epoch {epoch}, {}, strategy {strategy})",
                request.listen_addr
            );
            // Everyone learns the new peer table (and the fenced epochs of
            // any previous incarnation).
            let infos = membership.peer_infos();
            for peer in membership.alive() {
                if peer != worker {
                    let _ =
                        endpoint.send_control(peer, opts.run, Control::Membership(infos.clone()));
                }
            }
            admitted += 1;
        }
        admitted
    }

    /// The balancing loop plus final-report aggregation.
    fn drive<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        membership: &mut Membership,
        portfolio: &mut Portfolio,
        start: Instant,
        opts: &CoordinatorRunOpts,
        final_timeout: Duration,
    ) -> ClusterRunResult {
        let base_stats = self
            .config
            .resume
            .as_ref()
            .map(|c| c.base_stats.clone())
            .unwrap_or_default();
        let summary = self.balancer_loop(endpoint, membership, portfolio, start, opts);
        let mut result = ClusterRunResult {
            summary,
            ..ClusterRunResult::default()
        };

        // Collect final reports from every live member; the failure
        // detector keeps running so a worker that dies during shutdown
        // cannot stall the collection for the full timeout.
        let deadline = Instant::now() + final_timeout;
        loop {
            let outstanding = membership
                .members()
                .iter()
                .any(|m| m.is_alive() && !m.got_final);
            if !outstanding {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            while let Some(event) = endpoint.try_recv_event() {
                self.apply_member_event(membership, event);
            }
            for worker in membership.detect_failures(Instant::now()) {
                result.summary.workers_failed += 1;
                warn!("worker {worker} died during shutdown");
            }
            // Status reports still queued behind the Stop carry the last
            // transfer notices and acknowledgements; without them a batch
            // exported right before the shutdown would be missing from the
            // in-flight table — and from the final checkpoint.
            while let Some(report) = endpoint.recv_status(Duration::ZERO) {
                if report.run == opts.run {
                    membership.record_status(&report, Instant::now());
                }
            }
            let step = (deadline - now).min(Duration::from_millis(50));
            if let Some(report) = endpoint.recv_final(step) {
                if report.run == opts.run && membership.record_final(&report) {
                    result.summary.coverage.merge(&report.coverage);
                    result.summary.bugs_found += report.bugs.len() as u64;
                    result.test_cases.extend(report.test_cases);
                    result.bugs.extend(report.bugs);
                }
            }
        }
        // One more sweep for status reports buffered behind the last final
        // — their transfer notices would otherwise be lost, and with them
        // the jobs of any batch still on the wire at shutdown.
        while let Some(report) = endpoint.recv_status(Duration::ZERO) {
            if report.run == opts.run {
                membership.record_status(&report, Instant::now());
            }
        }

        // Every member contributes its exact share: final stats when the
        // report arrived, the last snapshot-consistent stats otherwise
        // (a dead member's post-snapshot work was re-executed elsewhere).
        // A member without a final also contributes the bugs it shipped
        // eagerly with its snapshots — the completed paths they sit on are
        // never re-explored, so this is the only surviving record.
        result.summary.worker_stats = base_stats;
        for member in membership.members() {
            result
                .summary
                .worker_stats
                .push(member.summary_stats().clone());
            if !member.got_final && !member.status_bugs.is_empty() {
                result.summary.bugs_found += member.status_bugs.len() as u64;
                result.bugs.extend(member.status_bugs.iter().cloned());
            }
        }
        if let Some(resume) = &self.config.resume {
            result.summary.coverage.merge(&resume.coverage);
        }
        result.summary.num_workers = membership.len().max(1);
        result.summary.elapsed = start.elapsed();

        // The final checkpoint reflects the finals' frontiers, so a run
        // stopped by a time or path limit resumes exactly where it left
        // off.
        if let Some(path) = &self.config.checkpoint_path {
            let mut span = Span::enter(SpanKind::Checkpoint);
            let checkpoint =
                self.build_checkpoint(membership, portfolio, &result.summary, opts, start);
            span.detail(checkpoint.jobs().len() as u64);
            info!(
                "final checkpoint: {} completed paths, {} pending jobs",
                checkpoint.base_paths(),
                checkpoint.jobs().len()
            );
            if let Err(e) = checkpoint.save(path) {
                error!("checkpoint write failed: {e}");
            }
        }
        result
    }

    fn build_checkpoint(
        &self,
        membership: &Membership,
        portfolio: &Portfolio,
        summary: &ClusterSummary,
        opts: &CoordinatorRunOpts,
        start: Instant,
    ) -> Checkpoint {
        let base_elapsed = self
            .config
            .resume
            .as_ref()
            .map(|c| c.elapsed)
            .unwrap_or_default();
        Checkpoint {
            run: opts.run,
            target: opts.target.clone(),
            base_stats: summary.worker_stats.clone(),
            frontier: JobTree::from_jobs(&membership.frontier_jobs()).encode(),
            coverage: summary.coverage.clone(),
            elapsed: base_elapsed + start.elapsed(),
            portfolio: portfolio.checkpoint(),
        }
    }

    fn apply_member_event(&self, membership: &mut Membership, event: MemberEvent) {
        match event {
            MemberEvent::Heartbeat { worker, epoch } => {
                membership.record_heartbeat(worker, epoch, Instant::now());
            }
            MemberEvent::Leave { worker, epoch } => {
                if membership.leave(worker, epoch) {
                    info!("worker {worker} left gracefully");
                }
            }
        }
    }

    /// Distributes the re-injection pool (reclaimed or resumed jobs) across
    /// the live workers, least-loaded first.
    fn reinject<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        membership: &mut Membership,
        run: RunId,
        jobs: Vec<Job>,
    ) -> u64 {
        if jobs.is_empty() {
            return 0;
        }
        let mut targets: Vec<(u64, WorkerId)> = membership
            .members()
            .iter()
            .filter(|m| m.is_alive())
            .map(|m| (m.queue_length, m.worker))
            .collect();
        if targets.is_empty() {
            // No survivors to hand the work to; keep it pooled (a joiner
            // may still arrive) and let the time limit end the run
            // otherwise.
            membership.seed_pool(jobs);
            return 0;
        }
        targets.sort();
        let total = jobs.len() as u64;
        let chunk_size = jobs.len().div_ceil(targets.len());
        let mut rest = jobs;
        let mut t = 0;
        while !rest.is_empty() {
            let chunk: Vec<Job> = rest.drain(..chunk_size.min(rest.len())).collect();
            let (_, destination) = targets[t % targets.len()];
            t += 1;
            let now = Instant::now();
            let encoded = JobTree::from_jobs(&chunk).encode();
            let seq = membership.record_inject(destination, chunk, now);
            if endpoint
                .send_control(destination, run, Control::Inject { seq, encoded })
                .is_err()
            {
                membership.cancel_inject(destination, seq);
            }
        }
        total
    }

    #[allow(clippy::too_many_lines)]
    fn balancer_loop<C: CoordinatorEndpoint>(
        &self,
        endpoint: &mut C,
        membership: &mut Membership,
        portfolio: &mut Portfolio,
        start: Instant,
        opts: &CoordinatorRunOpts,
    ) -> ClusterSummary {
        let base_paths = self
            .config
            .resume
            .as_ref()
            .map(|c| c.base_paths())
            .unwrap_or(0);
        let mut lb = LoadBalancer::new(membership.len(), self.program.loc(), self.config.balancer);
        if let Some(resume) = &self.config.resume {
            lb.merge_coverage(&resume.coverage);
        }
        let mut last_balance = Instant::now();
        let mut last_sample = Instant::now();
        let mut last_checkpoint = Instant::now();
        // The cluster hot set: the union of every worker's gossiped cache
        // slices, hotness-ranked and bounded. Received slices are parked in
        // `pending_gossip` and folded in on the balance cadence — merging
        // per report would starve the status drain at tight report
        // intervals — and the merged set is rebroadcast only when the fold
        // learned new entries.
        let mut hot_set = CacheSlice::default();
        let mut pending_gossip: Vec<CacheSlice> = Vec::new();
        let mut last_gossip = Instant::now();
        let mut transferred_at_last_sample = 0u64;
        let mut everyone_had_work = vec![false; membership.len()];
        let mut summary = ClusterSummary {
            num_workers: membership.len(),
            coverage: CoverageSet::new(self.program.loc()),
            ..ClusterSummary::default()
        };

        loop {
            // Fold joiners into the cluster; they enter the next balancing
            // round as empty (maximally underloaded) workers. Membership is
            // the source of truth for liveness — members can also die
            // outside the detector below (re-join fencing, failed admits),
            // so sync the balancer in both directions every round.
            let joined = self.admit_joins(endpoint, membership, portfolio, opts, true);
            summary.workers_joined += joined as u64;
            for member in membership.members() {
                if member.is_alive() {
                    lb.ensure_worker(member.worker);
                } else {
                    lb.set_alive(member.worker, false);
                    portfolio.remove(member.worker);
                }
            }

            // Liveness events.
            while let Some(event) = endpoint.try_recv_event() {
                if let MemberEvent::Leave { worker, .. } = &event {
                    lb.set_alive(*worker, false);
                    portfolio.remove(*worker);
                }
                self.apply_member_event(membership, event);
            }

            // Failure detection runs *before* the status drain and the
            // pool is re-injected *after* it: every acknowledgement or
            // transfer outcome already queued gets one full drain to
            // resolve its in-flight entry before reclaimed jobs are handed
            // out again — re-injecting a batch some survivor just
            // confirmed would double-count its paths.
            for worker in membership.detect_failures(Instant::now()) {
                lb.set_alive(worker, false);
                portfolio.remove(worker);
                summary.workers_failed += 1;
                warn!(
                    "worker {worker} declared dead (missed heartbeats); \
                     reclaiming its pending jobs"
                );
            }

            // Drain status reports (block briefly for the first one). The
            // drain is bounded per round: under a report flood (tight
            // status intervals, recovery re-injection) new frames can
            // arrive faster than they are processed, and an unbounded
            // drain would never fall through to the stopping conditions,
            // the gossip fold, or the balancing round below.
            let mut got_any = false;
            let mut drained = 0usize;
            while drained < MAX_STATUS_DRAIN {
                let Some(report) = (if got_any {
                    endpoint.recv_status(Duration::ZERO)
                } else {
                    endpoint.recv_status(Duration::from_millis(2))
                }) else {
                    break;
                };
                got_any = true;
                drained += 1;
                if report.run != opts.run {
                    continue; // a frame of some other (finished or future) run
                }
                let now = Instant::now();
                if !membership.record_status(&report, now) {
                    continue; // fenced-off epoch or dead member
                }
                let w = report.worker;
                if w.index() >= everyone_had_work.len() {
                    everyone_had_work.resize(w.index() + 1, false);
                }
                if report.queue_length > 0 {
                    everyone_had_work[w.index()] = true;
                }
                let (global, newly_covered) = lb.report(w, report.queue_length, &report.coverage);
                // Per-strategy yield: the lines this report added to the
                // global vector are credited to the strategy the worker
                // stamped on it.
                portfolio.record_yield(report.strategy, newly_covered);
                let _ = endpoint.send_control(w, opts.run, Control::GlobalCoverage(global));
                if let Some(gossip) = report.gossip {
                    if pending_gossip.len() >= PENDING_GOSSIP_MAX {
                        pending_gossip.remove(0);
                    }
                    pending_gossip.push(gossip);
                }
            }

            let pool = membership.take_pool();
            summary.jobs_reclaimed += self.reinject(endpoint, membership, opts.run, pool);

            let elapsed = start.elapsed();
            let members = membership.members();
            let total_paths: u64 = base_paths
                + members
                    .iter()
                    .map(|m| {
                        m.summary_stats().paths_completed.max(if m.is_alive() {
                            m.latest_stats.paths_completed
                        } else {
                            0
                        })
                    })
                    .sum::<u64>();

            // Stopping conditions.
            let mut goal_reached = false;
            let mut exhausted = false;
            if let Some(target) = self.config.coverage_target {
                if lb.global_coverage().ratio() >= target {
                    goal_reached = true;
                }
            }
            if let Some(max_paths) = self.config.max_total_paths {
                if total_paths >= max_paths {
                    goal_reached = true;
                }
            }
            let alive_count = membership.alive_count();
            let all_idle = alive_count > 0
                && members
                    .iter()
                    .filter(|m| m.is_alive())
                    .all(|m| m.idle && m.queue_length == 0);
            if all_idle && lb.all_idle() && membership.settled() {
                exhausted = true;
                goal_reached = true;
            }
            // Every worker died and nobody is left to take the reclaimed
            // jobs: the run cannot make progress.
            let cluster_lost = alive_count == 0 && !membership.is_empty();
            let timed_out = self
                .config
                .time_limit
                .map(|limit| elapsed >= limit)
                .unwrap_or(false);

            // Timeline sampling.
            if last_sample.elapsed() >= self.config.sample_interval
                || goal_reached
                || timed_out
                || cluster_lost
            {
                let transferred_now = lb.total_transferred();
                summary.timeline.push(IntervalSample {
                    elapsed,
                    states_transferred: transferred_now - transferred_at_last_sample,
                    total_states: lb.queue_lengths().iter().sum(),
                    useful_instructions: members
                        .iter()
                        .map(|m| m.latest_stats.useful_instructions)
                        .sum(),
                    coverage: lb.global_coverage().ratio(),
                });
                transferred_at_last_sample = transferred_now;
                last_sample = Instant::now();
            }

            // Periodic checkpoint: the ledger union is the global frontier.
            if let Some(path) = &self.config.checkpoint_path {
                if last_checkpoint.elapsed() >= self.config.checkpoint_interval {
                    let mut coverage = lb.global_coverage().clone();
                    coverage.merge(&summary.coverage);
                    let snapshot_summary = ClusterSummary {
                        worker_stats: {
                            let mut stats = self
                                .config
                                .resume
                                .as_ref()
                                .map(|c| c.base_stats.clone())
                                .unwrap_or_default();
                            stats.extend(members.iter().map(|m| m.summary_stats().clone()));
                            stats
                        },
                        coverage,
                        ..ClusterSummary::default()
                    };
                    let mut span = Span::enter(SpanKind::Checkpoint);
                    let checkpoint = self.build_checkpoint(
                        membership,
                        portfolio,
                        &snapshot_summary,
                        opts,
                        start,
                    );
                    span.detail(checkpoint.jobs().len() as u64);
                    if let Err(e) = checkpoint.save(path) {
                        error!("checkpoint write failed: {e}");
                    }
                    last_checkpoint = Instant::now();
                }
            }

            if goal_reached || timed_out || cluster_lost {
                summary.goal_reached = goal_reached;
                summary.exhausted = exhausted;
                break;
            }

            // Cache gossip: fold the slices received since the last fold
            // into the hot set in one batch, and rebroadcast only when the
            // fold actually learned new entries — hot-bit churn alone is
            // not worth a cluster-wide broadcast. The cadence is a
            // multiple of the balance interval and the broadcast ships
            // only the hottest excerpt: serializing the full hot set per
            // worker every few milliseconds would out-cost the warmth.
            // This runs even when load balancing is disabled (static
            // partitions still profit from shared cache warmth).
            if last_gossip.elapsed() >= self.config.balance_interval * GOSSIP_FOLD_EVERY
                && !pending_gossip.is_empty()
            {
                let mut added = 0;
                for slice in pending_gossip.drain(..) {
                    added += hot_set.merge(&slice);
                }
                hot_set.truncate_ranked(HOT_SET_MAX);
                if added > 0 && !hot_set.is_empty() {
                    let mut excerpt = hot_set.clone();
                    excerpt.truncate_ranked(GOSSIP_SLICE_MAX);
                    for worker in membership.alive() {
                        let _ = endpoint.send_control(
                            worker,
                            opts.run,
                            Control::HotSet(excerpt.clone()),
                        );
                    }
                }
                last_gossip = Instant::now();
            }

            // Load balancing.
            let lb_disabled_by_time = self
                .config
                .disable_lb_after
                .map(|d| elapsed >= d)
                .unwrap_or(false);
            let lb_disabled_static = self.config.static_partition
                && membership
                    .members()
                    .iter()
                    .filter(|m| m.is_alive())
                    .all(|m| {
                        everyone_had_work
                            .get(m.worker.index())
                            .copied()
                            .unwrap_or(false)
                    });
            if !lb_disabled_by_time
                && !lb_disabled_static
                && last_balance.elapsed() >= self.config.balance_interval
            {
                let mut round = Span::enter(SpanKind::BalanceRound);
                let requests = lb.balance();
                round.detail(requests.len() as u64);
                for TransferRequest {
                    source,
                    destination,
                    count,
                } in requests
                {
                    let _ = endpoint.send_control(
                        source,
                        opts.run,
                        Control::Balance { destination, count },
                    );
                }
                drop(round);
                // Portfolio adaptation rides the same cadence: strategies
                // that stopped yielding new coverage lose a worker to the
                // one currently yielding the most.
                for (worker, strategy) in portfolio.rebalance() {
                    let Some(member) = membership.member(worker) else {
                        continue;
                    };
                    let seed = derive_seed(self.config.worker.seed, worker, member.epoch)
                        ^ portfolio.rebalances();
                    membership.set_strategy(worker, strategy);
                    summary.strategy_rebalances += 1;
                    info!("portfolio rebalance: worker {worker} reassigned to strategy {strategy}");
                    let _ = endpoint.send_control(
                        worker,
                        opts.run,
                        Control::SetStrategy { strategy, seed },
                    );
                }
                last_balance = Instant::now();
            }
        }

        summary.coverage.merge(lb.global_coverage());
        for worker in membership.alive() {
            let _ = endpoint.send_control(worker, opts.run, Control::Stop);
        }
        summary
    }
}

/// Per-run options of the worker event loop.
#[derive(Clone, Copy, Debug)]
pub struct WorkerLoopOpts {
    /// The run this worker instance executes, stamped on every report and
    /// batch.
    pub run: RunId,
    /// Instructions per quantum between message-handling points.
    pub quantum: u64,
    /// How often status is reported to the coordinator.
    pub status_interval: Duration,
    /// Whether this worker seeds the root job (exactly one worker of a
    /// fresh — non-resumed — run).
    pub seed_root: bool,
    /// This worker's fencing epoch, stamped on every report and batch.
    pub worker_epoch: u64,
    /// Attach a frontier snapshot to every k-th status report (0 = never).
    pub snapshot_every: u32,
    /// Transport heartbeat cadence (zero disables).
    pub heartbeat_interval: Duration,
}

/// One run hosted by a [`WorkerService`]: an independent [`Worker`] engine
/// plus the per-run reporting state the event loop threads through it.
struct RunHost {
    opts: WorkerLoopOpts,
    worker: Worker,
    events: Vec<TransferEvent>,
    export_seq: u64,
    reports_sent: u32,
    // How many of this run's bugs the coordinator has already seen; new
    // ones ride the next snapshot-bearing report so they survive a crash
    // (the completed paths they sit on are never re-explored).
    bugs_reported: usize,
    last_status: Instant,
}

impl RunHost {
    fn new(
        id: WorkerId,
        program: Arc<Program>,
        env: Arc<dyn Environment>,
        config: WorkerConfig,
        opts: WorkerLoopOpts,
    ) -> RunHost {
        let mut worker = Worker::new(id, program, env, config);
        if opts.seed_root {
            worker.seed_root();
        }
        RunHost {
            opts,
            worker,
            events: Vec::new(),
            export_seq: 0,
            reports_sent: 0,
            bugs_reported: 0,
            last_status: Instant::now() - opts.status_interval,
        }
    }

    fn send_status<E: WorkerEndpoint>(&mut self, endpoint: &mut E) -> Result<(), ()> {
        let include_frontier = self.opts.snapshot_every > 0
            && self.reports_sent.is_multiple_of(self.opts.snapshot_every);
        // Gossip the hottest cache entries on a sparse report cadence; the
        // export is `None` when gossip is off for the run, the cache is
        // still cold, or nothing new was solved since the last export.
        let gossip = self
            .reports_sent
            .is_multiple_of(GOSSIP_STATUS_EVERY)
            .then(|| self.worker.export_gossip_slice(GOSSIP_SLICE_MAX))
            .flatten();
        self.reports_sent += 1;
        let frontier =
            include_frontier.then(|| JobTree::from_jobs(&self.worker.frontier_snapshot()).encode());
        let new_bugs = if include_frontier {
            let fresh = self.worker.bugs[self.bugs_reported..].to_vec();
            self.bugs_reported = self.worker.bugs.len();
            fresh
        } else {
            Vec::new()
        };
        let report = StatusReport {
            run: self.opts.run,
            worker: self.worker.id,
            epoch: self.opts.worker_epoch,
            queue_length: self.worker.queue_length(),
            coverage: self.worker.coverage_snapshot(),
            stats: self.worker.report_stats(),
            idle: !self.worker.has_work(),
            strategy: self.worker.strategy(),
            frontier,
            new_bugs,
            transfers: std::mem::take(&mut self.events),
            gossip,
        };
        endpoint.send_status(report).map_err(|_| ())
    }

    /// Handles one run-scoped control message. `Err` means the transport is
    /// gone and the service should shut down.
    fn handle_control<E: WorkerEndpoint>(
        &mut self,
        endpoint: &mut E,
        msg: Control,
    ) -> Result<(), ()> {
        match msg {
            // `Stop` is routed by the service before it gets here.
            Control::Stop => {}
            Control::GlobalCoverage(global) => self.worker.merge_global_coverage(&global),
            Control::Membership(peers) => endpoint.update_peers(&peers),
            Control::SetStrategy { strategy, seed } => self.worker.set_strategy(strategy, seed),
            // The coordinator's merged cluster hot set: warm the solver
            // cache with what the rest of the fleet already solved.
            Control::HotSet(slice) => self.worker.import_cache_slice(&slice),
            Control::Inject { seq, encoded } => {
                if let Some(tree) = JobTree::decode(&encoded) {
                    self.worker.import_job_tree(&tree);
                    self.events.push(TransferEvent::Imported {
                        source: COORDINATOR,
                        seq,
                        encoded,
                    });
                }
            }
            Control::Balance { destination, count } => {
                let mut transfer = Span::enter(SpanKind::JobTransfer);
                let jobs = self.worker.export_jobs(count);
                if jobs.is_empty() {
                    return Ok(());
                }
                // A harvest: the coordinator asked for the jobs *itself*
                // (federation pulls group work up through the sub-coordinator
                // this way). There is no socket to ship them over — the
                // Exported/Sent pair alone moves them: Exported parks the
                // payload in the coordinator's in-flight table, and Sent
                // towards the (never-alive) COORDINATOR id resolves the entry
                // straight into the reclaim pool.
                if destination == COORDINATOR {
                    let encoded = JobTree::from_jobs(&jobs).encode();
                    transfer.detail(encoded.len() as u64);
                    self.worker.record_transfer_bytes(encoded.len() as u64);
                    self.export_seq += 1;
                    let seq = self.export_seq;
                    self.events.push(TransferEvent::Exported {
                        destination,
                        seq,
                        encoded,
                    });
                    self.events.push(TransferEvent::Sent { destination, seq });
                    self.send_status(endpoint)?;
                    self.last_status = Instant::now();
                    return Ok(());
                }
                let encoded = JobTree::from_jobs(&jobs).encode();
                transfer.detail(encoded.len() as u64);
                self.worker.record_transfer_bytes(encoded.len() as u64);
                self.export_seq += 1;
                let seq = self.export_seq;
                // Tell the coordinator about the export *before* shipping
                // the batch: if this worker dies in between, the
                // coordinator holds the batch in its in-flight table and
                // can re-inject it — the batch can be lost on the wire,
                // but never forgotten.
                self.events.push(TransferEvent::Exported {
                    destination,
                    seq,
                    encoded: encoded.clone(),
                });
                self.send_status(endpoint)?;
                self.worker.stats.job_bytes_sent += encoded.len() as u64;
                // Piggyback the exporter's hottest cache entries: the
                // receiver replays these jobs through the very constraints
                // this worker just solved, so the slice is what spares its
                // first quantum the cold-cache re-solving of §6.
                let slice = self.worker.export_cache_slice(GOSSIP_SLICE_MAX);
                let batch = JobBatch {
                    source: self.worker.id,
                    run: self.opts.run,
                    source_epoch: self.opts.worker_epoch,
                    seq,
                    encoded,
                    slice,
                };
                // ... and report the outcome immediately afterwards, so the
                // coordinator always knows whether the batch is in wire
                // custody (`Sent`) or back in this frontier (`Requeued`)
                // before it could ever reclaim it.
                if endpoint.send_jobs(destination, batch).is_ok() {
                    self.events.push(TransferEvent::Sent { destination, seq });
                } else {
                    self.events
                        .push(TransferEvent::Requeued { destination, seq });
                    self.worker.requeue_jobs(jobs);
                }
                self.send_status(endpoint)?;
                self.last_status = Instant::now();
            }
        }
        Ok(())
    }

    fn import_batch(&mut self, batch: JobBatch) {
        if let Some(slice) = &batch.slice {
            self.worker.import_cache_slice(slice);
        }
        if let Some(tree) = JobTree::decode(&batch.encoded) {
            self.worker.import_job_tree(&tree);
            self.events.push(TransferEvent::Imported {
                source: batch.source,
                seq: batch.seq,
                encoded: batch.encoded,
            });
        }
    }

    fn send_final<E: WorkerEndpoint>(&mut self, endpoint: &mut E) {
        let _ = endpoint.send_final(FinalReport {
            run: self.opts.run,
            worker: self.worker.id,
            epoch: self.opts.worker_epoch,
            stats: self.worker.report_stats(),
            coverage: self.worker.coverage_snapshot(),
            test_cases: std::mem::take(&mut self.worker.test_cases),
            bugs: std::mem::take(&mut self.worker.bugs),
            frontier: JobTree::from_jobs(&self.worker.frontier_snapshot()).encode(),
            transfers: std::mem::take(&mut self.events),
        });
    }
}

/// The worker-side run service: hosts any number of concurrent runs on one
/// endpoint, time-slicing execution quanta across them.
///
/// Every frame is scoped to a run: control messages and job batches are
/// routed to the hosted run they name (frames of unknown — finished or
/// never-admitted — runs are dropped), status and final reports carry the
/// run id back. New runs are admitted from `Start` frames
/// ([`WorkerEndpoint::try_recv_start`]); a `Stop` scoped to
/// [`RunId::SERVICE`] shuts the whole service down, finalizing every hosted
/// run.
///
/// The single-run entry points ([`run_worker_loop`],
/// [`run_worker_from_spec`]) are thin wrappers that host exactly one run
/// and exit when it completes, so every deployment — the in-process
/// harness included — exercises the same service loop.
pub struct WorkerService<'e, E: WorkerEndpoint> {
    endpoint: &'e mut E,
    env_factory: Box<dyn Fn(EnvSpec) -> Arc<dyn Environment> + 'e>,
    threads_override: Option<usize>,
    replay_cache_override: Option<c9_vm::ReplayCacheConfig>,
    solver_cache_override: Option<usize>,
    admit_starts: bool,
    exit_when_drained: bool,
    hosted: u64,
    runs: BTreeMap<u64, RunHost>,
}

impl<'e, E: WorkerEndpoint> WorkerService<'e, E> {
    /// Creates a service on `endpoint`. `env_factory` maps the environment
    /// spec of an admitted run to a concrete environment model (the trait
    /// object cannot cross the wire).
    pub fn new(
        endpoint: &'e mut E,
        env_factory: impl Fn(EnvSpec) -> Arc<dyn Environment> + 'e,
    ) -> WorkerService<'e, E> {
        WorkerService {
            endpoint,
            env_factory: Box::new(env_factory),
            threads_override: None,
            replay_cache_override: None,
            solver_cache_override: None,
            admit_starts: true,
            exit_when_drained: false,
            hosted: 0,
            runs: BTreeMap::new(),
        }
    }

    /// Local overrides of the executor thread count (the `c9-worker
    /// --threads` flag), the replay-cache budget (`--replay-cache`), and
    /// the solver query-cache capacity (`--solver-cache`): a daemon
    /// operator knows the machine's core and memory budget better than the
    /// coordinator does.
    pub fn with_overrides(
        mut self,
        threads: Option<usize>,
        replay_cache: Option<c9_vm::ReplayCacheConfig>,
        solver_cache: Option<usize>,
    ) -> Self {
        self.threads_override = threads;
        self.replay_cache_override = replay_cache;
        self.solver_cache_override = solver_cache;
        self
    }

    /// Makes [`WorkerService::serve`] return once at least one run was
    /// hosted and the last one finished (the `c9-worker --once` contract),
    /// instead of serving until a service-level `Stop` or disconnect.
    pub fn exit_when_drained(mut self, on: bool) -> Self {
        self.exit_when_drained = on;
        self
    }

    /// Hosts a run from its already-resolved parts (the in-process path,
    /// where program and environment never cross a wire).
    pub fn host(
        &mut self,
        program: Arc<Program>,
        env: Arc<dyn Environment>,
        config: WorkerConfig,
        opts: WorkerLoopOpts,
    ) {
        // Heartbeats first: engine setup below can take long enough on a
        // cold start that a silent worker would look dead to the
        // coordinator.
        self.endpoint.start_heartbeat(opts.heartbeat_interval);
        let host = RunHost::new(self.endpoint.id(), program, env, config, opts);
        self.runs.insert(opts.run.0, host);
        self.hosted += 1;
    }

    /// Admits a run from its wire spec, applying the service's local
    /// overrides.
    pub fn admit_spec(&mut self, spec: RunSpec) {
        let config = WorkerConfig {
            executor: spec.executor,
            seed: spec.seed,
            strategy: spec.strategy,
            generate_test_cases: spec.generate_test_cases,
            export_order: spec.export_order,
            replay_cache: self.replay_cache_override.unwrap_or(spec.replay_cache),
            threads: self.threads_override.unwrap_or(spec.threads).max(1),
            solver_cache: self.solver_cache_override.or(spec.solver_cache),
            solver_backend: spec.solver_backend,
            cache_gossip: spec.cache_gossip,
        };
        let opts = WorkerLoopOpts {
            run: spec.run,
            quantum: spec.quantum,
            status_interval: spec.status_interval,
            seed_root: spec.seed_root,
            worker_epoch: spec.worker_epoch,
            snapshot_every: spec.snapshot_every,
            heartbeat_interval: spec.heartbeat_interval,
        };
        let env = (self.env_factory)(spec.env);
        self.host(Arc::new(spec.program), env, config, opts);
    }

    /// The service event loop, shared by every transport: admit new runs,
    /// route control messages and job batches to the run they address,
    /// explore each run in quanta (round-robin across runs), report per-run
    /// status, and ship a final report for every run that stops.
    pub fn serve(mut self) {
        loop {
            if self.admit_starts {
                while let Some(spec) = self.endpoint.try_recv_start() {
                    self.admit_spec(*spec);
                }
            }

            // Control frames, routed by run id.
            let mut disconnected = false;
            while let Some((run, msg)) = self.endpoint.try_recv_control() {
                if run == RunId::SERVICE {
                    if matches!(msg, Control::Stop) {
                        // Daemon-level shutdown: finalize every hosted run.
                        self.finalize_all();
                        return;
                    }
                    continue;
                }
                if matches!(msg, Control::Stop) {
                    if let Some(mut host) = self.runs.remove(&run.0) {
                        host.send_final(self.endpoint);
                    }
                    continue;
                }
                let Some(host) = self.runs.get_mut(&run.0) else {
                    continue; // a frame of a finished (or never-admitted) run
                };
                if host.handle_control(self.endpoint, msg).is_err() {
                    disconnected = true;
                    break;
                }
            }
            if disconnected {
                break;
            }

            // Job batches, routed by run id.
            while let Some(batch) = self.endpoint.try_recv_jobs() {
                if let Some(host) = self.runs.get_mut(&batch.run.0) {
                    host.import_batch(batch);
                }
            }

            // Explore: one quantum per run with pending work, so concurrent
            // runs share this worker fairly.
            let mut any_work = false;
            for host in self.runs.values_mut() {
                if host.worker.has_work() {
                    any_work = true;
                    host.worker.run_quantum(host.opts.quantum);
                }
            }

            // Per-run status cadence.
            for host in self.runs.values_mut() {
                if host.last_status.elapsed() >= host.opts.status_interval {
                    if host.send_status(self.endpoint).is_err() {
                        disconnected = true;
                        break;
                    }
                    host.last_status = Instant::now();
                }
            }
            if disconnected {
                break;
            }

            if self.exit_when_drained && self.hosted > 0 && self.runs.is_empty() {
                return;
            }
            if !any_work {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        // The transport died under us: make a best-effort attempt to flush
        // final reports (it usually fails too, but a half-open endpoint may
        // still accept them).
        self.finalize_all();
    }

    fn finalize_all(&mut self) {
        while let Some((_, mut host)) = self.runs.pop_first() {
            host.send_final(self.endpoint);
        }
    }
}

/// The single-run worker event loop: hosts exactly one run on a
/// [`WorkerService`] and returns when it stops. This is the entry point of
/// the in-process harness, where the coordinator hands every worker its
/// resolved program and environment directly.
pub fn run_worker_loop<E: WorkerEndpoint>(
    endpoint: &mut E,
    program: Arc<Program>,
    env: Arc<dyn Environment>,
    config: WorkerConfig,
    opts: WorkerLoopOpts,
) {
    let factory_env = env.clone();
    let mut service =
        WorkerService::new(endpoint, move |_| factory_env.clone()).exit_when_drained(true);
    service.admit_starts = false;
    service.host(program, env, config, opts);
    service.serve();
}

/// Runs the worker side of a run spec received over the wire. The caller
/// maps [`RunSpec::env`] to a concrete environment (the trait object cannot
/// cross the wire) and supplies the endpoint.
pub fn run_worker_from_spec<E: WorkerEndpoint>(
    endpoint: &mut E,
    spec: RunSpec,
    env: Arc<dyn Environment>,
) {
    run_worker_from_spec_with(endpoint, spec, env, None, None, None)
}

/// Like [`run_worker_from_spec`], with local overrides of the executor
/// thread count (the `c9-worker --threads` flag), the replay-cache budget
/// (`c9-worker --replay-cache`), and the solver query-cache capacity
/// (`c9-worker --solver-cache`): a daemon operator knows the machine's
/// core and memory budget better than the coordinator does.
pub fn run_worker_from_spec_with<E: WorkerEndpoint>(
    endpoint: &mut E,
    spec: RunSpec,
    env: Arc<dyn Environment>,
    threads_override: Option<usize>,
    replay_cache_override: Option<c9_vm::ReplayCacheConfig>,
    solver_cache_override: Option<usize>,
) {
    let mut service = WorkerService::new(endpoint, move |_| env.clone())
        .with_overrides(
            threads_override,
            replay_cache_override,
            solver_cache_override,
        )
        .exit_when_drained(true);
    service.admit_starts = false;
    service.admit_spec(spec);
    service.serve();
}
