//! Elastic cluster membership, failure detection, and exact crash recovery.
//!
//! The paper encodes jobs as replayable path prefixes precisely so that
//! workers can come and go without losing work (§3.2). This module is the
//! coordinator-side realization of that property: a per-worker *job ledger*
//! that tracks, for every member, the frontier it owns — reconstructed from
//! the periodic frontier snapshots piggybacked on status reports, adjusted
//! by the export/import events of every job transfer. The ledger gives two
//! things:
//!
//! * **Crash recovery.** When the failure detector declares a worker dead
//!   (missed heartbeats), the worker's ledger plus any batches still in
//!   flight to or from it are reclaimed into a re-injection pool and handed
//!   to the survivors — exactly once, and consistent with the stats of the
//!   same snapshot, so the final path count matches an uninterrupted run.
//! * **Checkpointing.** The union of all ledgers (plus the in-flight table)
//!   *is* the global frontier, so a periodic serialized [`Checkpoint`]
//!   lets a restarted coordinator resume the run where it left off.
//!
//! Every member carries a fencing *epoch* assigned at join time; status
//! reports, heartbeats, and job batches stamped with a stale epoch come
//! from a fenced-off previous incarnation and are rejected.

use c9_net::{
    FinalReport, Job, JobTree, PeerInfo, RunId, StatusReport, TransferEvent, WorkerId, WorkerStats,
    COORDINATOR,
};
use c9_vm::{CoverageSet, TestCase};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::{Duration, Instant};

/// Liveness state of one cluster member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberHealth {
    /// Heartbeating (or never subject to failure detection).
    Alive,
    /// Declared dead by the failure detector or fenced off by a re-join.
    Dead,
    /// Departed gracefully with a `Leave` message.
    Left,
}

/// The coordinator's view of one worker.
#[derive(Clone, Debug)]
pub struct MemberState {
    /// The member's identity.
    pub worker: WorkerId,
    /// The member's fencing epoch.
    pub epoch: u64,
    /// The member's listen address for peer job transfers (empty when the
    /// transport has no peer addressing, e.g. in-process channels).
    pub addr: String,
    /// Liveness, as decided by the failure detector.
    pub health: MemberHealth,
    /// When the member last produced any message.
    pub last_contact: Instant,
    /// The newest statistics reported (used for progress displays and path
    /// limits; may run ahead of the recovery-consistent snapshot).
    pub latest_stats: WorkerStats,
    /// Statistics as of the last frontier snapshot — consistent with the
    /// ledger, so a dead member contributes exactly the paths its reclaimed
    /// frontier does not re-execute.
    pub snapshot_stats: WorkerStats,
    /// Whether the final report arrived (its stats supersede everything).
    pub got_final: bool,
    /// Whether the member has ever produced a message. Until first contact
    /// the failure detector applies the startup grace instead of the
    /// heartbeat timeout: process spawn, program delivery, and engine
    /// setup legitimately take longer than a heartbeat interval.
    pub contacted: bool,
    /// Whether the member last reported an empty queue.
    pub idle: bool,
    /// The member's last reported queue length.
    pub queue_length: u64,
    /// Bug-exposing test cases shipped eagerly on snapshot-bearing status
    /// reports; the record of a crashed member's bugs (a member that sends
    /// a final report supersedes this with the final's cumulative list).
    pub status_bugs: Vec<TestCase>,
    /// The exploration strategy the coordinator's portfolio assigned to
    /// this member (None before the first assignment).
    pub strategy: Option<c9_vm::StrategyKind>,
    /// The jobs this member owns, per the coordinator's ledger.
    ledger: BTreeSet<Job>,
}

impl MemberState {
    fn new(worker: WorkerId, epoch: u64, addr: String, now: Instant) -> MemberState {
        MemberState {
            worker,
            epoch,
            addr,
            health: MemberHealth::Alive,
            last_contact: now,
            latest_stats: WorkerStats::default(),
            snapshot_stats: WorkerStats::default(),
            got_final: false,
            contacted: false,
            idle: false,
            queue_length: 0,
            status_bugs: Vec::new(),
            strategy: None,
            ledger: BTreeSet::new(),
        }
    }

    /// Whether the member is alive.
    pub fn is_alive(&self) -> bool {
        self.health == MemberHealth::Alive
    }

    /// The statistics this member contributes to the run summary: the final
    /// report when it arrived, otherwise the last snapshot-consistent stats
    /// (a crashed member's work past the snapshot is re-executed elsewhere,
    /// so counting the snapshot keeps the total exact).
    pub fn summary_stats(&self) -> &WorkerStats {
        if self.got_final {
            &self.latest_stats
        } else {
            &self.snapshot_stats
        }
    }

    /// Number of ledger jobs currently attributed to this member.
    pub fn ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// Depth of the shallowest job in this member's ledger (`None` when the
    /// ledger is empty). Shallow jobs are roots of large unexplored
    /// subtrees, which makes this the donor-selection signal of the
    /// depth-partitioned inter-group balancing policy: the group holding
    /// the shallowest pending work can give away the most exploration
    /// potential per transferred byte.
    pub fn ledger_min_depth(&self) -> Option<usize> {
        self.ledger.iter().map(Job::depth).min()
    }
}

/// Delivery progress of one in-flight batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InFlightState {
    /// The export was announced but the sender has not yet reported the
    /// socket-write outcome: the jobs may still be (or return to) the
    /// sender's frontier.
    Announced,
    /// The sender confirmed wire custody: the jobs are with the
    /// destination or lost on the wire, never with the sender.
    Sent,
}

/// One batch between announcement and import acknowledgement.
#[derive(Clone, Debug)]
struct InFlight {
    jobs: Vec<Job>,
    state: InFlightState,
    since: Instant,
    /// Set when an endpoint of the transfer died: the entry is reclaimed
    /// once the grace period (one more round of status draining) passes
    /// without a resolving event.
    doomed_since: Option<Instant>,
}

/// Membership, failure detection, and the per-worker job ledger.
#[derive(Debug)]
pub struct Membership {
    members: Vec<MemberState>,
    /// Batches exported but not yet acknowledged by their destination,
    /// keyed by (source, destination, sequence).
    in_flight: BTreeMap<(WorkerId, WorkerId, u64), InFlight>,
    /// Import acknowledgements that arrived before the matching export
    /// notice (status streams of different workers are not ordered
    /// relative to each other).
    pre_acked: BTreeSet<(WorkerId, WorkerId, u64)>,
    /// Jobs awaiting re-injection into live workers (reclaimed from the
    /// dead, swept from stale in-flight entries, or seeded by a resume).
    pool: Vec<Job>,
    /// Jobs a member exported *to the coordinator itself* (a federation
    /// harvest: `Balance { destination: COORDINATOR }`). Kept apart from
    /// the re-injection pool — they are spoken for by an inter-group
    /// transfer, not strays to hand back to the members.
    harvest: Vec<Job>,
    /// Sequence counter for coordinator-injected batches.
    inject_seq: u64,
    /// Epoch for the next (re-)join.
    next_epoch: u64,
    /// Missed-heartbeat timeout (None disables the failure detector).
    timeout: Option<Duration>,
}

/// How long a doomed in-flight entry waits for a resolving event (the
/// sender's `Sent`/`Requeued` outcome or the destination's import
/// acknowledgement, both generated within milliseconds) before its jobs are
/// reclaimed. Far above event latency, far below the failure timeout.
const DOOM_GRACE: Duration = Duration::from_millis(100);

/// Minimum silence before a member that has *never* made contact is
/// declared dead: spawning the process, shipping the run spec, and engine
/// setup can far exceed the steady-state heartbeat timeout.
const STARTUP_GRACE: Duration = Duration::from_secs(10);

impl Membership {
    /// Creates an empty membership with the given failure-detection timeout.
    pub fn new(timeout: Option<Duration>) -> Membership {
        Membership {
            members: Vec::new(),
            in_flight: BTreeMap::new(),
            pre_acked: BTreeSet::new(),
            pool: Vec::new(),
            harvest: Vec::new(),
            inject_seq: 0,
            next_epoch: 1,
            timeout,
        }
    }

    /// Registers one statically configured worker (the coordinator dialed
    /// it) and returns its identity and epoch.
    pub fn add_static(&mut self, addr: String, now: Instant) -> (WorkerId, u64) {
        let worker = WorkerId(self.members.len() as u32);
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.members
            .push(MemberState::new(worker, epoch, addr, now));
        (worker, epoch)
    }

    /// Admits a joining worker, assigning a fresh identity and epoch.
    /// When `previous` names a live previous incarnation of the same
    /// daemon, that incarnation is fenced off first: marked dead, its jobs
    /// reclaimed, its stale frames rejected from now on.
    pub fn join(
        &mut self,
        addr: String,
        previous: Option<(WorkerId, u64)>,
        now: Instant,
    ) -> (WorkerId, u64) {
        if let Some((old, old_epoch)) = previous {
            if let Some(member) = self.members.get(old.index()) {
                if member.epoch == old_epoch && member.is_alive() {
                    self.mark_dead(old);
                }
            }
        }
        self.add_static(addr, now)
    }

    /// Handles a graceful departure. Returns true when the member was alive
    /// with a current epoch.
    pub fn leave(&mut self, worker: WorkerId, epoch: u64) -> bool {
        let Some(member) = self.members.get_mut(worker.index()) else {
            return false;
        };
        if member.epoch != epoch || !member.is_alive() {
            return false;
        }
        member.health = MemberHealth::Left;
        self.reclaim(worker);
        true
    }

    /// Records a transport heartbeat. Returns true when accepted.
    ///
    /// Heartbeats carry liveness only (no job accounting), so unlike status
    /// reports they are accepted with an *older* epoch too: a static-mode
    /// worker heartbeats with epoch 0 until the run spec delivers its
    /// assigned epoch, and rejecting those would let the failure detector
    /// kill a slow-starting but healthy worker.
    pub fn record_heartbeat(&mut self, worker: WorkerId, epoch: u64, now: Instant) -> bool {
        let Some(member) = self.members.get_mut(worker.index()) else {
            return false;
        };
        if member.epoch < epoch || !member.is_alive() {
            return false;
        }
        member.last_contact = now;
        member.contacted = true;
        true
    }

    /// Records a status report: liveness, queue, stats, the frontier
    /// snapshot (replacing the ledger), and all piggybacked transfer
    /// events. Returns false — and changes nothing — for reports from
    /// fenced-off epochs or dead members.
    ///
    /// A report processed after the same member's final report (the status
    /// and final queues are drained independently) applies only its
    /// transfer events: they were emitted before the final and are not
    /// repeated there, while its stats and frontier are strictly older
    /// than the final's and must not overwrite them.
    pub fn record_status(&mut self, report: &StatusReport, now: Instant) -> bool {
        let w = report.worker;
        let got_final = {
            let Some(member) = self.members.get_mut(w.index()) else {
                return false;
            };
            if member.epoch != report.epoch || !member.is_alive() {
                return false;
            }
            member.last_contact = now;
            member.contacted = true;
            if !member.got_final {
                member.latest_stats = report.stats.clone();
                member.idle = report.idle;
                member.queue_length = report.queue_length;
            }
            member.got_final
        };
        // Transfer events happened before the snapshot in the same report
        // (the worker loop is single-threaded), so apply them first and let
        // the snapshot replace the result wholesale.
        self.apply_transfers(w, &report.transfers, now);
        if got_final {
            return true;
        }
        if let Some(encoded) = &report.frontier {
            let jobs = JobTree::decode(encoded)
                .map(|t| t.to_jobs())
                .unwrap_or_default();
            let member = &mut self.members[w.index()];
            member.ledger = jobs.into_iter().collect();
            member.snapshot_stats = report.stats.clone();
            member.status_bugs.extend(report.new_bugs.iter().cloned());
        }
        true
    }

    /// Records a final report: authoritative stats and the frontier still
    /// pending at shutdown (what a resumed run must re-execute). Returns
    /// false for fenced-off or dead members.
    pub fn record_final(&mut self, report: &FinalReport) -> bool {
        let w = report.worker;
        {
            let Some(member) = self.members.get_mut(w.index()) else {
                return false;
            };
            if member.epoch != report.epoch || !member.is_alive() {
                return false;
            }
        }
        self.apply_transfers(w, &report.transfers, Instant::now());
        let jobs = JobTree::decode(&report.frontier)
            .map(|t| t.to_jobs())
            .unwrap_or_default();
        let member = &mut self.members[w.index()];
        member.got_final = true;
        member.contacted = true;
        member.latest_stats = report.stats.clone();
        member.snapshot_stats = report.stats.clone();
        member.ledger = jobs.into_iter().collect();
        member.idle = true;
        member.queue_length = 0;
        true
    }

    fn apply_transfers(&mut self, w: WorkerId, transfers: &[TransferEvent], now: Instant) {
        for event in transfers {
            match event {
                TransferEvent::Exported {
                    destination,
                    seq,
                    encoded,
                } => {
                    let jobs = JobTree::decode(encoded)
                        .map(|t| t.to_jobs())
                        .unwrap_or_default();
                    for job in &jobs {
                        self.members[w.index()].ledger.remove(job);
                    }
                    let key = (w, *destination, *seq);
                    if self.pre_acked.remove(&key) {
                        // The destination already confirmed (and its
                        // payload-carrying acknowledgement already routed
                        // the jobs); nothing left to track.
                        continue;
                    }
                    let dest_alive = self
                        .members
                        .get(destination.index())
                        .map(MemberState::is_alive)
                        .unwrap_or(false);
                    self.in_flight.insert(
                        key,
                        InFlight {
                            jobs,
                            state: InFlightState::Announced,
                            since: now,
                            // Towards a corpse the batch cannot be
                            // acknowledged; wait only for the sender's
                            // Sent/Requeued outcome.
                            doomed_since: (!dest_alive).then_some(now),
                        },
                    );
                }
                TransferEvent::Sent { destination, seq } => {
                    let key = (w, *destination, *seq);
                    if *destination == COORDINATOR {
                        // A federation harvest: the coordinator asked for
                        // the jobs itself. The Exported/Sent pair is the
                        // whole delivery.
                        if let Some(entry) = self.in_flight.remove(&key) {
                            self.harvest.extend(entry.jobs);
                        }
                        continue;
                    }
                    let dest_alive = self
                        .members
                        .get(destination.index())
                        .map(MemberState::is_alive)
                        .unwrap_or(false);
                    if dest_alive {
                        if let Some(entry) = self.in_flight.get_mut(&key) {
                            entry.state = InFlightState::Sent;
                        }
                    } else if let Some(entry) = self.in_flight.remove(&key) {
                        // Written into a dead worker's socket: the sender
                        // gave the jobs up and nobody will acknowledge
                        // them.
                        self.pool.extend(entry.jobs);
                    }
                }
                TransferEvent::Requeued { destination, seq } => {
                    // The export failed and the source took the jobs back.
                    if let Some(entry) = self.in_flight.remove(&(w, *destination, *seq)) {
                        self.members[w.index()].ledger.extend(entry.jobs);
                    }
                }
                TransferEvent::Imported {
                    source,
                    seq,
                    encoded,
                } => {
                    let key = (*source, w, *seq);
                    if let Some(entry) = self.in_flight.remove(&key) {
                        self.members[w.index()].ledger.extend(entry.jobs);
                    } else if *source != COORDINATOR {
                        // Acknowledgement without a matching export notice:
                        // either the ack raced ahead of the notice, or the
                        // sender died before flushing it. The echoed
                        // payload keeps the ledger exact either way — the
                        // jobs leave the sender's ledger (or the reclaim
                        // pool, if the sender was already reclaimed) and
                        // enter this worker's.
                        let jobs = JobTree::decode(encoded)
                            .map(|t| t.to_jobs())
                            .unwrap_or_default();
                        if let Some(sender) = self.members.get_mut(source.index()) {
                            for job in &jobs {
                                sender.ledger.remove(job);
                            }
                        }
                        for job in &jobs {
                            if let Some(pos) = self.pool.iter().position(|p| p == job) {
                                self.pool.swap_remove(pos);
                            }
                        }
                        self.members[w.index()].ledger.extend(jobs);
                        self.pre_acked.insert(key);
                    }
                }
            }
        }
    }

    /// Runs the failure detector: members silent for longer than the
    /// timeout are declared dead and their jobs reclaimed. Doomed in-flight
    /// entries (an endpoint died) whose grace period passed without a
    /// resolving event are swept into the pool, as are batches that
    /// provably died on the wire (older than the timeout with an idle,
    /// live destination — a live receiver drains its socket every quantum,
    /// so an unacknowledged old batch is lost). Returns the newly dead
    /// members.
    pub fn detect_failures(&mut self, now: Instant) -> Vec<WorkerId> {
        let mut dead = Vec::new();
        if let Some(timeout) = self.timeout {
            for i in 0..self.members.len() {
                let member = &self.members[i];
                let effective = if member.contacted {
                    timeout
                } else {
                    timeout.max(STARTUP_GRACE)
                };
                if member.is_alive()
                    && !member.got_final
                    && now.duration_since(member.last_contact) > effective
                {
                    let w = member.worker;
                    self.mark_dead(w);
                    dead.push(w);
                }
            }
        }
        // The doomed sweep runs even with the heartbeat detector off:
        // members also die through re-join fencing and graceful leaves,
        // and their doomed in-flight entries must still resolve or the
        // run never settles.
        let expired: Vec<(WorkerId, WorkerId, u64)> = self
            .in_flight
            .iter()
            .filter(|((_, dst, _), entry)| {
                let doom_expired = entry
                    .doomed_since
                    .map(|since| now.duration_since(since) > DOOM_GRACE)
                    .unwrap_or(false);
                let lost_on_wire = self.timeout.is_some_and(|timeout| {
                    now.duration_since(entry.since) > timeout
                        && self
                            .members
                            .get(dst.index())
                            .map(|m| m.is_alive() && m.idle)
                            .unwrap_or(false)
                });
                doom_expired || lost_on_wire
            })
            .map(|(key, _)| *key)
            .collect();
        for key in expired {
            if let Some(entry) = self.in_flight.remove(&key) {
                self.pool.extend(entry.jobs);
            }
        }
        dead
    }

    /// Declares a member dead and reclaims everything it owned.
    pub fn mark_dead(&mut self, worker: WorkerId) {
        let Some(member) = self.members.get_mut(worker.index()) else {
            return;
        };
        if !member.is_alive() {
            return;
        }
        member.health = MemberHealth::Dead;
        self.reclaim(worker);
    }

    /// Reclaims a dead member's jobs. The ledger is drained into the pool
    /// immediately; in-flight batches touching the corpse are *doomed*
    /// rather than taken at once, because a resolving event may already be
    /// in the coordinator's receive queue (the destination's import
    /// acknowledgement for a batch the corpse sent, or the live sender's
    /// `Sent`/`Requeued` outcome for a batch towards the corpse). Entries
    /// in `Sent` state towards the corpse can only ever be acknowledged by
    /// the corpse itself, whose frames are now rejected — those are pooled
    /// immediately. Idempotent: the ledger is drained and the member no
    /// longer accepts status reports, so jobs are reclaimed exactly once.
    fn reclaim(&mut self, worker: WorkerId) {
        let now = Instant::now();
        let member = &mut self.members[worker.index()];
        self.pool.extend(std::mem::take(&mut member.ledger));
        let touching: Vec<(WorkerId, WorkerId, u64)> = self
            .in_flight
            .keys()
            .filter(|(src, dst, _)| *src == worker || *dst == worker)
            .copied()
            .collect();
        for key in touching {
            let (_, dst, _) = key;
            let take_now = dst == worker
                && self
                    .in_flight
                    .get(&key)
                    .map(|e| e.state == InFlightState::Sent)
                    .unwrap_or(false);
            if take_now {
                if let Some(entry) = self.in_flight.remove(&key) {
                    self.pool.extend(entry.jobs);
                }
            } else if let Some(entry) = self.in_flight.get_mut(&key) {
                entry.doomed_since.get_or_insert(now);
            }
        }
    }

    /// Records the portfolio's strategy assignment for a member (kept here
    /// so the run summary and checkpoints can attribute each member's work
    /// to a strategy).
    pub fn set_strategy(&mut self, worker: WorkerId, strategy: c9_vm::StrategyKind) {
        if let Some(member) = self.members.get_mut(worker.index()) {
            member.strategy = Some(strategy);
        }
    }

    /// Seeds the re-injection pool (resumed checkpoint frontier).
    pub fn seed_pool(&mut self, jobs: Vec<Job>) {
        self.pool.extend(jobs);
    }

    /// Takes the jobs currently awaiting re-injection.
    pub fn take_pool(&mut self) -> Vec<Job> {
        std::mem::take(&mut self.pool)
    }

    /// Takes the jobs members have exported to the coordinator itself
    /// (federation harvests) since the last call.
    pub fn take_harvest(&mut self) -> Vec<Job> {
        std::mem::take(&mut self.harvest)
    }

    /// Registers a coordinator-injected batch so it is tracked like any
    /// other in-flight transfer until the destination acknowledges it.
    /// Returns the sequence number to put into the `Inject` control.
    pub fn record_inject(&mut self, destination: WorkerId, jobs: Vec<Job>, now: Instant) -> u64 {
        self.inject_seq += 1;
        self.in_flight.insert(
            (COORDINATOR, destination, self.inject_seq),
            InFlight {
                jobs,
                state: InFlightState::Sent,
                since: now,
                doomed_since: None,
            },
        );
        self.inject_seq
    }

    /// Rolls back a failed inject: the jobs return to the pool.
    pub fn cancel_inject(&mut self, destination: WorkerId, seq: u64) {
        if let Some(entry) = self.in_flight.remove(&(COORDINATOR, destination, seq)) {
            self.pool.extend(entry.jobs);
        }
    }

    /// Whether no job is in flight or awaiting re-injection — together with
    /// every live worker reporting an empty queue, this is the cluster-wide
    /// exhaustion condition.
    pub fn settled(&self) -> bool {
        self.in_flight.is_empty() && self.pool.is_empty()
    }

    /// All members (indexed by worker id).
    pub fn members(&self) -> &[MemberState] {
        &self.members
    }

    /// One member, when it exists.
    pub fn member(&self, worker: WorkerId) -> Option<&MemberState> {
        self.members.get(worker.index())
    }

    /// Identities of all live members.
    pub fn alive(&self) -> Vec<WorkerId> {
        self.members
            .iter()
            .filter(|m| m.is_alive())
            .map(|m| m.worker)
            .collect()
    }

    /// Number of live members.
    pub fn alive_count(&self) -> usize {
        self.members.iter().filter(|m| m.is_alive()).count()
    }

    /// Total members ever admitted.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no member was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The wire-format peer table announced to workers.
    pub fn peer_infos(&self) -> Vec<PeerInfo> {
        self.members
            .iter()
            .map(|m| PeerInfo {
                worker: m.worker,
                addr: m.addr.clone(),
                epoch: m.epoch,
                alive: m.is_alive(),
            })
            .collect()
    }

    /// The global frontier: every ledger, every in-flight batch, and the
    /// pool. This is what a checkpoint must persist for a resumed run to
    /// re-execute exactly the pending work.
    pub fn frontier_jobs(&self) -> Vec<Job> {
        let mut jobs: BTreeSet<Job> = BTreeSet::new();
        for member in &self.members {
            jobs.extend(member.ledger.iter().cloned());
        }
        for entry in self.in_flight.values() {
            jobs.extend(entry.jobs.iter().cloned());
        }
        jobs.extend(self.pool.iter().cloned());
        jobs.extend(self.harvest.iter().cloned());
        jobs.into_iter().collect()
    }
}

/// A serialized snapshot of a run: what each worker had completed (stats)
/// and what remained pending (the global frontier), plus accumulated
/// coverage. Written periodically by the coordinator and at the end of a
/// limited run; `--resume` continues from it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The run this checkpoint belongs to. Purely informational on resume —
    /// a resumed run is a *new* run with a fresh id — but it lets a run
    /// service tie a preempted run's frozen state back to its registry
    /// entry.
    pub run: RunId,
    /// The workload name, to catch resuming against the wrong target.
    pub target: String,
    /// Per-worker statistics of prior (checkpointed) work, flattened
    /// across chained resumes.
    pub base_stats: Vec<WorkerStats>,
    /// The encoded global frontier ([`JobTree::encode`]).
    pub frontier: Vec<u8>,
    /// Accumulated global coverage.
    pub coverage: CoverageSet,
    /// Wall-clock time already spent across prior runs.
    pub elapsed: Duration,
    /// The strategy portfolio's state (mix, adaptation flag, per-strategy
    /// yield history), so a resumed run keeps the evidence it already
    /// gathered.
    pub portfolio: crate::portfolio::PortfolioCheckpoint,
}

impl Checkpoint {
    /// The pending jobs this checkpoint carries.
    pub fn jobs(&self) -> Vec<Job> {
        JobTree::decode(&self.frontier)
            .map(|t| t.to_jobs())
            .unwrap_or_default()
    }

    /// Total paths completed by the checkpointed prior runs.
    pub fn base_paths(&self) -> u64 {
        self.base_stats.iter().map(|s| s.paths_completed).sum()
    }

    /// Serializes and writes the checkpoint atomically (temp file +
    /// rename), so a crash mid-write never corrupts the previous one.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let bytes = bincode::serialize(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint written by [`Checkpoint::save`].
    pub fn load(path: &Path) -> std::io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        bincode::deserialize(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c9_vm::PathChoice;

    fn job(bits: &[bool]) -> Job {
        Job::new(bits.iter().map(|b| PathChoice::Branch(*b)).collect())
    }

    fn encoded(jobs: &[Job]) -> Vec<u8> {
        JobTree::from_jobs(jobs).encode()
    }

    fn status(w: WorkerId, epoch: u64, frontier: Option<&[Job]>) -> StatusReport {
        StatusReport {
            run: RunId(1),
            worker: w,
            epoch,
            queue_length: frontier.map(|f| f.len() as u64).unwrap_or(0),
            coverage: CoverageSet::new(8),
            stats: WorkerStats::default(),
            idle: false,
            strategy: c9_vm::StrategyKind::default(),
            frontier: frontier.map(encoded),
            new_bugs: Vec::new(),
            transfers: Vec::new(),
            gossip: None,
        }
    }

    fn two_member_cluster(timeout: Duration) -> (Membership, Instant) {
        let now = Instant::now();
        let mut m = Membership::new(Some(timeout));
        m.add_static("127.0.0.1:1".into(), now);
        m.add_static("127.0.0.1:2".into(), now);
        (m, now)
    }

    #[test]
    fn heartbeat_timeout_marks_dead_and_reclaims_exactly_once() {
        let (mut m, now) = two_member_cluster(Duration::from_millis(100));
        let jobs = [job(&[true]), job(&[false, true])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&jobs)), now));

        // Worker 1 keeps heartbeating; worker 0 goes silent.
        let later = now + Duration::from_millis(200);
        assert!(m.record_heartbeat(WorkerId(1), 2, later));
        let dead = m.detect_failures(later);
        assert_eq!(dead, vec![WorkerId(0)]);
        assert_eq!(m.member(WorkerId(0)).unwrap().health, MemberHealth::Dead);

        // The dead worker's frontier is reclaimed, exactly once.
        let reclaimed = m.take_pool();
        assert_eq!(reclaimed.len(), 2);
        let even_later = later + Duration::from_secs(1);
        assert!(m.record_heartbeat(WorkerId(1), 2, even_later));
        assert!(m.detect_failures(even_later).is_empty());
        assert!(m.take_pool().is_empty(), "jobs must be reclaimed only once");

        // And the corpse rejects further reports.
        assert!(!m.record_status(&status(WorkerId(0), 1, Some(&jobs)), later));
        assert!(!m.record_heartbeat(WorkerId(0), 1, later));
    }

    #[test]
    fn heartbeats_keep_members_alive() {
        let (mut m, now) = two_member_cluster(Duration::from_millis(100));
        let mut t = now;
        for _ in 0..5 {
            t += Duration::from_millis(50);
            assert!(m.record_heartbeat(WorkerId(0), 1, t));
            assert!(m.record_heartbeat(WorkerId(1), 2, t));
            assert!(m.detect_failures(t).is_empty());
        }
    }

    #[test]
    fn stale_epoch_reports_are_fenced_off() {
        let now = Instant::now();
        let mut m = Membership::new(None);
        let (w, epoch) = m.add_static("a:1".into(), now);
        assert!(m.record_status(&status(w, epoch, None), now));
        assert!(!m.record_status(&status(w, epoch + 1, None), now));
        assert!(!m.record_status(&status(w, epoch - 1, None), now));
    }

    #[test]
    fn rejoin_fences_previous_incarnation_and_reclaims_its_jobs() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let jobs = [job(&[true, true])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&jobs)), now));

        let (new_id, new_epoch) = m.join("127.0.0.1:9".into(), Some((WorkerId(0), 1)), now);
        assert_eq!(new_id, WorkerId(2));
        assert!(new_epoch > 1);
        assert_eq!(m.member(WorkerId(0)).unwrap().health, MemberHealth::Dead);
        assert_eq!(m.take_pool().len(), 1);
        // Old-incarnation frames are rejected from now on.
        assert!(!m.record_status(&status(WorkerId(0), 1, Some(&jobs)), now));
    }

    #[test]
    fn graceful_leave_reclaims_immediately() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let jobs = [job(&[false]), job(&[true])];
        assert!(m.record_status(&status(WorkerId(1), 2, Some(&jobs)), now));
        assert!(m.leave(WorkerId(1), 2));
        assert_eq!(m.member(WorkerId(1)).unwrap().health, MemberHealth::Left);
        assert_eq!(m.take_pool().len(), 2);
        assert!(!m.leave(WorkerId(1), 2), "second leave is a no-op");
    }

    #[test]
    fn export_then_import_moves_jobs_between_ledgers() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let all = [job(&[true]), job(&[false])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&all)), now));

        // Worker 0 exports one job to worker 1.
        let moved = [job(&[false])];
        let mut report = status(WorkerId(0), 1, None);
        report.transfers = vec![TransferEvent::Exported {
            destination: WorkerId(1),
            seq: 1,
            encoded: encoded(&moved),
        }];
        assert!(m.record_status(&report, now));
        assert_eq!(m.member(WorkerId(0)).unwrap().ledger_len(), 1);
        assert!(!m.settled(), "batch is in flight");

        // Worker 1 acknowledges the import.
        let mut ack = status(WorkerId(1), 2, None);
        ack.transfers = vec![TransferEvent::Imported {
            source: WorkerId(0),
            seq: 1,
            encoded: encoded(&moved),
        }];
        assert!(m.record_status(&ack, now));
        assert!(m.settled());
        assert_eq!(m.member(WorkerId(1)).unwrap().ledger_len(), 1);
    }

    #[test]
    fn import_ack_arriving_before_export_notice_still_routes_jobs() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let all = [job(&[true]), job(&[false])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&all)), now));

        // The receiver's payload-carrying ack races ahead of the sender's
        // notice; the payload alone must move the jobs between ledgers.
        let moved = [job(&[true])];
        let mut ack = status(WorkerId(1), 2, None);
        ack.transfers = vec![TransferEvent::Imported {
            source: WorkerId(0),
            seq: 1,
            encoded: encoded(&moved),
        }];
        assert!(m.record_status(&ack, now));
        assert_eq!(m.member(WorkerId(0)).unwrap().ledger_len(), 1);
        assert_eq!(m.member(WorkerId(1)).unwrap().ledger_len(), 1);

        let mut notice = status(WorkerId(0), 1, None);
        notice.transfers = vec![TransferEvent::Exported {
            destination: WorkerId(1),
            seq: 1,
            encoded: encoded(&moved),
        }];
        assert!(m.record_status(&notice, now));
        assert!(m.settled());
        assert_eq!(m.member(WorkerId(0)).unwrap().ledger_len(), 1);
        assert_eq!(m.member(WorkerId(1)).unwrap().ledger_len(), 1);
    }

    #[test]
    fn ack_after_sender_death_moves_jobs_out_of_the_reclaimed_set() {
        // Worker 0 ships a batch and dies before flushing the export
        // notice. Its ledger still carries the jobs; the receiver's
        // payload ack must pull them out so they are not re-injected.
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let all = [job(&[true]), job(&[false])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&all)), now));

        let moved = [job(&[false])];
        let mut ack = status(WorkerId(1), 2, None);
        ack.transfers = vec![TransferEvent::Imported {
            source: WorkerId(0),
            seq: 3,
            encoded: encoded(&moved),
        }];
        assert!(m.record_status(&ack, now));

        m.mark_dead(WorkerId(0));
        let reclaimed = m.take_pool();
        assert_eq!(reclaimed, vec![job(&[true])], "only the unshipped job");
        assert_eq!(m.member(WorkerId(1)).unwrap().ledger_len(), 1);
    }

    #[test]
    fn requeued_export_returns_jobs_to_the_source_ledger() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let all = [job(&[true])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&all)), now));
        let mut notice = status(WorkerId(0), 1, None);
        notice.transfers = vec![TransferEvent::Exported {
            destination: WorkerId(1),
            seq: 1,
            encoded: encoded(&all),
        }];
        assert!(m.record_status(&notice, now));
        assert_eq!(m.member(WorkerId(0)).unwrap().ledger_len(), 0);

        let mut requeue = status(WorkerId(0), 1, None);
        requeue.transfers = vec![TransferEvent::Requeued {
            destination: WorkerId(1),
            seq: 1,
        }];
        assert!(m.record_status(&requeue, now));
        assert!(m.settled());
        assert_eq!(m.member(WorkerId(0)).unwrap().ledger_len(), 1);
    }

    #[test]
    fn death_reclaims_batches_in_flight_to_and_from_the_corpse() {
        let now = Instant::now();
        let timeout = Duration::from_millis(300);
        let mut m = Membership::new(Some(timeout));
        for i in 0..3 {
            m.add_static(format!("a:{i}"), now);
        }
        // 0 → 1 (sent) and 1 → 2 (sent), neither acknowledged; then worker
        // 1 dies.
        let mut n0 = status(WorkerId(0), 1, None);
        n0.transfers = vec![
            TransferEvent::Exported {
                destination: WorkerId(1),
                seq: 1,
                encoded: encoded(&[job(&[true])]),
            },
            TransferEvent::Sent {
                destination: WorkerId(1),
                seq: 1,
            },
        ];
        assert!(m.record_status(&n0, now));
        let mut n1 = status(WorkerId(1), 2, None);
        n1.transfers = vec![
            TransferEvent::Exported {
                destination: WorkerId(2),
                seq: 1,
                encoded: encoded(&[job(&[false])]),
            },
            TransferEvent::Sent {
                destination: WorkerId(2),
                seq: 1,
            },
        ];
        assert!(m.record_status(&n1, now));

        m.mark_dead(WorkerId(1));
        // The batch *towards* the corpse was in wire custody: nobody can
        // acknowledge it, so it is reclaimed at once. The batch *from* the
        // corpse might still be acknowledged by its live receiver — it
        // waits out the grace period first.
        assert_eq!(m.take_pool(), vec![job(&[true])]);
        assert!(!m.settled());
        let later = now + DOOM_GRACE + Duration::from_millis(50);
        assert!(m.record_heartbeat(WorkerId(0), 1, later));
        assert!(m.record_heartbeat(WorkerId(2), 3, later));
        assert!(m.detect_failures(later).is_empty());
        assert_eq!(m.take_pool(), vec![job(&[false])]);
        assert!(m.settled());
    }

    #[test]
    fn doomed_batch_from_corpse_resolved_by_late_ack_is_not_reclaimed() {
        let now = Instant::now();
        let timeout = Duration::from_millis(300);
        let mut m = Membership::new(Some(timeout));
        m.add_static("a:0".into(), now);
        m.add_static("a:1".into(), now);
        let mut notice = status(WorkerId(0), 1, None);
        notice.transfers = vec![
            TransferEvent::Exported {
                destination: WorkerId(1),
                seq: 1,
                encoded: encoded(&[job(&[true])]),
            },
            TransferEvent::Sent {
                destination: WorkerId(1),
                seq: 1,
            },
        ];
        assert!(m.record_status(&notice, now));
        m.mark_dead(WorkerId(0));
        assert!(m.take_pool().is_empty(), "entry only doomed, not taken");

        // The receiver's ack was already queued when the sender died: it
        // resolves the doomed entry within the grace period.
        let mut ack = status(WorkerId(1), 2, None);
        ack.transfers = vec![TransferEvent::Imported {
            source: WorkerId(0),
            seq: 1,
            encoded: encoded(&[job(&[true])]),
        }];
        assert!(m.record_status(&ack, now + Duration::from_millis(10)));
        assert_eq!(m.member(WorkerId(1)).unwrap().ledger_len(), 1);
        let later = now + DOOM_GRACE + Duration::from_millis(50);
        assert!(m.record_heartbeat(WorkerId(1), 2, later));
        assert!(m.detect_failures(later).is_empty());
        assert!(
            m.take_pool().is_empty(),
            "resolved entry must not be reclaimed"
        );
        assert!(m.settled());
    }

    #[test]
    fn requeued_after_destination_death_returns_jobs_without_duplication() {
        // The balancer asked 0 to ship to 1 just as 1 died: 0's write
        // fails and it requeues. The announced entry is doomed at 1's
        // death but 0's Requeued outcome must win over the grace sweep.
        let (mut m, now) = two_member_cluster(Duration::from_millis(300));
        let all = [job(&[true])];
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&all)), now));
        let mut notice = status(WorkerId(0), 1, None);
        notice.transfers = vec![TransferEvent::Exported {
            destination: WorkerId(1),
            seq: 1,
            encoded: encoded(&all),
        }];
        assert!(m.record_status(&notice, now));
        m.mark_dead(WorkerId(1));
        assert!(m.take_pool().is_empty());

        let mut requeue = status(WorkerId(0), 1, None);
        requeue.transfers = vec![TransferEvent::Requeued {
            destination: WorkerId(1),
            seq: 1,
        }];
        assert!(m.record_status(&requeue, now + Duration::from_millis(5)));
        assert_eq!(m.member(WorkerId(0)).unwrap().ledger_len(), 1);
        let later = now + DOOM_GRACE + Duration::from_millis(50);
        assert!(m.record_heartbeat(WorkerId(0), 1, later));
        assert!(m.detect_failures(later).is_empty());
        assert!(
            m.take_pool().is_empty(),
            "requeued jobs stay with the sender"
        );
        assert!(m.settled());
    }

    #[test]
    fn sent_into_an_already_dead_destination_is_reclaimed_on_the_outcome() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        m.mark_dead(WorkerId(1));
        let _ = m.take_pool();
        let mut notice = status(WorkerId(0), 1, None);
        notice.transfers = vec![
            TransferEvent::Exported {
                destination: WorkerId(1),
                seq: 7,
                encoded: encoded(&[job(&[true, false])]),
            },
            TransferEvent::Sent {
                destination: WorkerId(1),
                seq: 7,
            },
        ];
        assert!(m.record_status(&notice, now));
        assert_eq!(m.take_pool().len(), 1);
        assert!(m.settled());
    }

    #[test]
    fn coordinator_inject_is_tracked_until_acknowledged() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let seq = m.record_inject(WorkerId(1), vec![job(&[true])], now);
        assert!(!m.settled());
        let mut ack = status(WorkerId(1), 2, None);
        ack.transfers = vec![TransferEvent::Imported {
            source: COORDINATOR,
            seq,
            encoded: encoded(&[job(&[true])]),
        }];
        assert!(m.record_status(&ack, now));
        assert!(m.settled());
        assert_eq!(m.member(WorkerId(1)).unwrap().ledger_len(), 1);
    }

    #[test]
    fn cancelled_inject_returns_jobs_to_the_pool() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        let seq = m.record_inject(WorkerId(1), vec![job(&[true])], now);
        m.cancel_inject(WorkerId(1), seq);
        assert_eq!(m.take_pool().len(), 1);
    }

    #[test]
    fn stale_in_flight_batch_to_an_idle_destination_is_swept() {
        let (mut m, now) = two_member_cluster(Duration::from_millis(100));
        let mut notice = status(WorkerId(0), 1, None);
        notice.transfers = vec![TransferEvent::Exported {
            destination: WorkerId(1),
            seq: 1,
            encoded: encoded(&[job(&[true])]),
        }];
        assert!(m.record_status(&notice, now));

        // The destination reports idle long past the timeout without ever
        // acknowledging: the batch died on the wire.
        let later = now + Duration::from_millis(500);
        let mut idle = status(WorkerId(1), 2, None);
        idle.idle = true;
        assert!(m.record_status(&idle, later));
        assert!(m.record_heartbeat(WorkerId(0), 1, later));
        assert!(m.detect_failures(later).is_empty());
        assert_eq!(m.take_pool().len(), 1);
        assert!(m.settled());
    }

    #[test]
    fn frontier_union_covers_ledgers_in_flight_and_pool() {
        let (mut m, now) = two_member_cluster(Duration::from_secs(10));
        assert!(m.record_status(&status(WorkerId(0), 1, Some(&[job(&[true])])), now));
        let mut notice = status(WorkerId(1), 2, Some(&[job(&[false])]));
        notice.transfers = vec![TransferEvent::Exported {
            destination: WorkerId(0),
            seq: 1,
            encoded: encoded(&[job(&[false, false])]),
        }];
        assert!(m.record_status(&notice, now));
        m.seed_pool(vec![job(&[true, true])]);
        let frontier = m.frontier_jobs();
        assert_eq!(frontier.len(), 4);
    }

    #[test]
    fn eagerly_shipped_bugs_survive_on_the_member_record() {
        let (mut m, now) = two_member_cluster(Duration::from_millis(100));
        let mut report = status(WorkerId(0), 1, Some(&[job(&[true])]));
        report.new_bugs = vec![TestCase {
            inputs: Vec::new(),
            path: vec![PathChoice::Branch(true)],
            termination: c9_vm::TerminationReason::Exit(1),
            instructions: 3,
        }];
        assert!(m.record_status(&report, now));
        assert_eq!(m.member(WorkerId(0)).unwrap().status_bugs.len(), 1);
        // The record outlives the member's death — that is its purpose.
        m.mark_dead(WorkerId(0));
        assert_eq!(m.member(WorkerId(0)).unwrap().status_bugs.len(), 1);
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let jobs = vec![job(&[true]), job(&[false, true])];
        let checkpoint = Checkpoint {
            run: RunId(1),
            target: "memcached".into(),
            base_stats: vec![WorkerStats {
                paths_completed: 7,
                ..WorkerStats::default()
            }],
            frontier: encoded(&jobs),
            coverage: CoverageSet::new(32),
            elapsed: Duration::from_secs(3),
            portfolio: crate::portfolio::PortfolioCheckpoint {
                mix: vec![c9_vm::StrategyKind::Dfs, c9_vm::StrategyKind::Cupa],
                adapt: true,
                yields: vec![(
                    c9_vm::StrategyKind::Cupa,
                    crate::portfolio::StrategyYield {
                        new_lines: 12.0,
                        reports: 3.0,
                    },
                )],
            },
        };
        let dir = std::env::temp_dir().join(format!("c9-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.target, "memcached");
        assert_eq!(loaded.base_paths(), 7);
        assert_eq!(loaded.jobs(), checkpoint.jobs());
        assert_eq!(loaded.elapsed, Duration::from_secs(3));
        assert_eq!(loaded.portfolio.mix, checkpoint.portfolio.mix);
        assert!(loaded.portfolio.adapt);
        assert_eq!(loaded.portfolio.yields, checkpoint.portfolio.yields);
        std::fs::remove_dir_all(&dir).ok();
    }
}
