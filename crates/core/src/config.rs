//! Shared command-line configuration of the two daemons.
//!
//! `c9-coordinator` and `c9-worker` used to carry their own hand-rolled
//! flag loops; this module owns the grammar for both, so a flag means the
//! same thing everywhere, unknown or conflicting flags are typed errors
//! ([`ConfigError`]) instead of ad-hoc `usage()` exits, and the lowering
//! from flags into a [`ClusterConfig`] lives next to the parsing it
//! depends on. The binaries keep only their usage text (which references
//! the target list of `c9-targets` — a crate this one does not depend on)
//! and the exit policy.

use crate::cluster::ClusterConfig;
use crate::portfolio::PortfolioConfig;
use c9_net::ExportOrder;
use c9_solver::SolverBackendKind;
use c9_trace::Level;
use c9_vm::{ReplayCacheConfig, StrategyKind};
use std::path::PathBuf;
use std::time::Duration;

/// A rejected command line, with enough context to tell the operator what
/// to fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A flag the grammar does not know.
    UnknownFlag(String),
    /// A flag that takes a value appeared last, or its value failed to
    /// parse and looked like the next flag.
    MissingValue(String),
    /// A value that does not parse for its flag.
    InvalidValue {
        /// The flag the value belonged to.
        flag: String,
        /// The offending value text.
        value: String,
    },
    /// Two flags (or a flag and a missing prerequisite) that cannot be
    /// combined.
    Conflict(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownFlag(flag) => write!(f, "unknown argument: {flag}"),
            ConfigError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ConfigError::InvalidValue { flag, value } => {
                write!(f, "invalid value for {flag}: {value:?}")
            }
            ConfigError::Conflict(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Flags shared by both daemons: local resource overrides and
/// observability sinks.
#[derive(Clone, Debug, Default)]
pub struct CommonArgs {
    /// `--threads N`: executor threads (worker: overrides run specs).
    pub threads: Option<usize>,
    /// `--replay-cache N[:BYTES]`: prefix-anchor replay cache budget.
    pub replay_cache: Option<ReplayCacheConfig>,
    /// `--solver-cache CAP`: solver query-cache capacity, in entries
    /// (worker: overrides run specs; `0` disables the cache).
    pub solver_cache: Option<usize>,
    /// `--log-level LEVEL`.
    pub log_level: Option<Level>,
    /// `--quiet`: shorthand for `--log-level error`.
    pub quiet: bool,
    /// `--trace-out FILE`: structured JSONL event sink.
    pub trace_out: Option<PathBuf>,
    /// `--trace-chrome FILE`: Chrome-trace span timeline.
    pub trace_chrome: Option<PathBuf>,
}

/// The parsed `c9-coordinator` command line.
#[derive(Clone, Debug)]
pub struct CoordinatorArgs {
    /// Shared daemon flags.
    pub common: CommonArgs,
    /// `--workers LIST`: static worker addresses to dial.
    pub workers: Vec<String>,
    /// `--listen HOST:PORT`: accept elastic worker joins.
    pub listen: Option<String>,
    /// `--serve HOST:PORT`: run the multi-tenant run service with its
    /// NDJSON front door on this address instead of a single run.
    pub serve: Option<String>,
    /// `--sub ROOT:PORT`: run as a federated sub-coordinator — join the
    /// root coordinator at this address as a worker and coordinate the
    /// local group (`--workers` / `--listen`) on its behalf.
    pub sub: Option<String>,
    /// `--max-runs N`: concurrent run slots of the service (default 2).
    pub max_runs: usize,
    /// `--report-dir DIR`: per-run `run-<id>.json` reports (service mode).
    pub report_dir: Option<PathBuf>,
    /// `--min-workers N`.
    pub min_workers: Option<usize>,
    /// `--join-wait SECS`.
    pub join_wait: Duration,
    /// `--target NAME` (single-run mode).
    pub target: String,
    /// `--time-limit SECS`.
    pub time_limit: Option<Duration>,
    /// `--max-paths N`.
    pub max_paths: Option<u64>,
    /// `--generate-tests`.
    pub generate_tests: bool,
    /// `--connect-timeout S`.
    pub connect_timeout: Duration,
    /// `--heartbeat-timeout S`.
    pub heartbeat_timeout: Option<Duration>,
    /// `--heartbeat-interval-ms MS`.
    pub heartbeat_interval: Duration,
    /// `--snapshot-every K`.
    pub snapshot_every: u32,
    /// `--checkpoint FILE`.
    pub checkpoint: Option<PathBuf>,
    /// `--checkpoint-interval S`.
    pub checkpoint_interval: Duration,
    /// `--resume FILE`.
    pub resume: Option<PathBuf>,
    /// `--quantum N`.
    pub quantum: Option<u64>,
    /// `--status-interval-ms MS`.
    pub status_interval: Option<Duration>,
    /// `--balance-interval-ms MS`.
    pub balance_interval: Option<Duration>,
    /// `--strategy NAME`.
    pub strategy: Option<StrategyKind>,
    /// `--portfolio LIST`.
    pub portfolio: Option<Vec<StrategyKind>>,
    /// `--portfolio-adapt`.
    pub portfolio_adapt: bool,
    /// `--export-order shallowest|deepest`.
    pub export_order: Option<ExportOrder>,
    /// `--solver-backend canonical|bitblast|race`.
    pub solver_backend: Option<SolverBackendKind>,
    /// `--cache-gossip on|off`.
    pub cache_gossip: Option<bool>,
    /// `--report-out FILE` (single-run mode).
    pub report_out: Option<PathBuf>,
    /// `--timeline-out FILE`.
    pub timeline_out: Option<PathBuf>,
}

/// The parsed `c9-worker` command line.
#[derive(Clone, Debug)]
pub struct WorkerArgs {
    /// Shared daemon flags.
    pub common: CommonArgs,
    /// `--listen HOST:PORT` (default `127.0.0.1:0`).
    pub listen: String,
    /// `--join HOST:PORT`: elastic membership.
    pub join: Option<String>,
    /// `--once`: exit after the hosted runs drain instead of serving
    /// forever.
    pub once: bool,
}

/// Parses a `--replay-cache` value: `CAPACITY` or `CAPACITY:MAX_BYTES`.
pub fn parse_replay_cache(arg: &str) -> Option<ReplayCacheConfig> {
    let mut parts = arg.splitn(2, ':');
    let capacity = parts.next()?.parse::<usize>().ok()?;
    let max_bytes = match parts.next() {
        Some(bytes) => bytes.parse::<u64>().ok()?,
        None => ReplayCacheConfig::default().max_bytes,
    };
    Some(ReplayCacheConfig {
        capacity,
        max_bytes,
    })
}

struct Cursor<'a> {
    argv: &'a [String],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let arg = self.argv.get(self.i)?;
        self.i += 1;
        Some(arg)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, ConfigError> {
        self.next()
            .ok_or_else(|| ConfigError::MissingValue(flag.to_string()))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, ConfigError> {
        let value = self.value(flag)?;
        value.parse().map_err(|_| ConfigError::InvalidValue {
            flag: flag.to_string(),
            value: value.to_string(),
        })
    }

    fn secs(&mut self, flag: &str) -> Result<Duration, ConfigError> {
        Ok(Duration::from_secs_f64(self.parsed::<f64>(flag)?))
    }

    fn millis(&mut self, flag: &str) -> Result<Duration, ConfigError> {
        Ok(Duration::from_millis(self.parsed::<u64>(flag)?))
    }

    fn path(&mut self, flag: &str) -> Result<PathBuf, ConfigError> {
        Ok(PathBuf::from(self.value(flag)?))
    }
}

fn parse_common(
    cursor: &mut Cursor<'_>,
    flag: &str,
    common: &mut CommonArgs,
) -> Option<Result<(), ConfigError>> {
    let result = match flag {
        "--threads" => cursor
            .parsed::<usize>(flag)
            .map(|n| common.threads = Some(n.max(1))),
        "--replay-cache" => match cursor.value(flag) {
            Ok(value) => match parse_replay_cache(value) {
                Some(config) => {
                    common.replay_cache = Some(config);
                    Ok(())
                }
                None => Err(ConfigError::InvalidValue {
                    flag: flag.to_string(),
                    value: value.to_string(),
                }),
            },
            Err(e) => Err(e),
        },
        "--solver-cache" => cursor
            .parsed::<usize>(flag)
            .map(|n| common.solver_cache = Some(n)),
        "--log-level" => cursor
            .parsed::<Level>(flag)
            .map(|level| common.log_level = Some(level)),
        "--quiet" => {
            common.quiet = true;
            Ok(())
        }
        "--trace-out" => cursor.path(flag).map(|p| common.trace_out = Some(p)),
        "--trace-chrome" => cursor.path(flag).map(|p| common.trace_chrome = Some(p)),
        _ => return None,
    };
    Some(result)
}

/// Parses the `c9-coordinator` argument vector (without the program name).
/// `Err` means the command line is unusable; the caller prints the error
/// and its usage text.
pub fn parse_coordinator_args(argv: &[String]) -> Result<CoordinatorArgs, ConfigError> {
    let mut args = CoordinatorArgs {
        common: CommonArgs::default(),
        workers: Vec::new(),
        listen: None,
        serve: None,
        sub: None,
        max_runs: 2,
        report_dir: None,
        min_workers: None,
        join_wait: Duration::from_secs(60),
        target: String::new(),
        time_limit: None,
        max_paths: None,
        generate_tests: false,
        connect_timeout: Duration::from_secs(15),
        heartbeat_timeout: None,
        heartbeat_interval: Duration::from_millis(25),
        snapshot_every: 1,
        checkpoint: None,
        checkpoint_interval: Duration::from_secs(1),
        resume: None,
        quantum: None,
        status_interval: None,
        balance_interval: None,
        strategy: None,
        portfolio: None,
        portfolio_adapt: false,
        export_order: None,
        solver_backend: None,
        cache_gossip: None,
        report_out: None,
        timeline_out: None,
    };
    let mut cursor = Cursor { argv, i: 0 };
    while let Some(flag) = cursor.next() {
        if let Some(result) = parse_common(&mut cursor, flag, &mut args.common) {
            result?;
            continue;
        }
        match flag {
            "--workers" => {
                args.workers = cursor
                    .value(flag)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--listen" => args.listen = Some(cursor.value(flag)?.to_string()),
            "--serve" => args.serve = Some(cursor.value(flag)?.to_string()),
            "--sub" => args.sub = Some(cursor.value(flag)?.to_string()),
            "--max-runs" => args.max_runs = cursor.parsed::<usize>(flag)?.max(1),
            "--report-dir" => args.report_dir = Some(cursor.path(flag)?),
            "--min-workers" => args.min_workers = Some(cursor.parsed(flag)?),
            "--join-wait" => args.join_wait = cursor.secs(flag)?,
            "--target" => args.target = cursor.value(flag)?.to_string(),
            "--time-limit" => args.time_limit = Some(cursor.secs(flag)?),
            "--max-paths" => args.max_paths = Some(cursor.parsed(flag)?),
            "--generate-tests" => args.generate_tests = true,
            "--connect-timeout" => {
                args.connect_timeout = Duration::from_secs(cursor.parsed(flag)?);
            }
            "--heartbeat-timeout" => args.heartbeat_timeout = Some(cursor.secs(flag)?),
            "--heartbeat-interval-ms" => args.heartbeat_interval = cursor.millis(flag)?,
            "--snapshot-every" => args.snapshot_every = cursor.parsed(flag)?,
            "--checkpoint" => args.checkpoint = Some(cursor.path(flag)?),
            "--checkpoint-interval" => args.checkpoint_interval = cursor.secs(flag)?,
            "--resume" => args.resume = Some(cursor.path(flag)?),
            "--quantum" => args.quantum = Some(cursor.parsed(flag)?),
            "--status-interval-ms" => args.status_interval = Some(cursor.millis(flag)?),
            "--balance-interval-ms" => args.balance_interval = Some(cursor.millis(flag)?),
            "--strategy" => args.strategy = Some(cursor.parsed(flag)?),
            "--portfolio" => {
                let list = cursor.value(flag)?;
                args.portfolio = Some(PortfolioConfig::parse_mix(list).map_err(|_| {
                    ConfigError::InvalidValue {
                        flag: flag.to_string(),
                        value: list.to_string(),
                    }
                })?);
            }
            "--portfolio-adapt" => args.portfolio_adapt = true,
            "--export-order" => args.export_order = Some(cursor.parsed(flag)?),
            "--solver-backend" => args.solver_backend = Some(cursor.parsed(flag)?),
            "--cache-gossip" => {
                let value = cursor.value(flag)?;
                args.cache_gossip = Some(match value {
                    "on" | "true" => true,
                    "off" | "false" => false,
                    _ => {
                        return Err(ConfigError::InvalidValue {
                            flag: flag.to_string(),
                            value: value.to_string(),
                        })
                    }
                });
            }
            "--report-out" => args.report_out = Some(cursor.path(flag)?),
            "--timeline-out" => args.timeline_out = Some(cursor.path(flag)?),
            other => return Err(ConfigError::UnknownFlag(other.to_string())),
        }
    }
    if args.strategy.is_some() && args.portfolio.is_some() {
        return Err(ConfigError::Conflict(
            "--strategy and --portfolio are mutually exclusive (the portfolio \
             assigns per-worker strategies)"
                .into(),
        ));
    }
    if args.portfolio_adapt && args.portfolio.is_none() {
        return Err(ConfigError::Conflict(
            "--portfolio-adapt requires --portfolio".into(),
        ));
    }
    if let Some(sub) = &args.sub {
        if args.serve.is_some() {
            return Err(ConfigError::Conflict(
                "--sub and --serve are mutually exclusive (a sub-coordinator \
                 serves exactly the run its root ships)"
                    .into(),
            ));
        }
        if !args.target.is_empty() {
            return Err(ConfigError::Conflict(
                "--sub and --target are mutually exclusive (the root \
                 coordinator owns the workload; the sub receives it as a \
                 run spec)"
                    .into(),
            ));
        }
        if args.resume.is_some() || args.checkpoint.is_some() || args.report_out.is_some() {
            return Err(ConfigError::Conflict(
                "--checkpoint, --resume, and --report-out belong to the root \
                 coordinator, not a --sub group"
                    .into(),
            ));
        }
        if args.workers.is_empty() && args.listen.is_none() {
            return Err(ConfigError::MissingValue("--workers or --listen".into()));
        }
        if sub.is_empty() {
            return Err(ConfigError::MissingValue("--sub".into()));
        }
        return Ok(args);
    }
    if args.serve.is_some() {
        if !args.target.is_empty() {
            return Err(ConfigError::Conflict(
                "--serve and --target are mutually exclusive (service mode \
                 takes targets through the front door)"
                    .into(),
            ));
        }
        if args.resume.is_some() || args.checkpoint.is_some() {
            return Err(ConfigError::Conflict(
                "--serve keeps preemption checkpoints in memory; --checkpoint \
                 and --resume are single-run flags"
                    .into(),
            ));
        }
        if args.report_out.is_some() {
            return Err(ConfigError::Conflict(
                "--serve writes per-run reports; use --report-dir instead of \
                 --report-out"
                    .into(),
            ));
        }
    } else {
        if args.target.is_empty() {
            return Err(ConfigError::MissingValue("--target".into()));
        }
        if args.report_dir.is_some() {
            return Err(ConfigError::Conflict(
                "--report-dir is a service-mode flag; use --report-out for a \
                 single run"
                    .into(),
            ));
        }
    }
    if args.workers.is_empty() && args.listen.is_none() {
        return Err(ConfigError::MissingValue("--workers or --listen".into()));
    }
    Ok(args)
}

/// Parses the `c9-worker` argument vector (without the program name).
pub fn parse_worker_args(argv: &[String]) -> Result<WorkerArgs, ConfigError> {
    let mut args = WorkerArgs {
        common: CommonArgs::default(),
        listen: String::from("127.0.0.1:0"),
        join: None,
        once: false,
    };
    let mut cursor = Cursor { argv, i: 0 };
    while let Some(flag) = cursor.next() {
        if let Some(result) = parse_common(&mut cursor, flag, &mut args.common) {
            result?;
            continue;
        }
        match flag {
            "--listen" => args.listen = cursor.value(flag)?.to_string(),
            "--join" => args.join = Some(cursor.value(flag)?.to_string()),
            "--once" => args.once = true,
            other => return Err(ConfigError::UnknownFlag(other.to_string())),
        }
    }
    Ok(args)
}

impl CoordinatorArgs {
    /// Lowers the parsed flags into the run configuration, minus the resume
    /// checkpoint (loading it from disk is the binary's job — it owns the
    /// target-mismatch exit policy).
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut config = ClusterConfig {
            num_workers: self.workers.len().max(1),
            time_limit: self.time_limit,
            max_total_paths: self.max_paths,
            failure_timeout: self.heartbeat_timeout,
            heartbeat_interval: self.heartbeat_interval,
            snapshot_every: self.snapshot_every,
            checkpoint_path: self.checkpoint.clone(),
            checkpoint_interval: self.checkpoint_interval,
            ..ClusterConfig::default()
        };
        config.worker.generate_test_cases = self.generate_tests;
        if let Some(strategy) = self.strategy {
            config.worker.strategy = strategy;
        }
        if let Some(mix) = &self.portfolio {
            config.portfolio = Some(PortfolioConfig {
                mix: mix.clone(),
                adapt: self.portfolio_adapt,
            });
        }
        if let Some(order) = self.export_order {
            config.worker.export_order = order;
        }
        if let Some(quantum) = self.quantum {
            config.quantum = quantum;
        }
        if let Some(threads) = self.common.threads {
            config.worker.threads = threads;
        }
        if let Some(replay_cache) = self.common.replay_cache {
            config.worker.replay_cache = replay_cache;
        }
        if self.common.solver_cache.is_some() {
            config.worker.solver_cache = self.common.solver_cache;
        }
        if let Some(backend) = self.solver_backend {
            config.worker.solver_backend = backend;
        }
        if let Some(gossip) = self.cache_gossip {
            config.worker.cache_gossip = gossip;
        }
        if let Some(interval) = self.status_interval {
            config.status_interval = interval;
        }
        if let Some(interval) = self.balance_interval {
            config.balance_interval = interval;
        }
        config
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = parse_coordinator_args(&argv("--target foo --workers a:1 --frobnicate"))
            .expect_err("unknown flag must be rejected");
        assert_eq!(err, ConfigError::UnknownFlag("--frobnicate".into()));
        let err = parse_worker_args(&argv("--listen a:1 --max-paths 5"))
            .expect_err("coordinator-only flag must be rejected by the worker");
        assert_eq!(err, ConfigError::UnknownFlag("--max-paths".into()));
    }

    #[test]
    fn rejects_conflicting_flags() {
        let err = parse_coordinator_args(&argv(
            "--target foo --workers a:1 --strategy dfs --portfolio dfs,bfs",
        ))
        .expect_err("--strategy with --portfolio must conflict");
        assert!(matches!(err, ConfigError::Conflict(_)));

        let err = parse_coordinator_args(&argv("--target foo --workers a:1 --portfolio-adapt"))
            .expect_err("--portfolio-adapt without --portfolio must conflict");
        assert!(matches!(err, ConfigError::Conflict(_)));

        let err = parse_coordinator_args(&argv("--serve 0:0 --workers a:1 --target foo"))
            .expect_err("--serve with --target must conflict");
        assert!(matches!(err, ConfigError::Conflict(_)));

        let err = parse_coordinator_args(&argv("--serve 0:0 --workers a:1 --resume ckpt"))
            .expect_err("--serve with --resume must conflict");
        assert!(matches!(err, ConfigError::Conflict(_)));
    }

    #[test]
    fn rejects_missing_values() {
        let err = parse_coordinator_args(&argv("--workers a:1 --target"))
            .expect_err("--target without a value must be rejected");
        assert_eq!(err, ConfigError::MissingValue("--target".into()));
        let err = parse_coordinator_args(&argv("--workers a:1"))
            .expect_err("neither --target nor --serve must be rejected");
        assert_eq!(err, ConfigError::MissingValue("--target".into()));
        let err = parse_coordinator_args(&argv("--target foo --time-limit soon --workers a:1"))
            .expect_err("non-numeric duration must be rejected");
        assert_eq!(
            err,
            ConfigError::InvalidValue {
                flag: "--time-limit".into(),
                value: "soon".into()
            }
        );
    }

    #[test]
    fn lowers_flags_into_cluster_config() {
        let args = parse_coordinator_args(&argv(
            "--target foo --workers a:1,b:2 --max-paths 100 --quantum 64 \
             --threads 3 --generate-tests --export-order shallowest \
             --status-interval-ms 7 --replay-cache 5:1000",
        ))
        .expect("valid command line");
        let config = args.cluster_config();
        assert_eq!(config.num_workers, 2);
        assert_eq!(config.max_total_paths, Some(100));
        assert_eq!(config.quantum, 64);
        assert_eq!(config.worker.threads, 3);
        assert!(config.worker.generate_test_cases);
        assert_eq!(config.worker.export_order, ExportOrder::Shallowest);
        assert_eq!(config.status_interval, Duration::from_millis(7));
        assert_eq!(config.worker.replay_cache.capacity, 5);
        assert_eq!(config.worker.replay_cache.max_bytes, 1000);
    }

    #[test]
    fn lowers_solver_flags_into_cluster_config() {
        let args = parse_coordinator_args(&argv(
            "--target foo --workers a:1 --solver-cache 4096 \
             --solver-backend race --cache-gossip off",
        ))
        .expect("valid command line");
        let config = args.cluster_config();
        assert_eq!(config.worker.solver_cache, Some(4096));
        assert_eq!(config.worker.solver_backend, SolverBackendKind::Race);
        assert!(!config.worker.cache_gossip);

        let defaults = parse_coordinator_args(&argv("--target foo --workers a:1"))
            .expect("valid command line")
            .cluster_config();
        assert_eq!(defaults.worker.solver_cache, None);
        assert_eq!(defaults.worker.solver_backend, SolverBackendKind::Canonical);
        assert!(defaults.worker.cache_gossip, "gossip defaults on");

        let err =
            parse_coordinator_args(&argv("--target foo --workers a:1 --cache-gossip sideways"))
                .expect_err("--cache-gossip only accepts on/off");
        assert_eq!(
            err,
            ConfigError::InvalidValue {
                flag: "--cache-gossip".into(),
                value: "sideways".into()
            }
        );
    }

    #[test]
    fn worker_accepts_solver_cache_override() {
        let args = parse_worker_args(&argv("--listen a:1 --solver-cache 128"))
            .expect("valid worker command line");
        assert_eq!(args.common.solver_cache, Some(128));
        let err = parse_worker_args(&argv("--listen a:1 --solver-backend race"))
            .expect_err("--solver-backend is a run-level (coordinator) decision");
        assert_eq!(err, ConfigError::UnknownFlag("--solver-backend".into()));
    }

    #[test]
    fn parses_service_mode() {
        let args = parse_coordinator_args(&argv(
            "--serve 127.0.0.1:0 --workers a:1 --max-runs 4 --report-dir out",
        ))
        .expect("valid service command line");
        assert_eq!(args.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(args.max_runs, 4);
        assert_eq!(args.report_dir, Some(PathBuf::from("out")));
    }

    #[test]
    fn parses_sub_coordinator_mode() {
        let args = parse_coordinator_args(&argv("--sub root:9000 --listen 127.0.0.1:0"))
            .expect("valid sub-coordinator command line");
        assert_eq!(args.sub.as_deref(), Some("root:9000"));

        let err = parse_coordinator_args(&argv("--sub root:9000 --listen 0:0 --target foo"))
            .expect_err("--sub with --target must conflict");
        assert!(matches!(err, ConfigError::Conflict(_)));

        let err = parse_coordinator_args(&argv("--sub root:9000 --serve 0:0 --listen 0:0"))
            .expect_err("--sub with --serve must conflict");
        assert!(matches!(err, ConfigError::Conflict(_)));

        let err = parse_coordinator_args(&argv("--sub root:9000"))
            .expect_err("--sub without a group must be rejected");
        assert_eq!(
            err,
            ConfigError::MissingValue("--workers or --listen".into())
        );
    }

    #[test]
    fn parses_worker_args() {
        let args = parse_worker_args(&argv("--listen 0.0.0.0:9101 --once --threads 2 --quiet"))
            .expect("valid worker command line");
        assert_eq!(args.listen, "0.0.0.0:9101");
        assert!(args.once);
        assert_eq!(args.common.threads, Some(2));
        assert!(args.common.quiet);
    }

    #[test]
    fn export_order_round_trips() {
        for order in [ExportOrder::Shallowest, ExportOrder::Deepest] {
            let rendered = order.to_string();
            assert_eq!(rendered.parse::<ExportOrder>(), Ok(order));
        }
        assert!("sideways".parse::<ExportOrder>().is_err());
    }
}
