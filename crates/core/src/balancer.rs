//! The load balancer (§3.3).
//!
//! Workers periodically report the length of their job queues; the load
//! balancer classifies workers as underloaded or overloaded using a
//! mean ± δ·σ band, pairs underloaded with overloaded workers, and issues
//! transfer requests ⟨source, destination, number of jobs⟩. It also maintains
//! the global coverage bit vector that coordinates the distributed
//! coverage-optimized strategy.

use c9_net::WorkerId;
use c9_vm::CoverageSet;
use serde::{Deserialize, Serialize};

/// A request issued by the load balancer: move `count` jobs from `source` to
/// `destination`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRequest {
    /// The overloaded worker that gives up jobs.
    pub source: WorkerId,
    /// The underloaded worker that receives them.
    pub destination: WorkerId,
    /// Number of jobs to move.
    pub count: u64,
}

/// Configuration of the balancing algorithm.
#[derive(Clone, Copy, Debug)]
pub struct BalancerConfig {
    /// The δ factor of the classification band (mean ± δ·σ).
    pub delta: f64,
    /// Minimum number of jobs a transfer must move to be worth issuing.
    pub min_transfer: u64,
}

impl Default for BalancerConfig {
    fn default() -> BalancerConfig {
        BalancerConfig {
            delta: 0.5,
            min_transfer: 1,
        }
    }
}

/// The load balancer.
#[derive(Debug)]
pub struct LoadBalancer {
    config: BalancerConfig,
    queue_lengths: Vec<u64>,
    alive: Vec<bool>,
    global_coverage: CoverageSet,
    total_transferred: u64,
}

impl LoadBalancer {
    /// Creates a load balancer for `num_workers` workers and a program with
    /// `num_lines` coverage lines.
    pub fn new(num_workers: usize, num_lines: usize, config: BalancerConfig) -> LoadBalancer {
        LoadBalancer {
            config,
            queue_lengths: vec![0; num_workers],
            alive: vec![true; num_workers],
            global_coverage: CoverageSet::new(num_lines),
            total_transferred: 0,
        }
    }

    /// Grows the worker table so `worker` is a valid index (late joiners
    /// enter the next balancing round automatically).
    pub fn ensure_worker(&mut self, worker: WorkerId) {
        let idx = worker.index();
        if idx >= self.queue_lengths.len() {
            self.queue_lengths.resize(idx + 1, 0);
            self.alive.resize(idx + 1, true);
        }
        self.alive[idx] = true;
    }

    /// Marks a worker dead or alive. Dead workers are excluded from
    /// classification, transfer planning, and the all-idle check, and their
    /// last reported queue length is discarded.
    pub fn set_alive(&mut self, worker: WorkerId, alive: bool) {
        self.ensure_worker(worker);
        let idx = worker.index();
        self.alive[idx] = alive;
        if !alive {
            self.queue_lengths[idx] = 0;
        }
    }

    /// Whether a worker is currently considered alive.
    pub fn is_alive(&self, worker: WorkerId) -> bool {
        self.alive.get(worker.index()).copied().unwrap_or(false)
    }

    /// Records a status update from a worker: its queue length and local
    /// coverage. Returns the updated global coverage (which the worker ORs
    /// into its own, §3.3) together with the number of lines this report
    /// newly added to it — the per-report *yield* the strategy portfolio
    /// credits to the strategy that produced the report.
    pub fn report(
        &mut self,
        worker: WorkerId,
        queue_length: u64,
        coverage: &CoverageSet,
    ) -> (CoverageSet, u64) {
        self.ensure_worker(worker);
        self.queue_lengths[worker.0 as usize] = queue_length;
        let newly_covered = self.global_coverage.merge(coverage) as u64;
        (self.global_coverage.clone(), newly_covered)
    }

    /// Updates only the queue length of a worker.
    pub fn report_queue(&mut self, worker: WorkerId, queue_length: u64) {
        self.ensure_worker(worker);
        self.queue_lengths[worker.0 as usize] = queue_length;
    }

    /// The current global coverage.
    pub fn global_coverage(&self) -> &CoverageSet {
        &self.global_coverage
    }

    /// Merges externally recovered coverage (a resumed checkpoint) into the
    /// global vector.
    pub fn merge_coverage(&mut self, coverage: &CoverageSet) {
        self.global_coverage.merge(coverage);
    }

    /// Total jobs moved by transfer requests issued so far.
    pub fn total_transferred(&self) -> u64 {
        self.total_transferred
    }

    /// The last reported queue length of every worker (zero for the dead).
    pub fn queue_lengths(&self) -> &[u64] {
        &self.queue_lengths
    }

    /// Whether every live worker reported an empty queue.
    pub fn all_idle(&self) -> bool {
        self.queue_lengths
            .iter()
            .zip(&self.alive)
            .all(|(l, alive)| !alive || *l == 0)
    }

    /// Runs one round of the balancing algorithm of §3.3 and returns the
    /// transfer requests to issue. Dead workers neither give nor receive.
    ///
    /// Live workers are classified as underloaded (`l < max(mean − δ·σ, 0)`)
    /// or overloaded (`l > mean + δ·σ`); the two lists are matched pairwise
    /// from the most underloaded and most overloaded ends, and each pair
    /// ⟨Wi, Wj⟩ with `li < lj` receives a request to move `(lj − li)/2` jobs.
    pub fn balance(&mut self) -> Vec<TransferRequest> {
        let live: Vec<(usize, u64)> = self
            .queue_lengths
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(i, l)| (i, *l))
            .collect();
        let n = live.len();
        if n < 2 {
            return Vec::new();
        }
        let mean = live.iter().map(|(_, l)| *l).sum::<u64>() as f64 / n as f64;
        let variance = live
            .iter()
            .map(|(_, l)| {
                let d = *l as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let sigma = variance.sqrt();
        let low = (mean - self.config.delta * sigma).max(0.0);
        let high = mean + self.config.delta * sigma;

        let mut underloaded: Vec<(u64, WorkerId)> = Vec::new();
        let mut overloaded: Vec<(u64, WorkerId)> = Vec::new();
        for (i, l) in &live {
            let lf = *l as f64;
            if lf < low {
                underloaded.push((*l, WorkerId(*i as u32)));
            } else if lf > high {
                overloaded.push((*l, WorkerId(*i as u32)));
            }
        }
        // Special case: with small clusters and very skewed loads the band
        // can be too wide; make sure an idle worker is always fed when some
        // other worker has more than one job.
        if underloaded.is_empty() {
            for (i, l) in &live {
                if *l == 0 {
                    underloaded.push((0, WorkerId(*i as u32)));
                }
            }
        }
        if overloaded.is_empty() {
            if let Some((i, l)) = live.iter().max_by_key(|(_, l)| *l) {
                if *l > 1 {
                    overloaded.push((*l, WorkerId(*i as u32)));
                }
            }
        }
        underloaded.sort();
        overloaded.sort();

        let mut requests = Vec::new();
        let mut over_iter = overloaded.into_iter().rev();
        for (under_len, under_id) in underloaded {
            let Some((over_len, over_id)) = over_iter.next() else {
                break;
            };
            if over_id == under_id || over_len <= under_len {
                continue;
            }
            let count = (over_len - under_len) / 2;
            if count >= self.config.min_transfer {
                self.total_transferred += count;
                requests.push(TransferRequest {
                    source: over_id,
                    destination: under_id,
                    count,
                });
                // Optimistically update the book-keeping so repeated calls in
                // the same reporting interval do not over-transfer.
                self.queue_lengths[over_id.0 as usize] -= count;
                self.queue_lengths[under_id.0 as usize] += count;
            }
        }
        requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb(lengths: &[u64]) -> LoadBalancer {
        let mut lb = LoadBalancer::new(lengths.len(), 100, BalancerConfig::default());
        for (i, l) in lengths.iter().enumerate() {
            lb.report_queue(WorkerId(i as u32), *l);
        }
        lb
    }

    #[test]
    fn balanced_cluster_needs_no_transfers() {
        let mut b = lb(&[10, 10, 10, 10]);
        assert!(b.balance().is_empty());
    }

    #[test]
    fn idle_worker_gets_fed_from_loaded_worker() {
        let mut b = lb(&[100, 0]);
        let reqs = b.balance();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].source, WorkerId(0));
        assert_eq!(reqs[0].destination, WorkerId(1));
        assert_eq!(reqs[0].count, 50);
    }

    #[test]
    fn multiple_pairs_are_matched() {
        let mut b = lb(&[100, 0, 90, 1]);
        let reqs = b.balance();
        assert!(reqs.len() >= 2);
        // Each request moves roughly half the difference.
        for r in &reqs {
            assert!(r.count >= 40);
        }
    }

    #[test]
    fn coverage_is_accumulated_and_returned() {
        let mut b = LoadBalancer::new(2, 64, BalancerConfig::default());
        let mut c0 = CoverageSet::new(64);
        c0.cover(c9_ir::LineId(1));
        let (global, new0) = b.report(WorkerId(0), 5, &c0);
        assert!(global.is_covered(c9_ir::LineId(1)));
        assert_eq!(new0, 1);
        let mut c1 = CoverageSet::new(64);
        c1.cover(c9_ir::LineId(2));
        let (global, new1) = b.report(WorkerId(1), 5, &c1);
        assert!(global.is_covered(c9_ir::LineId(1)));
        assert!(global.is_covered(c9_ir::LineId(2)));
        assert_eq!(new1, 1);
        // A repeated report yields nothing new.
        let (_, new2) = b.report(WorkerId(1), 5, &c1);
        assert_eq!(new2, 0);
    }

    #[test]
    fn all_idle_detection() {
        let mut b = lb(&[0, 0, 0]);
        assert!(b.all_idle());
        b.report_queue(WorkerId(1), 3);
        assert!(!b.all_idle());
    }

    #[test]
    fn single_worker_cluster_never_balances() {
        let mut b = lb(&[42]);
        assert!(b.balance().is_empty());
    }

    #[test]
    fn dead_worker_is_excluded_from_transfer_planning() {
        // Worker 1 is starving and worker 2 dies mid-round: the reclaimed
        // round must pair 1 with 0 only, never touching the dead worker.
        let mut b = lb(&[100, 0, 80]);
        b.set_alive(WorkerId(2), false);
        let reqs = b.balance();
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert_ne!(r.source, WorkerId(2), "dead worker used as source");
            assert_ne!(
                r.destination,
                WorkerId(2),
                "dead worker used as destination"
            );
        }
        assert_eq!(reqs[0].source, WorkerId(0));
        assert_eq!(reqs[0].destination, WorkerId(1));
    }

    #[test]
    fn dead_worker_queue_is_discarded_and_idle_check_ignores_it() {
        let mut b = lb(&[0, 7]);
        assert!(!b.all_idle());
        b.set_alive(WorkerId(1), false);
        assert!(b.all_idle(), "a dead worker must not block exhaustion");
        assert_eq!(b.queue_lengths()[1], 0);
    }

    #[test]
    fn only_one_live_worker_left_means_no_transfers() {
        let mut b = lb(&[100, 0, 0]);
        b.set_alive(WorkerId(1), false);
        b.set_alive(WorkerId(2), false);
        assert!(b.balance().is_empty());
    }

    #[test]
    fn late_joiner_enters_the_next_balancing_round() {
        let mut b = lb(&[100]);
        b.ensure_worker(WorkerId(1));
        b.report_queue(WorkerId(1), 0);
        let reqs = b.balance();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].destination, WorkerId(1));
        assert_eq!(reqs[0].count, 50);
    }

    #[test]
    fn revived_worker_rejoins_planning() {
        let mut b = lb(&[100, 0]);
        b.set_alive(WorkerId(1), false);
        assert!(b.balance().is_empty());
        b.set_alive(WorkerId(1), true);
        b.report_queue(WorkerId(1), 0);
        assert_eq!(b.balance().len(), 1);
    }
}
