//! The worker-local view of the execution tree.
//!
//! Each worker only sees the subtree it explores (§3.2, Fig. 2). Nodes carry
//! the two attributes of the paper: a *status* (materialized — the program
//! state is present — or virtual — an "empty shell" reachable by replaying
//! its path) and a *life-cycle stage* (candidate — ready to be explored,
//! fence — being explored by another worker, dead — already explored).
//! Program state is only kept for materialized candidate nodes; everything
//! else stores just the path, which is what makes states cheap to ship
//! between workers.

use c9_net::Job;
use c9_vm::{PathChoice, StateId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a node in a worker's local tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Materialized vs. virtual (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeStatus {
    /// The corresponding program state lives on this worker.
    Materialized,
    /// Only the path is known; the state must be reconstructed by replay.
    Virtual,
}

/// Candidate / fence / dead (Fig. 2 and Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeLife {
    /// On the local exploration frontier.
    Candidate,
    /// Demarcates the boundary with work done elsewhere; never explored
    /// locally.
    Fence,
    /// Fully explored; its program state can be discarded.
    Dead,
}

/// One node of the worker-local execution tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeNode {
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children, in creation order.
    pub children: Vec<NodeId>,
    /// Materialized or virtual.
    pub status: NodeStatus,
    /// Candidate, fence, or dead.
    pub life: NodeLife,
    /// Path from the global root to this node.
    pub path: Vec<PathChoice>,
    /// The execution-state id currently materializing this node, if any.
    pub state: Option<StateId>,
}

/// The worker-local execution tree.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerTree {
    nodes: Vec<TreeNode>,
    by_state: BTreeMap<StateId, NodeId>,
}

impl WorkerTree {
    /// Creates a tree containing only the root node, materialized by
    /// `root_state` (the seed job of the first worker, or an imported job's
    /// replay state).
    pub fn new() -> WorkerTree {
        WorkerTree::default()
    }

    /// Adds the root node materialized by `state`.
    pub fn set_root(&mut self, state: StateId) -> NodeId {
        assert!(self.nodes.is_empty(), "root already set");
        let id = NodeId(0);
        self.nodes.push(TreeNode {
            parent: None,
            children: Vec::new(),
            status: NodeStatus::Materialized,
            life: NodeLife::Candidate,
            path: Vec::new(),
            state: Some(state),
        });
        self.by_state.insert(state, id);
        id
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.0 as usize]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut TreeNode {
        &mut self.nodes[id.0 as usize]
    }

    /// The node currently materialized by `state`.
    pub fn node_of_state(&self, state: StateId) -> Option<NodeId> {
        self.by_state.get(&state).copied()
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes currently in each life-cycle stage:
    /// `(candidates, fences, dead)`.
    pub fn life_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for n in &self.nodes {
            match n.life {
                NodeLife::Candidate => counts.0 += 1,
                NodeLife::Fence => counts.1 += 1,
                NodeLife::Dead => counts.2 += 1,
            }
        }
        counts
    }

    fn add_node(&mut self, node: TreeNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if let Some(state) = node.state {
            self.by_state.insert(state, id);
        }
        if let Some(parent) = node.parent {
            self.nodes[parent.0 as usize].children.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Records that the state materializing `parent_state` forked: the parent
    /// node dies, and one materialized candidate child is created per
    /// successor state (the continuing state plus its new siblings).
    pub fn record_fork(
        &mut self,
        parent_state: StateId,
        successors: &[(StateId, Vec<PathChoice>)],
    ) {
        let Some(parent_id) = self.by_state.remove(&parent_state) else {
            return;
        };
        self.node_mut(parent_id).life = NodeLife::Dead;
        self.node_mut(parent_id).state = None;
        for (state, path) in successors {
            self.add_node(TreeNode {
                parent: Some(parent_id),
                children: Vec::new(),
                status: NodeStatus::Materialized,
                life: NodeLife::Candidate,
                path: path.clone(),
                state: Some(*state),
            });
        }
    }

    /// Records that a state terminated: its node dies.
    pub fn record_termination(&mut self, state: StateId) {
        if let Some(id) = self.by_state.remove(&state) {
            self.node_mut(id).life = NodeLife::Dead;
            self.node_mut(id).state = None;
        }
    }

    /// Records that a candidate was exported to another worker: the node
    /// becomes a fence (§3.2: "it becomes a fence node at the sender") and
    /// its program state is dropped.
    pub fn record_export(&mut self, state: StateId) -> Option<Job> {
        let id = self.by_state.remove(&state)?;
        let node = self.node_mut(id);
        node.life = NodeLife::Fence;
        node.status = NodeStatus::Materialized;
        node.state = None;
        Some(Job::new(node.path.clone()))
    }

    /// Records an imported job: a virtual candidate node attached under the
    /// root (the intermediate nodes of the job path are not expanded until
    /// the job is materialized).
    pub fn record_import(&mut self, job: &Job) -> NodeId {
        let parent = if self.nodes.is_empty() {
            None
        } else {
            Some(NodeId(0))
        };
        let id = self.add_node(TreeNode {
            parent,
            children: Vec::new(),
            status: NodeStatus::Virtual,
            life: NodeLife::Candidate,
            path: job.path.clone(),
            state: None,
        });
        if self.nodes.len() == 1 {
            // The import created the root itself (fresh worker).
            self.nodes[0].parent = None;
        }
        id
    }

    /// Records that a *virtual* candidate (an imported job that was never
    /// materialized here) was forwarded to another worker: its node becomes
    /// a fence without ever having held program state.
    pub fn record_virtual_export(&mut self, node: NodeId) {
        self.node_mut(node).life = NodeLife::Fence;
    }

    /// Records that a virtual node's materialization was abandoned (its
    /// replay diverged): the node dies without ever having been explored.
    pub fn record_abandoned(&mut self, node: NodeId) {
        let n = self.node_mut(node);
        n.life = NodeLife::Dead;
        n.state = None;
    }

    /// Records that a virtual node finished replaying and is now materialized
    /// by `state`.
    pub fn record_materialization(&mut self, node: NodeId, state: StateId) {
        let n = self.node_mut(node);
        n.status = NodeStatus::Materialized;
        n.life = NodeLife::Candidate;
        n.state = Some(state);
        self.by_state.insert(state, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_kills_parent_and_creates_candidates() {
        let mut tree = WorkerTree::new();
        tree.set_root(StateId(0));
        tree.record_fork(
            StateId(0),
            &[
                (StateId(0), vec![PathChoice::Branch(true)]),
                (StateId(1), vec![PathChoice::Branch(false)]),
            ],
        );
        let (candidates, fences, dead) = tree.life_counts();
        assert_eq!((candidates, fences, dead), (2, 0, 1));
        assert_eq!(tree.node(NodeId(0)).children.len(), 2);
    }

    #[test]
    fn export_turns_candidate_into_fence() {
        let mut tree = WorkerTree::new();
        tree.set_root(StateId(0));
        tree.record_fork(
            StateId(0),
            &[
                (StateId(0), vec![PathChoice::Branch(true)]),
                (StateId(1), vec![PathChoice::Branch(false)]),
            ],
        );
        let job = tree.record_export(StateId(1)).expect("exportable");
        assert_eq!(job.path, vec![PathChoice::Branch(false)]);
        let (candidates, fences, dead) = tree.life_counts();
        assert_eq!((candidates, fences, dead), (1, 1, 1));
        // The exported state no longer maps to a node.
        assert!(tree.node_of_state(StateId(1)).is_none());
    }

    #[test]
    fn import_and_materialize_lifecycle() {
        let mut tree = WorkerTree::new();
        tree.set_root(StateId(0));
        let job = Job::new(vec![PathChoice::Branch(true), PathChoice::Branch(true)]);
        let node = tree.record_import(&job);
        assert_eq!(tree.node(node).status, NodeStatus::Virtual);
        assert_eq!(tree.node(node).life, NodeLife::Candidate);
        tree.record_materialization(node, StateId(7));
        assert_eq!(tree.node(node).status, NodeStatus::Materialized);
        assert_eq!(tree.node_of_state(StateId(7)), Some(node));
    }

    #[test]
    fn termination_makes_node_dead() {
        let mut tree = WorkerTree::new();
        tree.set_root(StateId(0));
        tree.record_termination(StateId(0));
        let (candidates, fences, dead) = tree.life_counts();
        assert_eq!((candidates, fences, dead), (0, 0, 1));
    }
}
