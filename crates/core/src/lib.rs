//! Cluster-parallel symbolic execution — the Cloud9 EuroSys'11 contribution.
//!
//! This crate turns the single-node engine of [`c9_vm`] into a parallel
//! symbolic execution platform, following §3 of the paper:
//!
//! * [`Job`] / [`JobTree`] — exploration jobs encoded as the path of
//!   decisions from the root of the execution tree, aggregated into prefix
//!   trees for transfer (§3.2, "encode jobs as the path from the root").
//! * [`WorkerTree`] — the worker-local view of the execution tree with the
//!   materialized/virtual × candidate/fence/dead node life cycle of Fig. 3.
//! * [`Worker`] — an independent symbolic execution engine that explores its
//!   local frontier, exports candidates on request (they become fence nodes
//!   locally), and lazily materializes imported virtual jobs by path replay
//!   through `c9_vm`'s `ReplayEngine`, backed by an [`AnchorCache`] of
//!   prefix snapshots so a batch of jobs costs one walk of its shared
//!   prefix trie instead of one full root replay per job.
//! * [`LoadBalancer`] — classifies workers by queue length (mean ± δ·σ),
//!   issues ⟨source, destination, count⟩ transfer requests, and maintains the
//!   global coverage bit vector used by the distributed coverage-optimized
//!   strategy (§3.3).
//! * [`Cluster`] — the harness that runs workers on OS threads connected only
//!   by message channels (shared-nothing), coordinated by the load balancer,
//!   and records the statistics the paper's evaluation reports (useful vs.
//!   replay work, states transferred per interval, coverage over time).
//!
//! # Examples
//!
//! Exhaustively explore a small program on a 2-worker cluster:
//!
//! ```
//! use std::sync::Arc;
//! use c9_core::{Cluster, ClusterConfig};
//! use c9_ir::{BinaryOp, Operand, ProgramBuilder, Width};
//! use c9_vm::{sysno, NullEnvironment};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0, Some(Width::W32));
//! let buf = f.alloc(Operand::word(2));
//! f.syscall(sysno::MAKE_SYMBOLIC, vec![Operand::Reg(buf), Operand::word(2)]);
//! let b = f.load(Operand::Reg(buf), Width::W8);
//! let cond = f.binary(BinaryOp::Ult, Operand::Reg(b), Operand::byte(100));
//! let t = f.create_block();
//! let e = f.create_block();
//! f.branch(Operand::Reg(cond), t, e);
//! f.switch_to(t);
//! f.ret(Some(Operand::word(0)));
//! f.switch_to(e);
//! f.ret(Some(Operand::word(1)));
//! let main = f.finish();
//! pb.set_entry(main);
//!
//! let cluster = Cluster::new(
//!     Arc::new(pb.finish()),
//!     Arc::new(NullEnvironment),
//!     ClusterConfig { num_workers: 2, ..ClusterConfig::default() },
//! );
//! let result = cluster.run();
//! assert_eq!(result.summary.paths_completed(), 2);
//! ```

mod balancer;
mod cluster;
pub mod config;
mod federation;
pub mod frontdoor;
mod membership;
mod portfolio;
mod replay_cache;
mod report;
mod service;
mod stats;
mod tree;
mod worker;

pub use balancer::{BalancerConfig, LoadBalancer, TransferRequest};
pub use c9_net::{
    decode_jobs_flat, encode_jobs_flat, Control, CoordinatorEndpoint, EnvSpec, ExportOrder,
    FinalReport, InProcTransport, Job, JobBatch, JobTree, MemberEvent, PeerInfo, RunId, RunSpec,
    RunSpecBuilder, RunSpecError, StatusReport, TcpTransport, TransferEvent, Transport,
    TransportError, WorkerEndpoint, WorkerId, WorkerStats, COORDINATOR,
};
pub use c9_solver::{CacheSlice, SolverBackendKind};
pub use c9_vm::{ReplayCacheConfig, StrategyKind};
pub use cluster::{
    run_worker_from_spec, run_worker_from_spec_with, run_worker_loop, Cluster, ClusterConfig,
    ClusterRunResult, CoordinatorRunOpts, WorkerLoopOpts, WorkerService,
};
pub use federation::{FederatedCluster, FederationConfig, SubCoordinator, SubSummary};
pub use membership::{Checkpoint, MemberHealth, MemberState, Membership};
pub use portfolio::{derive_seed, Portfolio, PortfolioCheckpoint, PortfolioConfig, StrategyYield};
pub use replay_cache::AnchorCache;
pub use report::{
    run_report, timeline_csv, write_run_report, write_timeline_csv, RUN_REPORT_VERSION,
};
pub use service::{
    serve_inproc, RunInfo, RunService, RunServiceConfig, RunState, RunSubmission, ServiceHandle,
    ServiceSummary,
};
pub use stats::{ClusterSummary, IntervalSample};
pub use tree::{NodeId, NodeLife, NodeStatus, TreeNode, WorkerTree};
pub use worker::{default_threads, Worker, WorkerConfig};

#[cfg(test)]
mod tests;
