//! Machine-readable run reports.
//!
//! [`run_report`] renders a [`ClusterSummary`] — totals, derived metrics,
//! per-worker statistics with their piggybacked histogram snapshots, and
//! the [`IntervalSample`] timeline — as one JSON document, so the paper's
//! time-series figures (Figs. 12–13) and useful-work breakdowns (§7.2) are
//! regenerable from a single `run_report.json` instead of scraped from
//! stderr. [`timeline_csv`] dumps the same timeline as CSV for
//! spreadsheet-grade tooling.

use crate::stats::{ClusterSummary, IntervalSample};
use c9_net::{RunId, WorkerStats};
use c9_trace::json::Json;
use c9_trace::MetricsSnapshot;
use std::io::Write as _;
use std::path::Path;

/// Report format version, bumped on breaking layout changes.
pub const RUN_REPORT_VERSION: u64 = 2;

fn duration_secs(d: std::time::Duration) -> Json {
    Json::Num(d.as_secs_f64())
}

fn solver_json(s: &c9_solver::SolverStats) -> Json {
    Json::Obj(vec![
        ("queries".into(), Json::from_u64(s.queries)),
        (
            "query_cache_hits".into(),
            Json::from_u64(s.query_cache_hits),
        ),
        (
            "model_cache_hits".into(),
            Json::from_u64(s.model_cache_hits),
        ),
        ("searches".into(), Json::from_u64(s.searches)),
        ("unknowns".into(), Json::from_u64(s.unknowns)),
        ("unsat".into(), Json::from_u64(s.unsat)),
        ("sat".into(), Json::from_u64(s.sat)),
        (
            "independence_slices".into(),
            Json::from_u64(s.independence_slices),
        ),
        ("cache_hit_rate".into(), Json::Num(s.cache_hit_rate())),
        (
            "imported_cache_entries".into(),
            Json::from_u64(s.imported_cache_entries),
        ),
        ("warm_hits".into(), Json::from_u64(s.warm_hits)),
        ("warm_hit_rate".into(), Json::Num(s.warm_hit_rate())),
    ])
}

fn worker_json(index: usize, w: &WorkerStats) -> Json {
    Json::Obj(vec![
        ("index".into(), Json::from_u64(index as u64)),
        ("threads".into(), Json::from_u64(w.threads)),
        (
            "useful_instructions".into(),
            Json::from_u64(w.useful_instructions),
        ),
        (
            "replay_instructions".into(),
            Json::from_u64(w.replay_instructions),
        ),
        ("paths_completed".into(), Json::from_u64(w.paths_completed)),
        ("bugs_found".into(), Json::from_u64(w.bugs_found)),
        ("jobs_sent".into(), Json::from_u64(w.jobs_sent)),
        ("jobs_received".into(), Json::from_u64(w.jobs_received)),
        ("job_bytes_sent".into(), Json::from_u64(w.job_bytes_sent)),
        (
            "materializations".into(),
            Json::from_u64(w.materializations),
        ),
        (
            "replay_saved_instructions".into(),
            Json::from_u64(w.replay_saved_instructions),
        ),
        ("anchor_hits".into(), Json::from_u64(w.anchor_hits)),
        ("anchor_misses".into(), Json::from_u64(w.anchor_misses)),
        ("anchor_hit_rate".into(), Json::Num(w.anchor_hit_rate())),
        (
            "replay_divergences".into(),
            Json::from_u64(w.replay_divergences),
        ),
        (
            "strategy_switches".into(),
            Json::from_u64(w.strategy_switches),
        ),
        (
            "gossip_bytes_sent".into(),
            Json::from_u64(w.gossip_bytes_sent),
        ),
        (
            "gossip_bytes_received".into(),
            Json::from_u64(w.gossip_bytes_received),
        ),
        ("solver".into(), solver_json(&w.solver)),
        ("metrics".into(), w.metrics.to_json()),
    ])
}

fn sample_json(s: &IntervalSample) -> Json {
    Json::Obj(vec![
        ("elapsed_secs".into(), duration_secs(s.elapsed)),
        (
            "states_transferred".into(),
            Json::from_u64(s.states_transferred),
        ),
        ("total_states".into(), Json::from_u64(s.total_states)),
        (
            "useful_instructions".into(),
            Json::from_u64(s.useful_instructions),
        ),
        ("coverage".into(), Json::Num(s.coverage)),
    ])
}

/// Builds the `run_report.json` document for a finished run.
///
/// Layout (stable under [`RUN_REPORT_VERSION`]):
/// `version`, `run` (the registry id the report describes), `elapsed_secs`,
/// `num_workers`, `goal_reached`, `exhausted`,
/// `totals` (path/bug/instruction/transfer counters), `derived`
/// (print-only rates like `anchor_hit_rate`, now first-class), `solver`
/// (aggregated), `metrics` (all workers' registry snapshots merged —
/// cluster-wide histograms), `workers` (per-worker stats, each with its
/// own histogram snapshots), and `timeline` ([`IntervalSample`] series).
pub fn run_report(run: RunId, summary: &ClusterSummary) -> Json {
    let mut merged = MetricsSnapshot::default();
    for w in &summary.worker_stats {
        merged.merge(&w.metrics);
    }
    let solver = summary.solver_stats();
    Json::Obj(vec![
        ("version".into(), Json::from_u64(RUN_REPORT_VERSION)),
        ("run".into(), Json::from_u64(run.0)),
        ("elapsed_secs".into(), duration_secs(summary.elapsed)),
        (
            "num_workers".into(),
            Json::from_u64(summary.num_workers as u64),
        ),
        ("goal_reached".into(), Json::Bool(summary.goal_reached)),
        ("exhausted".into(), Json::Bool(summary.exhausted)),
        (
            "totals".into(),
            Json::Obj(vec![
                (
                    "paths_completed".into(),
                    Json::from_u64(summary.paths_completed()),
                ),
                ("bugs_found".into(), Json::from_u64(summary.bugs_found)),
                (
                    "useful_instructions".into(),
                    Json::from_u64(summary.useful_instructions()),
                ),
                (
                    "replay_instructions".into(),
                    Json::from_u64(summary.replay_instructions()),
                ),
                (
                    "replay_saved_instructions".into(),
                    Json::from_u64(summary.replay_saved_instructions()),
                ),
                (
                    "replay_divergences".into(),
                    Json::from_u64(summary.replay_divergences()),
                ),
                (
                    "jobs_transferred".into(),
                    Json::from_u64(summary.jobs_transferred()),
                ),
                (
                    "jobs_reclaimed".into(),
                    Json::from_u64(summary.jobs_reclaimed),
                ),
                (
                    "workers_failed".into(),
                    Json::from_u64(summary.workers_failed),
                ),
                (
                    "workers_joined".into(),
                    Json::from_u64(summary.workers_joined),
                ),
                (
                    "strategy_rebalances".into(),
                    Json::from_u64(summary.strategy_rebalances),
                ),
            ]),
        ),
        (
            "derived".into(),
            Json::Obj(vec![
                ("coverage_ratio".into(), Json::Num(summary.coverage_ratio())),
                (
                    "anchor_hit_rate".into(),
                    Json::Num(summary.anchor_hit_rate()),
                ),
                (
                    "useful_instructions_per_worker".into(),
                    Json::Num(summary.useful_instructions_per_worker()),
                ),
                (
                    "solver_cache_hit_rate".into(),
                    Json::Num(solver.cache_hit_rate()),
                ),
                (
                    "solver_warm_hit_rate".into(),
                    Json::Num(solver.warm_hit_rate()),
                ),
            ]),
        ),
        ("solver".into(), solver_json(&solver)),
        ("metrics".into(), merged.to_json()),
        (
            "workers".into(),
            Json::Arr(
                summary
                    .worker_stats
                    .iter()
                    .enumerate()
                    .map(|(i, w)| worker_json(i, w))
                    .collect(),
            ),
        ),
        (
            "timeline".into(),
            Json::Arr(summary.timeline.iter().map(sample_json).collect()),
        ),
    ])
}

/// Writes [`run_report`] to `path` as one JSON document.
pub fn write_run_report(path: &Path, run: RunId, summary: &ClusterSummary) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(run_report(run, summary).render().as_bytes())?;
    file.write_all(b"\n")
}

/// Renders the [`IntervalSample`] timeline as CSV (`--timeline-out`), one
/// row per sample under a fixed header.
pub fn timeline_csv(timeline: &[IntervalSample]) -> String {
    let mut out =
        String::from("elapsed_secs,states_transferred,total_states,useful_instructions,coverage\n");
    for s in timeline {
        out.push_str(&format!(
            "{:.6},{},{},{},{:.6}\n",
            s.elapsed.as_secs_f64(),
            s.states_transferred,
            s.total_states,
            s.useful_instructions,
            s.coverage
        ));
    }
    out
}

/// Writes [`timeline_csv`] to `path`.
pub fn write_timeline_csv(path: &Path, timeline: &[IntervalSample]) -> std::io::Result<()> {
    std::fs::write(path, timeline_csv(timeline))
}
