//! The newline-delimited JSON front door of the run service.
//!
//! `c9-coordinator --serve ADDR` listens on a plain TCP socket; every
//! connection speaks one JSON object per line in each direction. A client
//! submits runs, polls them, preempts and resumes them, fetches their
//! results, and shuts the service down — the full [`ServiceHandle`] surface
//! over a protocol `nc` and twenty lines of any scripting language can
//! speak. JSON is rendered and parsed by [`c9_trace::json::Json`]; no
//! serialization dependency is involved.
//!
//! # Protocol
//!
//! Requests: `{"cmd": NAME, ...}`. Responses always carry `"ok"`; errors
//! carry `"error"` instead of the payload:
//!
//! ```text
//! → {"cmd":"submit","target":"memcached-sim","max_paths":5000}
//! ← {"ok":true,"run":1}
//! → {"cmd":"status","run":1}
//! ← {"ok":true,"run":{"id":1,"name":"memcached-sim","state":"running",...}}
//! → {"cmd":"list"}
//! ← {"ok":true,"runs":[{"id":1,...}]}
//! → {"cmd":"preempt","run":1}
//! ← {"ok":true}
//! → {"cmd":"resume","run":1}
//! ← {"ok":true}
//! → {"cmd":"cancel","run":1}
//! ← {"ok":true}
//! → {"cmd":"results","run":1}
//! ← {"ok":true,"results":{"paths_completed":5000,"bugs":[...],...}}
//! → {"cmd":"shutdown"}
//! ← {"ok":true}
//! ```
//!
//! What `submit` accepts beyond `target` is decided by the binary hosting
//! the service (the [`SubmitFn`] it installs); `c9-coordinator` understands
//! the named workloads of `c9-targets` plus `time_limit_secs`, `max_paths`,
//! `coverage_target`, and `generate_tests`.

use crate::service::{RunInfo, RunSubmission, ServiceHandle};
use c9_trace::info;
use c9_trace::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

/// Translates the JSON payload of a `submit` command into a run. Installed
/// by the binary, which knows how to resolve workload names into programs —
/// the core crate does not.
pub type SubmitFn = Box<dyn Fn(&Json) -> Result<RunSubmission, String> + Send + Sync>;

fn err(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.into())),
    ])
}

fn ok(mut fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![("ok".into(), Json::Bool(true))];
    obj.append(&mut fields);
    Json::Obj(obj)
}

fn info_json(info: &RunInfo) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::from_u64(info.id.0)),
        ("name".into(), Json::Str(info.name.clone())),
        ("state".into(), Json::Str(info.state.to_string())),
        ("cancelled".into(), Json::Bool(info.cancelled)),
        (
            "paths_completed".into(),
            Json::from_u64(info.paths_completed),
        ),
        ("coverage".into(), Json::Num(info.coverage)),
        ("bugs_found".into(), Json::from_u64(info.bugs_found)),
        ("elapsed_secs".into(), Json::Num(info.elapsed.as_secs_f64())),
    ])
}

fn run_arg(cmd: &Json) -> Result<c9_net::RunId, Json> {
    cmd.get("run")
        .and_then(Json::as_u64)
        .filter(|id| *id != 0)
        .map(c9_net::RunId)
        .ok_or_else(|| err("missing or invalid \"run\""))
}

/// Executes one front-door command against the service. Pure with respect
/// to the connection: parsing and I/O live in [`serve`], so unit tests
/// drive the protocol without sockets.
pub fn handle_command(cmd: &Json, handle: &ServiceHandle, submit: &SubmitFn) -> Json {
    let name = match cmd.get("cmd").and_then(Json::as_str) {
        Some(name) => name,
        None => return err("missing \"cmd\""),
    };
    match name {
        "submit" => match submit(cmd) {
            Ok(submission) => match handle.submit(submission) {
                Some(run) => ok(vec![("run".into(), Json::from_u64(run.0))]),
                None => err("service is shutting down"),
            },
            Err(e) => err(e),
        },
        "list" => ok(vec![(
            "runs".into(),
            Json::Arr(handle.list().iter().map(info_json).collect()),
        )]),
        "status" => match run_arg(cmd) {
            Ok(run) => match handle.status(run) {
                Some(info) => ok(vec![("run".into(), info_json(&info))]),
                None => err("unknown run"),
            },
            Err(e) => e,
        },
        "cancel" => match run_arg(cmd) {
            Ok(run) if handle.cancel(run) => ok(vec![]),
            Ok(_) => err("run is not cancellable"),
            Err(e) => e,
        },
        "preempt" => match run_arg(cmd) {
            Ok(run) if handle.preempt(run) => ok(vec![]),
            Ok(_) => err("run is not running"),
            Err(e) => e,
        },
        "resume" => match run_arg(cmd) {
            Ok(run) if handle.resume(run) => ok(vec![]),
            Ok(_) => err("run is not preempted"),
            Err(e) => e,
        },
        "results" => match run_arg(cmd) {
            Ok(run) => match handle.results(run) {
                Some(result) => ok(vec![(
                    "results".into(),
                    Json::Obj(vec![
                        (
                            "paths_completed".into(),
                            Json::from_u64(result.summary.paths_completed()),
                        ),
                        (
                            "bugs_found".into(),
                            Json::from_u64(result.summary.bugs_found),
                        ),
                        (
                            "coverage".into(),
                            Json::Num(result.summary.coverage_ratio()),
                        ),
                        (
                            "elapsed_secs".into(),
                            Json::Num(result.summary.elapsed.as_secs_f64()),
                        ),
                        (
                            "goal_reached".into(),
                            Json::Bool(result.summary.goal_reached),
                        ),
                        ("exhausted".into(), Json::Bool(result.summary.exhausted)),
                        (
                            "test_cases".into(),
                            Json::from_u64(result.test_cases.len() as u64),
                        ),
                        (
                            "bugs".into(),
                            Json::Arr(
                                result
                                    .bugs
                                    .iter()
                                    .map(|b| Json::Str(format!("{:?}", b.termination)))
                                    .collect(),
                            ),
                        ),
                    ]),
                )]),
                None => err("run has no results (not finished?)"),
            },
            Err(e) => e,
        },
        "shutdown" => {
            handle.shutdown();
            ok(vec![])
        }
        other => err(format!("unknown command {other:?}")),
    }
}

fn serve_connection(stream: TcpStream, handle: ServiceHandle, submit: &SubmitFn) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line) {
            Ok(cmd) => handle_command(&cmd, &handle, submit),
            Err(e) => err(format!("bad JSON: {e}")),
        };
        let shutdown = matches!(
            Json::parse(&line)
                .ok()
                .as_ref()
                .and_then(|c| c.get("cmd"))
                .and_then(Json::as_str),
            Some("shutdown")
        ) && response.get("ok") == Some(&Json::Bool(true));
        if writeln!(writer, "{}", response.render()).is_err() {
            break;
        }
        if shutdown {
            break;
        }
    }
    info!("front door: connection from {peer} closed");
}

/// Concurrent front-door connections admitted at most. Each connection
/// holds a thread for its lifetime; without a bound, a client opening
/// sockets in a loop grows the daemon's thread count without limit.
pub const MAX_CONNECTIONS: usize = 64;

/// Accepts front-door connections forever, one thread per client, at most
/// [`MAX_CONNECTIONS`] at a time — a client beyond the cap receives a
/// one-line `{"ok":false,"error":"too many connections"}` and is closed
/// immediately. Runs on its own thread; the process ends when the service
/// loop returns after a `shutdown` command, taking this daemon thread with
/// it.
pub fn serve(listener: TcpListener, handle: ServiceHandle, submit: SubmitFn) {
    let submit = std::sync::Arc::new(submit);
    let connections = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // Reserve a slot before spawning; the increment-then-check keeps
        // concurrent accepts from racing past the cap.
        if connections.fetch_add(1, std::sync::atomic::Ordering::SeqCst) >= MAX_CONNECTIONS {
            connections.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            let _ = writeln!(stream, "{}", err("too many connections").render());
            info!("front door: connection rejected (at the {MAX_CONNECTIONS}-connection cap)");
            continue;
        }
        let handle = handle.clone();
        let submit = submit.clone();
        let connections = connections.clone();
        std::thread::spawn(move || {
            serve_connection(stream, handle, &submit);
            connections.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        });
    }
}
