//! Transport-equivalence tests: the same cluster must produce the same
//! exploration results over in-process channels and over real TCP sockets.

use c9_core::{Cluster, ClusterConfig, TcpTransport};
use c9_ir::{BinaryOp, Operand, Program, ProgramBuilder, Width};
use c9_vm::{sysno, NullEnvironment};
use std::sync::Arc;
use std::time::Duration;

/// A program with `n` symbolic bytes and 2^n paths (one branch per byte).
fn branching_program(n: usize) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.set_name("branching");
    let mut f = pb.function("main", 0, Some(Width::W32));
    let buf = f.alloc(Operand::word(n as u32));
    f.syscall(
        sysno::MAKE_SYMBOLIC,
        vec![Operand::Reg(buf), Operand::word(n as u32)],
    );
    let mut next = f.create_block();
    for i in 0..n {
        let addr = f.binary(BinaryOp::Add, Operand::Reg(buf), Operand::word(i as u32));
        let byte = f.load(Operand::Reg(addr), Width::W8);
        let cond = f.binary(
            BinaryOp::Ult,
            Operand::Reg(byte),
            Operand::byte(32 + i as u8),
        );
        let then_bb = f.create_block();
        f.branch(Operand::Reg(cond), then_bb, next);
        f.switch_to(then_bb);
        f.jump(next);
        f.switch_to(next);
        if i + 1 < n {
            next = f.create_block();
        }
    }
    f.ret(Some(Operand::word(0)));
    let main = f.finish();
    pb.set_entry(main);
    pb.finish()
}

fn config(workers: usize) -> ClusterConfig {
    ClusterConfig {
        num_workers: workers,
        time_limit: Some(Duration::from_secs(60)),
        status_interval: Duration::from_millis(2),
        balance_interval: Duration::from_millis(5),
        quantum: 2_000,
        ..ClusterConfig::default()
    }
}

#[test]
fn loopback_tcp_two_worker_cluster_matches_in_proc_path_count() {
    let program = Arc::new(branching_program(6));
    let env = Arc::new(NullEnvironment);

    let in_proc = Cluster::new(program.clone(), env.clone(), config(2)).run();
    assert!(in_proc.summary.exhausted, "in-proc run must exhaust");

    let tcp = Cluster::new(program, env, config(2)).run_with_transport(TcpTransport::loopback());
    assert!(tcp.summary.exhausted, "loopback-TCP run must exhaust");

    assert_eq!(
        in_proc.summary.paths_completed(),
        tcp.summary.paths_completed(),
        "TCP transport must explore exactly the same tree"
    );
    assert_eq!(in_proc.summary.paths_completed(), 64);
    assert!(
        (tcp.summary.coverage_ratio() - in_proc.summary.coverage_ratio()).abs() < f64::EPSILON,
        "coverage must match"
    );
}

#[test]
fn loopback_tcp_cluster_transfers_jobs_between_processes_boundaries() {
    let program = Arc::new(branching_program(9));
    let env = Arc::new(NullEnvironment);
    // A deeper tree and small quanta so that load balancing has a chance to
    // move work before the first worker finishes everything on its own.
    let mut config = config(3);
    config.quantum = 300;
    config.status_interval = Duration::from_millis(1);
    config.balance_interval = Duration::from_millis(1);
    let result = Cluster::new(program, env, config).run_with_transport(TcpTransport::loopback());
    assert!(result.summary.exhausted);
    assert_eq!(result.summary.paths_completed(), 512);
    // Work started on worker 0 only; exhaustion on 3 workers therefore
    // requires real job transfer over the sockets.
    assert!(
        result.summary.jobs_transferred() > 0,
        "expected TCP job transfers, got none"
    );
    let workers_with_work = result
        .summary
        .worker_stats
        .iter()
        .filter(|w| w.paths_completed > 0)
        .count();
    assert!(workers_with_work >= 2, "load balancing never spread work");
}
