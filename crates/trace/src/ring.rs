//! A fixed-capacity drop-oldest ring buffer.
//!
//! The span layer keeps one per thread: pushes from the owning thread must
//! never block or allocate after warm-up, and when the buffer is full the
//! *oldest* record is dropped (and counted) so the tail of a run — the part
//! being debugged — is always retained.

use std::collections::VecDeque;

/// Bounded FIFO that overwrites its oldest element when full.
#[derive(Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` elements (minimum 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let capacity = capacity.max(1);
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `value`, evicting (and counting) the oldest element if the
    /// ring is full. Never grows beyond the configured capacity.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Removes and returns all retained elements, oldest first.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Elements currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many elements have been evicted by overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}
