//! Chrome-trace (Trace Event Format) export for Perfetto.
//!
//! Each [`SpanRecord`] becomes one complete event (`"ph": "X"`), so a run's
//! worker quanta, solver queries, replays, and transfers lay out on a
//! per-thread timeline in <https://ui.perfetto.dev> — the paper's §7.2
//! useful-work breakdown, read straight off the trace.

use crate::json::Json;
use crate::span::SpanRecord;
use std::io::Write as _;
use std::path::Path;

/// Builds the Chrome-trace JSON document for `records`, attributing every
/// event to process `pid` (use the worker id so multi-process traces merge).
pub fn chrome_trace_json(records: &[SpanRecord], pid: u64) -> Json {
    let events = records
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".into(), Json::Str(r.kind.name().into())),
                ("cat".into(), Json::Str("c9".into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::from_u64(r.start_us)),
                ("dur".into(), Json::from_u64(r.dur_us)),
                ("pid".into(), Json::from_u64(pid)),
                ("tid".into(), Json::from_u64(r.tid)),
                (
                    "args".into(),
                    Json::Obj(vec![("detail".into(), Json::from_u64(r.detail))]),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Writes the Chrome-trace document for `records` to `path`.
pub fn write_chrome_trace(path: &Path, records: &[SpanRecord], pid: u64) -> std::io::Result<()> {
    let doc = chrome_trace_json(records, pid);
    let mut file = std::fs::File::create(path)?;
    file.write_all(doc.render().as_bytes())?;
    file.write_all(b"\n")
}
