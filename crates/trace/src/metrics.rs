//! Counters, gauges, and fixed-boundary log2 histograms.
//!
//! A [`Registry`] hands out cheap atomic handles that hot paths update with
//! relaxed stores; [`Registry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`] — a compact, serializable, *mergeable* value that
//! workers piggyback on their status reports. Merging is associative and
//! commutative (counters and histogram buckets add; gauges add too, making
//! a merged gauge a cluster total), so the coordinator can fold snapshots
//! in any order and arrive at the same aggregate.
//!
//! Histograms use fixed power-of-two bucket boundaries: bucket 0 holds the
//! value 0 and bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i - 1]`
//! (bucket 63 is open-ended). Fixed boundaries are what make merging
//! trivially correct — no rebinning, ever.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Number of histogram buckets: value 0 plus one bucket per power of two.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, otherwise `64 - leading_zeros`,
/// clamped so bucket 63 is open-ended.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The smallest value belonging to bucket `index`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// The largest value belonging to bucket `index`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A thread-safe log2 histogram. Recording is a handful of relaxed atomic
/// adds — safe for solver- and quantum-frequency call sites.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the current contents into a sparse snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: sparse `(bucket, count)` pairs plus totals. Small on
/// the wire (empty buckets cost nothing) and mergeable bucket-by-bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (mean = `sum / count`).
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)`, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Folds `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut dense = [0u64; HISTOGRAM_BUCKETS];
        for &(i, n) in self.buckets.iter().chain(other.buckets.iter()) {
            dense[(i as usize).min(HISTOGRAM_BUCKETS - 1)] += n;
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u8, n))
            .collect();
    }

    /// Mean observed value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), or 0 for an empty histogram. Log2 buckets make
    /// this a ≤2x over-estimate — plenty for latency triage.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i as usize);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// JSON form: `{"count", "sum", "mean", "p50", "p99", "buckets": [[lo, hi, n], ...]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::from_u64(self.count)),
            ("sum".into(), Json::from_u64(self.sum)),
            ("mean".into(), Json::Num(self.mean())),
            (
                "p50".into(),
                Json::from_u64(self.quantile_upper_bound(0.50)),
            ),
            (
                "p99".into(),
                Json::from_u64(self.quantile_upper_bound(0.99)),
            ),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| {
                            Json::Arr(vec![
                                Json::from_u64(bucket_lower_bound(i as usize)),
                                Json::from_u64(bucket_upper_bound(i as usize)),
                                Json::from_u64(n),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A frozen view of a whole registry. Counters and histograms add under
/// [`MetricsSnapshot::merge`]; gauges add too, so a merged gauge reads as a
/// cluster-wide total rather than any one worker's level.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous levels by name (summed across workers on merge).
    pub gauges: BTreeMap<String, i64>,
    /// Distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`. Associative and commutative, so cluster
    /// aggregation order never changes the result.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// JSON form: `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from_u64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from_i64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of live metrics. Handle lookup takes the registry
/// lock once; callers cache the returned `Arc` and thereafter update it
/// with plain atomics, so the lock never sits on a hot path.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns (creating if absent) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Returns (creating if absent) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<AtomicI64> {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone()
    }

    /// Returns (creating if absent) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Freezes every metric into a snapshot (live handles keep counting).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}
