//! A minimal JSON value, emitter, and parser.
//!
//! The build environment has no crates.io mirror, so `c9-trace` carries the
//! tiny JSON subset its sinks need: the JSONL event log, the Chrome-trace
//! export, and `run_report.json` all emit through [`Json::render`], and the
//! observability tests read them back through [`Json::parse`].
//!
//! Numbers are `f64`, like JavaScript's: integers round-trip exactly up to
//! 2^53, far above any counter this codebase produces in one run. Objects
//! preserve insertion order so rendered reports are stable and diffable.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64` (exact up to 2^53).
    pub fn from_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A number from an `i64` (exact up to 2^53 in magnitude).
    pub fn from_i64(v: i64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no added whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_to(&mut out);
        out
    }

    fn render_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips; integral values print without a dot.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_to(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value, requiring only trailing whitespace after it.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one slice operation.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}
