//! `c9-trace`: the observability substrate of Cloud9-RS.
//!
//! The paper's whole evaluation (§7) is built on *measuring* the cluster —
//! useful-work breakdown, load-balancing timelines, per-worker throughput.
//! This crate is the zero-dependency telemetry layer every other crate
//! records into:
//!
//! * **Leveled structured logging** — the [`error!`], [`warn!`], [`info!`],
//!   [`debug!`] and [`trace!`] macros replace ad-hoc `eprintln!`s. The
//!   active [`Level`] comes from the `C9_LOG` environment variable (or
//!   [`set_level`]); enabled events go to stderr and, when a JSONL sink is
//!   installed with [`set_trace_out`], to a machine-readable event log.
//! * **Spans** — [`Span::enter`] starts a lightweight timed region
//!   ([`SpanKind`]: quantum, materialization, solver query, job transfer,
//!   balancing round, checkpoint, replay). Finished spans land in a
//!   per-thread ring buffer ([`ring::Ring`]) that drops oldest on overflow
//!   and *never blocks the hot path* (a contended push is counted, not
//!   waited for). [`drain_spans`] collects them; [`write_chrome_trace`]
//!   exports a Chrome-trace/Perfetto profile of worker quanta vs. solver
//!   vs. replay time (the §7.2 useful-work breakdown, continuously
//!   observable).
//! * **Metrics** — a [`Registry`] of counters, gauges, and fixed-boundary
//!   log2 [`Histogram`]s whose [`MetricsSnapshot`] is compact, mergeable
//!   (associative + commutative), and serializable: workers piggyback it on
//!   their existing status reports, so a new metric never needs wire-struct
//!   surgery again.
//! * **JSON** — a minimal emitter/parser ([`json::Json`]) used by the JSONL
//!   event log, the Chrome-trace export, and the coordinator's
//!   `run_report.json`; the build has no crates.io mirror, so this crate
//!   carries its own.
//!
//! # Determinism
//!
//! Instrumentation is determinism-neutral by construction: nothing in the
//! engine ever *reads* tracing state — levels, spans, and histograms are
//! write-only from the instrumented code's point of view, so path sets,
//! coverage, and bug sets are bit-identical with tracing on or off (pinned
//! by the `observability` integration test).

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod span;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{
    drain_spans, dropped_spans, enable_spans, spans_enabled, Span, SpanKind, SpanRecord,
};

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// --- levels ---------------------------------------------------------------

/// Severity of a log event, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The run is compromised (lost cluster, failed checkpoint write).
    Error = 0,
    /// Unexpected but survivable (replay divergence, dead worker).
    Warn = 1,
    /// Run life cycle: joins, deaths, rebalances, checkpoints (default).
    Info = 2,
    /// Per-round detail useful when debugging distributed failures.
    Debug = 3,
    /// Firehose.
    Trace = 4,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// The lowercase name (`"info"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" | "err" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error, warn, info, debug, or trace)"
            )),
        }
    }
}

/// Sentinel meaning "not yet initialized from `C9_LOG`".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_env() -> Level {
    std::env::var("C9_LOG")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(Level::Info)
}

/// The active log level: `C9_LOG` on first use (default `info`), or
/// whatever [`set_level`] installed since.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let l = level_from_env();
            // A racing set_level wins: only replace the sentinel.
            let _ =
                LEVEL.compare_exchange(LEVEL_UNSET, l as u8, Ordering::Relaxed, Ordering::Relaxed);
            level()
        }
        v => match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        },
    }
}

/// Overrides the active log level (e.g. from a `--log-level` flag).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether events at `level` are currently recorded.
pub fn enabled(level: Level) -> bool {
    level <= self::level()
}

// --- clock ----------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process's tracing epoch (first call), from the
/// monotonic clock. Shared by events and spans so they interleave correctly
/// in exported traces.
pub fn ts_micros() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

// --- event sink -----------------------------------------------------------

static EVENT_SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Installs a JSONL event sink at `path` (the `--trace-out` flag): every
/// subsequently enabled log event is appended as one JSON object per line.
/// Also enables span recording, so a single flag turns on full tracing.
pub fn set_trace_out(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *EVENT_SINK.lock().expect("event sink lock") = Some(BufWriter::new(file));
    enable_spans(true);
    Ok(())
}

/// Flushes the JSONL event sink, if one is installed.
pub fn flush() {
    if let Ok(mut guard) = EVENT_SINK.lock() {
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Records one log event: stderr (human form) plus the JSONL sink when one
/// is installed. Callers go through the level macros, which check
/// [`enabled`] first via the macro expansion.
pub fn log(level: Level, target: &'static str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let ts_us = ts_micros();
    let message = std::fmt::format(args);
    eprintln!("[{level:<5} {target}] {message}");
    let mut guard = EVENT_SINK.lock().expect("event sink lock");
    if let Some(w) = guard.as_mut() {
        let line = json::Json::Obj(vec![
            ("ts_us".into(), json::Json::from_u64(ts_us)),
            ("level".into(), json::Json::Str(level.as_str().into())),
            ("target".into(), json::Json::Str(target.into())),
            ("msg".into(), json::Json::Str(message)),
        ]);
        let _ = writeln!(w, "{}", line.render());
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        $crate::log($crate::Level::Trace, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests;
