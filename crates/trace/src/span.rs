//! Lightweight timed spans recorded into per-thread ring buffers.
//!
//! A [`Span`] is an RAII guard: [`Span::enter`] stamps the start time,
//! dropping it records a [`SpanRecord`] into the calling thread's ring.
//! Recording is disabled by default — a disabled span is two relaxed atomic
//! loads and no clock reads — and enabled by [`enable_spans`] (set by
//! `--trace-out` / `--trace-chrome`).
//!
//! The hot path never blocks: the per-thread ring is guarded by a mutex
//! only the owning thread pushes through, so the push uses `try_lock` —
//! if a concurrent [`drain_spans`] holds the lock at that instant, the
//! record is counted as dropped instead of waiting. Short-lived executor
//! threads hand their retained records to a process-wide spill ring when
//! they exit, so per-quantum lane threads do not leak registry entries.

use crate::ring::Ring;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What a span measured. The fixed taxonomy keeps records 4 words wide and
/// lets exports group by kind without string tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One worker quantum (`Worker::run_quantum`); detail = instructions.
    Quantum,
    /// One job materialization (virtual → materialized); detail = path len.
    Materialize,
    /// One path replay drive (`ReplayEngine::run`); detail = instructions.
    Replay,
    /// One solver satisfiability query; detail = constraint count.
    SolverQuery,
    /// One job batch export (encode + ship); detail = encoded bytes.
    JobTransfer,
    /// One coordinator balancing round; detail = transfer requests issued.
    BalanceRound,
    /// One checkpoint serialization + write; detail = pending jobs.
    Checkpoint,
}

impl SpanKind {
    /// The stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Quantum => "quantum",
            SpanKind::Materialize => "materialize",
            SpanKind::Replay => "replay",
            SpanKind::SolverQuery => "solver_query",
            SpanKind::JobTransfer => "job_transfer",
            SpanKind::BalanceRound => "balance_round",
            SpanKind::Checkpoint => "checkpoint",
        }
    }
}

/// One finished span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// What was measured.
    pub kind: SpanKind,
    /// Start, microseconds since the tracing epoch ([`crate::ts_micros`]).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread (small dense id, not the OS tid).
    pub tid: u64,
    /// Kind-specific payload (instructions, bytes, ...); see [`SpanKind`].
    pub detail: u64,
}

static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span recording on or off process-wide.
pub fn enable_spans(enabled: bool) {
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Per-thread span ring capacity. 64Ki records ≈ 2.5 MB per thread, enough
/// for several seconds of solver-query-granularity tracing.
const THREAD_RING_CAPACITY: usize = 1 << 16;

struct ThreadRing {
    ring: Mutex<Ring<SpanRecord>>,
    /// Pushes abandoned because a drain held the ring lock.
    contended: AtomicU64,
    tid: u64,
}

struct SpanGlobals {
    /// Live per-thread rings (pruned when their thread exits).
    registry: Mutex<Vec<Arc<ThreadRing>>>,
    /// Records inherited from exited threads.
    spill: Mutex<Ring<SpanRecord>>,
    /// Drops observed in rings that have since been drained or retired.
    retired_drops: AtomicU64,
    next_tid: AtomicU64,
}

fn globals() -> &'static SpanGlobals {
    static GLOBALS: OnceLock<SpanGlobals> = OnceLock::new();
    GLOBALS.get_or_init(|| SpanGlobals {
        registry: Mutex::new(Vec::new()),
        spill: Mutex::new(Ring::new(THREAD_RING_CAPACITY * 4)),
        retired_drops: AtomicU64::new(0),
        next_tid: AtomicU64::new(0),
    })
}

/// Registered thread-local ring; its `Drop` retires the ring into the
/// process-wide spill so short-lived executor threads leak nothing.
struct LocalRing(Arc<ThreadRing>);

impl Drop for LocalRing {
    fn drop(&mut self) {
        let g = globals();
        let records = self.0.ring.lock().map(|mut r| {
            g.retired_drops.fetch_add(
                r.dropped() + self.0.contended.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            r.drain()
        });
        if let (Ok(records), Ok(mut spill)) = (records, g.spill.lock()) {
            for rec in records {
                spill.push(rec);
            }
        }
        if let Ok(mut registry) = g.registry.lock() {
            registry.retain(|r| !Arc::ptr_eq(r, &self.0));
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

fn record(rec: SpanRecord) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let ring = local.get_or_insert_with(|| {
            let g = globals();
            let ring = Arc::new(ThreadRing {
                ring: Mutex::new(Ring::new(THREAD_RING_CAPACITY)),
                contended: AtomicU64::new(0),
                tid: g.next_tid.fetch_add(1, Ordering::Relaxed),
            });
            g.registry
                .lock()
                .expect("span registry lock")
                .push(ring.clone());
            LocalRing(ring)
        });
        let rec = SpanRecord {
            tid: ring.0.tid,
            ..rec
        };
        // Only a concurrent drain can hold this lock; never wait for it.
        match ring.0.ring.try_lock() {
            Ok(mut guard) => guard.push(rec),
            Err(_) => {
                ring.0.contended.fetch_add(1, Ordering::Relaxed);
            }
        };
    });
}

/// Collects every retained span record from all threads (and the spill of
/// exited threads), sorted by start time. Non-destructive for counters:
/// [`dropped_spans`] keeps accumulating.
pub fn drain_spans() -> Vec<SpanRecord> {
    let g = globals();
    let mut out: Vec<SpanRecord> = Vec::new();
    let rings: Vec<Arc<ThreadRing>> = g.registry.lock().expect("span registry lock").clone();
    for ring in rings {
        if let Ok(mut guard) = ring.ring.lock() {
            out.extend(guard.drain());
        }
    }
    if let Ok(mut spill) = g.spill.lock() {
        out.extend(spill.drain());
    }
    out.sort_by_key(|r| (r.start_us, r.tid));
    out
}

/// Total span records lost so far: ring overflows (oldest dropped),
/// contended pushes, and drops retired with exited threads.
pub fn dropped_spans() -> u64 {
    let g = globals();
    let mut total = g.retired_drops.load(Ordering::Relaxed);
    if let Ok(spill) = g.spill.lock() {
        total += spill.dropped();
    }
    let rings: Vec<Arc<ThreadRing>> = g.registry.lock().expect("span registry lock").clone();
    for ring in rings {
        total += ring.contended.load(Ordering::Relaxed);
        if let Ok(guard) = ring.ring.lock() {
            total += guard.dropped();
        }
    }
    total
}

/// RAII timed region. Construct with [`Span::enter`]; the record is written
/// when the guard drops. When spans are disabled the guard is inert (no
/// clock read, no allocation).
#[must_use = "a span measures the region until it is dropped"]
pub struct Span {
    kind: SpanKind,
    start_us: u64,
    detail: u64,
    armed: bool,
}

impl Span {
    /// Starts a span of `kind` (no-op unless [`spans_enabled`]).
    pub fn enter(kind: SpanKind) -> Span {
        let armed = spans_enabled();
        Span {
            kind,
            start_us: if armed { crate::ts_micros() } else { 0 },
            detail: 0,
            armed,
        }
    }

    /// Attaches the kind-specific payload (instructions, bytes, ...).
    pub fn detail(&mut self, detail: u64) {
        self.detail = detail;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = crate::ts_micros();
        record(SpanRecord {
            kind: self.kind,
            start_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            tid: 0, // stamped by `record`
            detail: self.detail,
        });
    }
}
