use crate::json::Json;
use crate::metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
use crate::ring::Ring;
use crate::span::{drain_spans, dropped_spans, enable_spans, Span, SpanKind};
use crate::Level;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch process-global tracer state (the event sink,
/// the span switch, the drain); the cargo test harness runs tests in
/// parallel threads of one process.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let mut ring = Ring::new(4);
    for i in 0..10u32 {
        ring.push(i);
    }
    assert_eq!(ring.dropped(), 6);
    assert_eq!(ring.len(), 4);
    // The retained window is the newest elements, oldest first.
    assert_eq!(ring.drain(), vec![6, 7, 8, 9]);
    assert_eq!(ring.len(), 0);
    assert!(ring.is_empty());
    // The drop counter survives a drain.
    assert_eq!(ring.dropped(), 6);
}

#[test]
fn ring_capacity_is_clamped_to_one() {
    let mut ring = Ring::new(0);
    assert_eq!(ring.capacity(), 1);
    ring.push(1u8);
    ring.push(2u8);
    assert_eq!(ring.drain(), vec![2]);
    assert_eq!(ring.dropped(), 1);
}

#[test]
fn histogram_bucket_boundaries() {
    // Bucket 0 is exactly {0}; bucket i >= 1 is [2^(i-1), 2^i - 1].
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    for i in 1..HISTOGRAM_BUCKETS {
        let lo = bucket_lower_bound(i);
        let hi = bucket_upper_bound(i);
        assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        assert!(lo <= hi);
        // Buckets tile the u64 range with no gaps.
        assert_eq!(lo, bucket_upper_bound(i - 1).wrapping_add(1));
    }
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

#[test]
fn histogram_snapshot_totals() {
    let h = Histogram::new();
    for v in [0, 1, 1, 3, 1000] {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 5);
    assert_eq!(snap.sum, 1005);
    assert_eq!(snap.mean(), 201.0);
    // 0 -> bucket 0; 1,1 -> bucket 1; 3 -> bucket 2; 1000 -> bucket 10.
    assert_eq!(snap.buckets, vec![(0, 1), (1, 2), (2, 1), (10, 1)]);
    assert_eq!(snap.quantile_upper_bound(0.5), 1);
    assert_eq!(snap.quantile_upper_bound(1.0), 1023);
    assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
}

fn sample_snapshot(seed: u64) -> MetricsSnapshot {
    let reg = Registry::new();
    reg.counter("paths")
        .fetch_add(seed, std::sync::atomic::Ordering::Relaxed);
    reg.gauge("queue_depth")
        .fetch_add(seed as i64 - 2, std::sync::atomic::Ordering::Relaxed);
    let h = reg.histogram("latency_us");
    for v in 0..seed {
        h.record(v * 17);
    }
    reg.snapshot()
}

#[test]
fn snapshot_merge_is_associative_and_commutative() {
    let (a, b, c) = (sample_snapshot(3), sample_snapshot(8), sample_snapshot(21));

    // (a + b) + c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);

    // a + (b + c)
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    // c + b + a
    let mut rev = c.clone();
    rev.merge(&b);
    rev.merge(&a);

    assert_eq!(left, right);
    assert_eq!(left, rev);
    assert_eq!(left.counters["paths"], 32);
    assert_eq!(left.gauges["queue_depth"], 26);
    assert_eq!(left.histograms["latency_us"].count, 32);
}

#[test]
fn snapshot_serde_roundtrip() {
    let snap = sample_snapshot(12);
    let bytes = serde::to_bytes(&snap);
    let back: MetricsSnapshot = serde::from_bytes(&bytes).expect("decode snapshot");
    assert_eq!(back, snap);
}

#[test]
fn json_roundtrip_and_escapes() {
    let doc = Json::Obj(vec![
        ("msg".into(), Json::Str("a \"quote\"\nand \\ tab\t".into())),
        ("n".into(), Json::from_u64(1 << 53)),
        ("neg".into(), Json::from_i64(-42)),
        ("frac".into(), Json::Num(0.125)),
        ("ok".into(), Json::Bool(true)),
        ("nothing".into(), Json::Null),
        (
            "arr".into(),
            Json::Arr(vec![Json::from_u64(1), Json::Str("héllo ☃".into())]),
        ),
    ]);
    let rendered = doc.render();
    let back = Json::parse(&rendered).expect("parse rendered JSON");
    assert_eq!(back, doc);
    assert_eq!(back.get("n").and_then(Json::as_u64), Some(1 << 53));
    assert_eq!(
        back.get("msg").and_then(Json::as_str),
        Some("a \"quote\"\nand \\ tab\t")
    );
}

#[test]
fn json_parses_foreign_input() {
    let v = Json::parse(
        "  { \"a\" : [ 1 , 2.5e1 , -3 ] , \"s\" : \"\\u00e9\\u2603 \\uD83D\\uDE00\" } ",
    )
    .expect("parse");
    assert_eq!(
        v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
        Some(3)
    );
    assert_eq!(
        v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
        Some(25.0)
    );
    assert_eq!(v.get("s").and_then(Json::as_str), Some("é☃ 😀"));
    assert!(Json::parse("{\"unterminated\": ").is_err());
    assert!(Json::parse("[1,]").is_err());
    assert!(Json::parse("1 2").is_err());
}

#[test]
fn jsonl_event_log_roundtrip() {
    let _guard = global_lock();
    let dir = std::env::temp_dir().join(format!("c9-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("events.jsonl");
    crate::set_level(Level::Info);
    crate::set_trace_out(&path).expect("install sink");
    crate::info!("worker {} joined epoch {}", 3, 7);
    crate::error!("quoted \"payload\"");
    crate::flush();
    let text = std::fs::read_to_string(&path).expect("read event log");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "expected at least two events: {text:?}");
    let mut msgs = Vec::new();
    for line in &lines {
        let event = Json::parse(line).expect("each line parses");
        assert!(event.get("ts_us").and_then(Json::as_u64).is_some());
        assert!(event.get("level").and_then(Json::as_str).is_some());
        msgs.push(event.get("msg").and_then(Json::as_str).unwrap().to_string());
    }
    assert!(msgs.iter().any(|m| m == "worker 3 joined epoch 7"));
    assert!(msgs.iter().any(|m| m == "quoted \"payload\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spans_record_drain_and_export() {
    let _guard = global_lock();
    enable_spans(true);
    {
        let mut span = Span::enter(SpanKind::SolverQuery);
        span.detail(17);
    }
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = done.clone();
    // A short-lived thread's records must survive via the spill ring.
    std::thread::spawn(move || {
        let _span = Span::enter(SpanKind::Quantum);
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
    })
    .join()
    .expect("span thread");
    assert!(done.load(std::sync::atomic::Ordering::SeqCst));
    let records = drain_spans();
    enable_spans(false);
    assert!(records
        .iter()
        .any(|r| r.kind == SpanKind::SolverQuery && r.detail == 17));
    assert!(records.iter().any(|r| r.kind == SpanKind::Quantum));
    assert!(records.windows(2).all(|w| w[0].start_us <= w[1].start_us));
    let _ = dropped_spans();

    let doc = crate::chrome_trace_json(&records, 42);
    let parsed = Json::parse(&doc.render()).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), records.len());
    assert!(events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("solver_query")
            && e.get("ph").and_then(Json::as_str) == Some("X")
            && e.get("pid").and_then(Json::as_u64) == Some(42)
    }));
}

#[test]
fn disabled_span_records_nothing() {
    let _guard = global_lock();
    enable_spans(false);
    {
        let mut span = Span::enter(SpanKind::Checkpoint);
        span.detail(5);
    }
    assert!(!drain_spans()
        .iter()
        .any(|r| r.kind == SpanKind::Checkpoint && r.detail == 5));
}

#[test]
fn level_parsing_and_order() {
    assert!(Level::Error < Level::Warn && Level::Warn < Level::Trace);
    for level in Level::ALL {
        assert_eq!(level.as_str().parse::<Level>().unwrap(), level);
    }
    assert_eq!("WARNING".parse::<Level>().unwrap(), Level::Warn);
    assert!("loud".parse::<Level>().is_err());
}
