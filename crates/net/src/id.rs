//! Worker and run identity.

use serde::{Deserialize, Serialize};

/// Identifier of a worker within a cluster.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WorkerId(pub u32);

/// Identifier of one *run* (tenant) among the runs a long-lived cluster
/// serves. Every frame of the run protocol is stamped with the run it
/// belongs to, so one worker daemon can time-slice several concurrent runs
/// without a stale frame from one run ever leaking into another.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RunId(pub u64);

impl RunId {
    /// The reserved service-level pseudo-run. Control frames stamped with it
    /// address the worker *daemon* rather than any single run (today only
    /// [`Control::Stop`](crate::Control::Stop), which shuts the whole
    /// service loop down). Real runs must use a non-zero id;
    /// [`RunSpecBuilder`](crate::RunSpecBuilder) rejects this value.
    pub const SERVICE: RunId = RunId(0);
}

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The reserved pseudo-worker identity of the coordinator itself, used as the
/// `source` of job batches the coordinator injects directly into a worker
/// (reclaimed work of a dead peer, or a resumed checkpoint frontier).
pub const COORDINATOR: WorkerId = WorkerId(u32::MAX);

impl WorkerId {
    /// The worker id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}
