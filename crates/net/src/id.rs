//! Worker identity.

use serde::{Deserialize, Serialize};

/// Identifier of a worker within a cluster.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WorkerId(pub u32);

/// The reserved pseudo-worker identity of the coordinator itself, used as the
/// `source` of job batches the coordinator injects directly into a worker
/// (reclaimed work of a dead peer, or a resumed checkpoint frontier).
pub const COORDINATOR: WorkerId = WorkerId(u32::MAX);

impl WorkerId {
    /// The worker id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}
