//! `c9-net`: the transport-agnostic distributed cluster runtime of Cloud9-RS.
//!
//! The paper's headline contribution is a *shared-nothing cluster* of
//! symbolic-execution workers that exchange only serialized job paths and
//! queue-length/coverage reports over the network (§3.2–§3.3). This crate
//! provides the pieces of that design that are independent of the engine:
//!
//! * [`Job`] / [`JobTree`] — exploration jobs encoded as root-to-node
//!   decision paths, aggregated into prefix tries; this *is* the wire
//!   format for work transfer.
//! * [`Control`], [`StatusReport`], [`FinalReport`], [`JobBatch`],
//!   [`RunSpec`] — the cluster protocol, as public serde-serializable
//!   messages.
//! * [`WorkerEndpoint`] / [`CoordinatorEndpoint`] / [`Transport`] — the
//!   endpoint abstraction the `c9-core` worker and balancer loops are
//!   written against.
//! * [`InProcTransport`] — crossbeam channels between threads of one
//!   process (the original harness wiring, zero serialization).
//! * [`TcpTransport`] — length-prefixed bincode frames over TCP, with
//!   reconnect-aware accept loops; runs a cluster as N OS processes via the
//!   `c9-worker` / `c9-coordinator` binaries, or fully in-process over
//!   localhost sockets for tests and benchmarks.

#![deny(missing_docs)]

pub mod frame;
mod id;
mod inproc;
mod job;
mod message;
pub mod reactor;
mod spec;
mod stats;
mod tcp;
mod transport;

pub use id::{RunId, WorkerId, COORDINATOR};
pub use inproc::{InProcCoordinatorEndpoint, InProcTransport, InProcWorkerEndpoint};
pub use job::{decode_jobs_flat, encode_jobs_flat, Job, JobTree, JobTreeVisitor};
pub use message::{
    Control, EnvSpec, ExportOrder, FinalReport, JobBatch, PeerInfo, RunSpec, StatusReport,
    TransferEvent, WireMessage, WIRE_VERSION,
};
pub use spec::{RunSpecBuilder, RunSpecError};
pub use stats::WorkerStats;
pub use tcp::{send_leave, TcpCoordinatorEndpoint, TcpTransport, TcpWorkerEndpoint, TcpWorkerHost};
pub use transport::{
    CoordinatorEndpoint, Endpoints, JoinRequest, MemberEvent, Transport, TransportError,
    WorkerEndpoint,
};
