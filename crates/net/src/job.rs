//! Exploration jobs and their wire encoding.
//!
//! A *job* designates one unexplored node of the global execution tree. As in
//! the paper (§3.2), a job is encoded as the path of decisions from the root
//! to that node: the receiving worker reconstructs ("materializes") the node
//! by replaying the path. When several jobs are transferred together their
//! paths usually share long prefixes, so they are aggregated into a *job
//! tree* (a prefix trie) before serialization. This module is the wire
//! format all transports ship between workers.

use c9_vm::PathChoice;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One exploration job: the path from the root of the execution tree to the
/// candidate node to explore.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Job {
    /// The decisions from the root to the node.
    pub path: Vec<PathChoice>,
}

impl Job {
    /// Creates a job for the given path.
    pub fn new(path: Vec<PathChoice>) -> Job {
        Job { path }
    }

    /// Depth of the node this job designates.
    pub fn depth(&self) -> usize {
        self.path.len()
    }
}

/// A prefix trie over job paths, used to exploit common path prefixes when
/// encoding a batch of jobs for transfer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobTree {
    children: BTreeMap<PathChoice, JobTree>,
    /// Whether a job ends exactly at this node.
    terminal: bool,
}

/// A visitor over a depth-first traversal of a [`JobTree`].
///
/// [`JobTree::walk`] descends every edge of the trie exactly once, in
/// lexicographic choice order, calling [`enter_edge`] on the way down and
/// [`leave_edge`] on the way back up. Because each shared prefix is entered
/// once — not once per job below it — a visitor can materialize or account a
/// whole batch in a single pass over the trie instead of decoding it to a
/// flat `Vec<Job>` first.
///
/// [`enter_edge`]: JobTreeVisitor::enter_edge
/// [`leave_edge`]: JobTreeVisitor::leave_edge
pub trait JobTreeVisitor {
    /// The walk descends the edge labelled `choice`. `terminal` is whether a
    /// job ends exactly at the node the edge leads to.
    fn enter_edge(&mut self, choice: PathChoice, terminal: bool);
    /// The walk returns back up over the most recently entered edge.
    fn leave_edge(&mut self);
}

impl JobTree {
    /// Creates an empty job tree.
    pub fn new() -> JobTree {
        JobTree::default()
    }

    /// Builds a job tree from a batch of jobs.
    pub fn from_jobs(jobs: &[Job]) -> JobTree {
        let mut tree = JobTree::new();
        for job in jobs {
            tree.insert(&job.path);
        }
        tree
    }

    /// Inserts one path.
    pub fn insert(&mut self, path: &[PathChoice]) {
        let mut node = self;
        for choice in path {
            node = node.children.entry(*choice).or_default();
        }
        node.terminal = true;
    }

    /// Expands the tree back into the list of jobs it encodes (in
    /// lexicographic path order).
    pub fn to_jobs(&self) -> Vec<Job> {
        // One DFS walk over the trie; pre-size the output and the shared
        // prefix scratch buffer from the trie's counts so the hot decode
        // path never reallocates them.
        struct Collector {
            prefix: Vec<PathChoice>,
            out: Vec<Job>,
        }
        impl JobTreeVisitor for Collector {
            fn enter_edge(&mut self, choice: PathChoice, terminal: bool) {
                self.prefix.push(choice);
                if terminal {
                    self.out.push(Job::new(self.prefix.clone()));
                }
            }
            fn leave_edge(&mut self) {
                self.prefix.pop();
            }
        }
        let mut collector = Collector {
            prefix: Vec::with_capacity(self.depth()),
            out: Vec::with_capacity(self.len()),
        };
        if self.terminal {
            collector.out.push(Job::new(Vec::new()));
        }
        self.walk(&mut collector);
        collector.out
    }

    /// Walks the trie depth-first, calling the visitor for every edge
    /// entered and left (lexicographic choice order, shared prefixes entered
    /// exactly once). The root node itself has no incoming edge; callers
    /// that care about an empty-path job check [`JobTree::is_terminal`] on
    /// the root before walking.
    pub fn walk<V: JobTreeVisitor>(&self, visitor: &mut V) {
        for (choice, child) in &self.children {
            visitor.enter_edge(*choice, child.terminal);
            child.walk(visitor);
            visitor.leave_edge();
        }
    }

    /// Whether a job ends exactly at this node.
    pub fn is_terminal(&self) -> bool {
        self.terminal
    }

    /// Number of outgoing edges of this node.
    pub fn branch_count(&self) -> usize {
        self.children.len()
    }

    /// The node one edge below this one, if the edge exists (incremental
    /// descent — callers walking a whole path avoid re-traversing from the
    /// root at every step).
    pub fn child(&self, choice: &PathChoice) -> Option<&JobTree> {
        self.children.get(choice)
    }

    /// The node reached by following `path` from this node, if every edge
    /// of the path exists.
    pub fn node(&self, path: &[PathChoice]) -> Option<&JobTree> {
        let mut node = self;
        for choice in path {
            node = node.children.get(choice)?;
        }
        Some(node)
    }

    /// Whether a job with exactly this path is encoded in the trie.
    pub fn contains(&self, path: &[PathChoice]) -> bool {
        self.node(path).is_some_and(|n| n.terminal)
    }

    /// Merges every job of `other` into this trie (set union; one walk of
    /// `other`, no intermediate `Vec<Job>`).
    pub fn merge(&mut self, other: &JobTree) {
        self.terminal |= other.terminal;
        for (choice, child) in &other.children {
            self.children.entry(*choice).or_default().merge(child);
        }
    }

    /// Removes the job with exactly this path, pruning trie nodes that no
    /// longer lead to any job. Returns whether the job was present.
    pub fn remove(&mut self, path: &[PathChoice]) -> bool {
        match path.split_first() {
            None => {
                let was = self.terminal;
                self.terminal = false;
                was
            }
            Some((choice, rest)) => {
                let Some(child) = self.children.get_mut(choice) else {
                    return false;
                };
                let removed = child.remove(rest);
                if removed && !child.terminal && child.children.is_empty() {
                    self.children.remove(choice);
                }
                removed
            }
        }
    }

    /// Number of jobs encoded.
    pub fn len(&self) -> usize {
        usize::from(self.terminal) + self.children.values().map(JobTree::len).sum::<usize>()
    }

    /// Whether the tree encodes no jobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depth of the deepest path in the trie.
    pub fn depth(&self) -> usize {
        self.children
            .values()
            .map(|c| 1 + c.depth())
            .max()
            .unwrap_or(0)
    }

    /// Number of trie nodes (a measure of the shared-prefix compression).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .values()
            .map(JobTree::node_count)
            .sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Wire encoding.
// ---------------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

fn encode_choice(out: &mut Vec<u8>, choice: &PathChoice) {
    match choice {
        PathChoice::Branch(false) => out.push(0),
        PathChoice::Branch(true) => out.push(1),
        PathChoice::Alt { chosen, total } => {
            out.push(2);
            push_varint(out, u64::from(*chosen));
            push_varint(out, u64::from(*total));
        }
    }
}

fn choice_encoded_len(choice: &PathChoice) -> usize {
    match choice {
        PathChoice::Branch(_) => 1,
        PathChoice::Alt { chosen, total } => {
            1 + varint_len(u64::from(*chosen)) + varint_len(u64::from(*total))
        }
    }
}

fn decode_choice(data: &[u8], pos: &mut usize) -> Option<PathChoice> {
    let tag = *data.get(*pos)?;
    *pos += 1;
    match tag {
        0 => Some(PathChoice::Branch(false)),
        1 => Some(PathChoice::Branch(true)),
        2 => {
            let chosen = read_varint(data, pos)? as u32;
            let total = read_varint(data, pos)? as u32;
            Some(PathChoice::Alt { chosen, total })
        }
        _ => None,
    }
}

impl JobTree {
    /// Serializes the job tree into a compact byte string.
    ///
    /// The encoding is a pre-order walk; each node stores its terminal flag
    /// and its child edges (choice + subtree).
    pub fn encode(&self) -> Vec<u8> {
        // Every node contributes its terminal flag and child count; every
        // edge contributes its choice encoding. Pre-sizing from the node
        // count keeps the encoder allocation-free after this reservation for
        // the common all-`Branch` case.
        let mut out = Vec::with_capacity(self.node_count() * 3);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.terminal));
        push_varint(out, self.children.len() as u64);
        for (choice, child) in &self.children {
            encode_choice(out, choice);
            child.encode_into(out);
        }
    }

    /// Deserializes a job tree produced by [`JobTree::encode`].
    pub fn decode(data: &[u8]) -> Option<JobTree> {
        let mut pos = 0;
        let tree = JobTree::decode_from(data, &mut pos)?;
        if pos == data.len() {
            Some(tree)
        } else {
            None
        }
    }

    fn decode_from(data: &[u8], pos: &mut usize) -> Option<JobTree> {
        let terminal = *data.get(*pos)? != 0;
        *pos += 1;
        let n_children = read_varint(data, pos)? as usize;
        let mut children = BTreeMap::new();
        for _ in 0..n_children {
            let choice = decode_choice(data, pos)?;
            let child = JobTree::decode_from(data, pos)?;
            children.insert(choice, child);
        }
        Some(JobTree { children, terminal })
    }
}

/// Encodes a batch of jobs without prefix sharing (used as the baseline in
/// the job-encoding ablation benchmark and for single-job transfers).
pub fn encode_jobs_flat(jobs: &[Job]) -> Vec<u8> {
    // Exact output size, computed up front so the encoder performs a single
    // allocation regardless of batch size.
    let total: usize = varint_len(jobs.len() as u64)
        + jobs
            .iter()
            .map(|job| {
                varint_len(job.path.len() as u64)
                    + job.path.iter().map(choice_encoded_len).sum::<usize>()
            })
            .sum::<usize>();
    let mut out = Vec::with_capacity(total);
    push_varint(&mut out, jobs.len() as u64);
    for job in jobs {
        push_varint(&mut out, job.path.len() as u64);
        for choice in &job.path {
            encode_choice(&mut out, choice);
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Decodes a batch encoded by [`encode_jobs_flat`].
pub fn decode_jobs_flat(data: &[u8]) -> Option<Vec<Job>> {
    let mut pos = 0;
    let count = read_varint(data, &mut pos)? as usize;
    // A hostile length prefix must not trigger a huge allocation: each job
    // costs at least one byte, so cap the reservation by the input size.
    let mut jobs = Vec::with_capacity(count.min(data.len()));
    for _ in 0..count {
        let len = read_varint(data, &mut pos)? as usize;
        let mut path = Vec::with_capacity(len.min(data.len()));
        for _ in 0..len {
            path.push(decode_choice(data, &mut pos)?);
        }
        jobs.push(Job::new(path));
    }
    Some(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jobs() -> Vec<Job> {
        let b = PathChoice::Branch;
        vec![
            Job::new(vec![b(true), b(true), b(false)]),
            Job::new(vec![b(true), b(true), b(true)]),
            Job::new(vec![b(true), b(false)]),
            Job::new(vec![
                b(false),
                PathChoice::Alt {
                    chosen: 2,
                    total: 5,
                },
                b(true),
            ]),
        ]
    }

    #[test]
    fn job_tree_roundtrip_preserves_jobs() {
        let jobs = sample_jobs();
        let tree = JobTree::from_jobs(&jobs);
        assert_eq!(tree.len(), jobs.len());
        let mut recovered = tree.to_jobs();
        let mut expected = jobs.clone();
        recovered.sort_by(|a, b| a.path.cmp(&b.path));
        expected.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(recovered, expected);
    }

    #[test]
    fn job_tree_shares_prefixes() {
        let jobs = sample_jobs();
        let tree = JobTree::from_jobs(&jobs);
        let total_path_nodes: usize = jobs.iter().map(|j| j.path.len()).sum();
        assert!(tree.node_count() <= total_path_nodes + 1);
    }

    #[test]
    fn tree_depth_matches_longest_path() {
        let jobs = sample_jobs();
        let tree = JobTree::from_jobs(&jobs);
        assert_eq!(tree.depth(), 3);
        assert_eq!(JobTree::new().depth(), 0);
    }

    #[test]
    fn walk_enters_every_edge_once_in_lexicographic_order() {
        let jobs = sample_jobs();
        let tree = JobTree::from_jobs(&jobs);
        struct Tracer {
            prefix: Vec<PathChoice>,
            entered: Vec<Vec<PathChoice>>,
            terminals: Vec<Vec<PathChoice>>,
        }
        impl JobTreeVisitor for Tracer {
            fn enter_edge(&mut self, choice: PathChoice, terminal: bool) {
                self.prefix.push(choice);
                self.entered.push(self.prefix.clone());
                if terminal {
                    self.terminals.push(self.prefix.clone());
                }
            }
            fn leave_edge(&mut self) {
                self.prefix.pop();
            }
        }
        let mut tracer = Tracer {
            prefix: Vec::new(),
            entered: Vec::new(),
            terminals: Vec::new(),
        };
        tree.walk(&mut tracer);
        // Balanced enter/leave: the walk ended back at the root.
        assert!(tracer.prefix.is_empty());
        // One enter per trie edge (= every node except the root).
        assert_eq!(tracer.entered.len(), tree.node_count() - 1);
        let mut unique = tracer.entered.clone();
        unique.dedup();
        assert_eq!(unique, tracer.entered, "an edge was entered twice");
        assert!(tracer.entered.windows(2).all(|w| w[0] < w[1]));
        // Terminal notifications are exactly the encoded jobs.
        let mut expected: Vec<Vec<PathChoice>> =
            sample_jobs().into_iter().map(|j| j.path).collect();
        expected.sort();
        assert_eq!(tracer.terminals, expected);
    }

    #[test]
    fn node_lookup_and_contains() {
        let jobs = sample_jobs();
        let tree = JobTree::from_jobs(&jobs);
        let b = PathChoice::Branch;
        assert!(tree.contains(&[b(true), b(false)]));
        assert!(!tree.contains(&[b(true)]), "interior node is not a job");
        let shared = tree.node(&[b(true), b(true)]).expect("shared prefix");
        assert_eq!(shared.branch_count(), 2);
        assert!(!shared.is_terminal());
        assert!(tree.node(&[b(false), b(false)]).is_none());
    }

    #[test]
    fn merge_is_set_union() {
        let jobs = sample_jobs();
        let (left, right) = jobs.split_at(2);
        let mut tree = JobTree::from_jobs(left);
        tree.merge(&JobTree::from_jobs(right));
        // Overlapping merge adds nothing.
        tree.merge(&JobTree::from_jobs(&jobs));
        assert_eq!(tree, JobTree::from_jobs(&jobs));
    }

    #[test]
    fn remove_prunes_empty_branches() {
        let jobs = sample_jobs();
        let mut tree = JobTree::from_jobs(&jobs);
        for job in &jobs {
            assert!(tree.remove(&job.path));
            assert!(!tree.contains(&job.path));
            // Removing again is a no-op.
            assert!(!tree.remove(&job.path));
        }
        assert!(tree.is_empty());
        assert_eq!(
            tree.node_count(),
            1,
            "dangling interior nodes were not pruned"
        );
    }

    #[test]
    fn remove_keeps_shared_prefixes_alive() {
        let b = PathChoice::Branch;
        let jobs = vec![
            Job::new(vec![b(true), b(true)]),
            Job::new(vec![b(true), b(false)]),
        ];
        let mut tree = JobTree::from_jobs(&jobs);
        assert!(tree.remove(&jobs[0].path));
        assert!(tree.contains(&jobs[1].path));
        assert!(tree.node(&[b(true)]).is_some());
    }

    #[test]
    fn empty_path_job_roundtrips_through_walk() {
        let jobs = vec![
            Job::new(Vec::new()),
            Job::new(vec![PathChoice::Branch(true)]),
        ];
        let tree = JobTree::from_jobs(&jobs);
        assert!(tree.is_terminal());
        assert_eq!(tree.to_jobs(), jobs);
    }

    #[test]
    fn wire_encoding_roundtrip() {
        let jobs = sample_jobs();
        let tree = JobTree::from_jobs(&jobs);
        let bytes = tree.encode();
        let decoded = JobTree::decode(&bytes).expect("decode");
        assert_eq!(decoded, tree);
    }

    #[test]
    fn flat_encoding_roundtrip() {
        let jobs = sample_jobs();
        let bytes = encode_jobs_flat(&jobs);
        let decoded = decode_jobs_flat(&bytes).expect("decode");
        assert_eq!(decoded, jobs);
    }

    #[test]
    fn flat_encoding_presizes_exactly() {
        let jobs = sample_jobs();
        let bytes = encode_jobs_flat(&jobs);
        // The capacity computation must agree with the bytes produced.
        assert_eq!(bytes.capacity(), bytes.len());
    }

    #[test]
    fn tree_encoding_is_smaller_for_shared_prefixes() {
        // Many deep paths sharing one long prefix compress well.
        let mut prefix: Vec<PathChoice> = (0..50).map(|i| PathChoice::Branch(i % 2 == 0)).collect();
        let mut jobs = Vec::new();
        for i in 0..20 {
            let mut p = prefix.clone();
            p.push(PathChoice::Alt {
                chosen: i,
                total: 20,
            });
            jobs.push(Job::new(p));
        }
        prefix.clear();
        let tree_bytes = JobTree::from_jobs(&jobs).encode();
        let flat_bytes = encode_jobs_flat(&jobs);
        assert!(
            tree_bytes.len() < flat_bytes.len() / 3,
            "tree {} vs flat {}",
            tree_bytes.len(),
            flat_bytes.len()
        );
    }

    #[test]
    fn corrupted_encodings_are_rejected() {
        let jobs = sample_jobs();
        let mut bytes = JobTree::from_jobs(&jobs).encode();
        bytes.push(0xff);
        assert!(JobTree::decode(&bytes).is_none());
        assert!(JobTree::decode(&[2]).is_none());
    }

    #[test]
    fn hostile_flat_length_prefix_does_not_overallocate() {
        // Claims 2^40 jobs but carries no payload.
        let mut bytes = Vec::new();
        super::push_varint(&mut bytes, 1u64 << 40);
        assert!(decode_jobs_flat(&bytes).is_none());
    }
}
