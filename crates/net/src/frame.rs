//! Length-prefixed bincode framing.
//!
//! Every TCP connection carries a stream of frames: a 4-byte little-endian
//! payload length followed by the bincode-serialized message. The length is
//! validated against [`MAX_FRAME_LEN`] before any allocation, so a corrupt
//! or hostile peer cannot trigger unbounded allocations.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (64 MiB). Large enough for a serialized
/// target program plus any realistic job batch, small enough to bound the
/// damage of a corrupted length prefix.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Encodes one frame (length prefix + payload) into a byte vector.
pub fn encode_frame<T: Serialize>(msg: &T) -> io::Result<Vec<u8>> {
    let payload = bincode::serialize(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decodes one frame from the front of `data`, returning the message and the
/// number of bytes consumed. Fails when the frame is truncated or malformed.
pub fn decode_frame<T: Deserialize>(data: &[u8]) -> io::Result<(T, usize)> {
    if data.len() < 4 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "frame header truncated",
        ));
    }
    let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    if data.len() < 4 + len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "frame payload truncated",
        ));
    }
    let msg = bincode::deserialize(&data[4..4 + len])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((msg, 4 + len))
}

/// Writes one frame to a stream and flushes it.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> io::Result<()> {
    let bytes = encode_frame(msg)?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads one frame from a stream. Returns `ErrorKind::UnexpectedEof` when
/// the peer closed the connection cleanly between frames.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> io::Result<T> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    bincode::deserialize(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_buffer() {
        let msg = vec![1u64, 2, 3];
        let bytes = encode_frame(&msg).unwrap();
        let (decoded, used): (Vec<u64>, usize) = decode_frame(&bytes).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn frame_roundtrip_through_stream() {
        let msg = String::from("hello frames");
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let decoded: String = read_frame(&mut cursor).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        assert!(decode_frame::<Vec<u8>>(&bytes).is_err());
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame::<_, Vec<u8>>(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = encode_frame(&vec![7u8; 100]).unwrap();
        assert!(decode_frame::<Vec<u8>>(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_frame::<Vec<u8>>(&bytes[..2]).is_err());
    }
}
