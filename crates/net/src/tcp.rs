//! The TCP transport: a cluster of OS processes on a network.
//!
//! This is the paper's deployment (§3.3): every worker is a process hosting
//! one symbolic execution engine, listening on a socket; the coordinator
//! process runs the load balancer and drives the run. Job batches travel
//! directly between workers over lazily-dialed peer connections — the
//! coordinator only ever sees queue lengths and coverage bit vectors,
//! exactly as in the paper.
//!
//! Every endpoint is backed by one [`reactor`](crate::reactor) thread that
//! owns all of its sockets: the listener, the coordinator connection, and
//! every peer connection. Frames are parsed incrementally out of
//! per-connection read buffers, writes drain through per-connection queues
//! on writability, and heartbeats tick off the reactor's timer wheel — an
//! endpoint holds O(1) threads no matter how many peers it talks to, which
//! is what makes a 256-worker (or federated) coordinator viable in one
//! process.
//!
//! Membership is elastic in both directions:
//!
//! * the coordinator can dial a fixed worker list
//!   ([`TcpCoordinatorEndpoint::connect`], the static deployment), and/or
//!   listen for workers that attach to a running cluster with a
//!   [`WireMessage::Join`] handshake ([`TcpCoordinatorEndpoint::listen`]);
//! * each worker's transport sends [`WireMessage::Heartbeat`] frames from
//!   the reactor's timer wheel, so the coordinator's failure detector keeps
//!   working while the worker loop is deep inside a solver call;
//! * every worker carries a per-worker *epoch* assigned at join time; a
//!   re-joining worker gets a fresh epoch and peers drop both the stale
//!   cached connection and any frames stamped with the old epoch.
//!
//! Join handshakes are bounded: a connection that never completes its
//! [`WireMessage::Join`] (dead dialer, garbage frame) is swept after
//! [`JOIN_HANDSHAKE_TIMEOUT`] and its socket released, so abandoned
//! handshakes cannot pin coordinator resources.

use crate::frame::encode_frame;
use crate::message::{
    Control, FinalReport, JobBatch, PeerInfo, RunSpec, StatusReport, WireMessage, WIRE_VERSION,
};
use crate::reactor::{Reactor, ReactorEvent, ReactorHandle, TimerId, Token};
use crate::transport::{
    CoordinatorEndpoint, Endpoints, JoinRequest, MemberEvent, Transport, TransportError,
    WorkerEndpoint,
};
use crate::{RunId, WorkerId};
use c9_vm::StrategyKind;
use crossbeam::channel::Receiver;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How long a worker-initiated connection may sit between `accept` and a
/// completed [`WireMessage::Join`] handshake (or between the surfaced
/// [`JoinRequest`] and the coordinator's admission decision) before the
/// coordinator sweeps it and releases the socket.
pub const JOIN_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Shuts the reactor down when the last owner (host or endpoint) goes away.
struct ReactorGuard(ReactorHandle);

impl Drop for ReactorGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn encode(msg: &WireMessage) -> Result<Vec<u8>, TransportError> {
    encode_frame(msg).map_err(TransportError::from)
}

/// The peer table of one worker: listen address, fencing epoch, and the
/// lazily-dialed connection of every peer. A membership update that changes
/// a peer's address or epoch drops the cached connection — the old socket
/// either is dead or belongs to a fenced-off incarnation.
struct PeerTable {
    addrs: Vec<String>,
    epochs: Vec<u64>,
    conns: Vec<Option<Token>>,
}

impl PeerTable {
    /// Builds a table from a bare address list (static deployments, where
    /// epochs are unknown and every batch is accepted).
    fn from_addrs(addrs: Vec<String>) -> PeerTable {
        let n = addrs.len();
        PeerTable {
            addrs,
            epochs: vec![0; n],
            conns: (0..n).map(|_| None).collect(),
        }
    }

    /// Builds a table from a full membership announcement.
    fn from_infos(peers: &[PeerInfo]) -> PeerTable {
        let mut table = PeerTable::from_addrs(Vec::new());
        table.update(peers, None);
        table
    }

    fn len(&self) -> usize {
        self.addrs.len()
    }

    /// The last announced epoch of a peer (0 = unknown, accept anything).
    fn epoch(&self, worker: WorkerId) -> u64 {
        self.epochs.get(worker.index()).copied().unwrap_or(0)
    }

    /// Applies a membership update, dropping stale connections.
    fn update(&mut self, peers: &[PeerInfo], handle: Option<&ReactorHandle>) {
        for peer in peers {
            let idx = peer.worker.index();
            if idx >= self.addrs.len() {
                self.addrs.resize(idx + 1, String::new());
                self.epochs.resize(idx + 1, 0);
                self.conns.resize_with(idx + 1, || None);
            }
            if self.addrs[idx] != peer.addr || self.epochs[idx] != peer.epoch {
                // A re-joined worker's old socket must not linger in the
                // table, or job batches would vanish into the dead
                // connection.
                if let (Some(handle), Some(token)) = (handle, self.conns[idx].take()) {
                    handle.close(token);
                }
            }
            self.addrs[idx] = peer.addr.clone();
            self.epochs[idx] = peer.epoch;
        }
    }

    /// Forgets the connection behind a token the reactor reported closed.
    fn drop_token(&mut self, token: Token) {
        for slot in &mut self.conns {
            if *slot == Some(token) {
                *slot = None;
            }
        }
    }

    /// The connection token of a peer, dialing the peer on first use.
    fn token(
        &mut self,
        destination: WorkerId,
        handle: &ReactorHandle,
    ) -> Result<Token, TransportError> {
        let idx = destination.index();
        if idx >= self.addrs.len() || self.addrs[idx].is_empty() {
            return Err(TransportError::Io(format!(
                "unknown peer {destination} (cluster has {} workers)",
                self.addrs.len()
            )));
        }
        if self.conns[idx].is_none() {
            let stream = TcpStream::connect(&self.addrs[idx])?;
            stream.set_nodelay(true).ok();
            self.conns[idx] = Some(handle.add_conn(stream));
        }
        Ok(self.conns[idx].expect("peer conn present"))
    }
}

/// A worker-side listener: accepts coordinator and peer connections and
/// demultiplexes their frames into one reactor event queue.
pub struct TcpWorkerHost {
    local_addr: SocketAddr,
    handle: ReactorHandle,
    events_rx: Receiver<ReactorEvent>,
    guard: ReactorGuard,
}

impl TcpWorkerHost {
    /// Binds the worker listener and spawns the endpoint's reactor.
    pub fn bind(addr: &str) -> io::Result<TcpWorkerHost> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (handle, events_rx) = Reactor::spawn(&format!("worker-{local_addr}"))?;
        handle.add_listener(listener);
        Ok(TcpWorkerHost {
            local_addr,
            guard: ReactorGuard(handle.clone()),
            handle,
            events_rx,
        })
    }

    /// The address the listener is bound to (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn into_endpoint(self) -> TcpWorkerEndpoint {
        TcpWorkerEndpoint {
            id: WorkerId(0),
            num_workers: 0,
            peers: PeerTable::from_addrs(Vec::new()),
            coordinator: None,
            coordinator_down: false,
            handle: self.handle,
            events_rx: self.events_rx,
            pending_control: VecDeque::new(),
            pending_jobs: VecDeque::new(),
            pending_start: VecDeque::new(),
            worker_epoch: 0,
            assigned_strategy: StrategyKind::default(),
            heartbeat: None,
            _guard: self.guard,
        }
    }

    /// Waits for a coordinator to connect and introduce itself, returning
    /// the worker endpoint for the session. Control or job frames that race
    /// ahead of the hello are preserved for the endpoint.
    pub fn accept_coordinator(self, timeout: Duration) -> Option<TcpWorkerEndpoint> {
        let mut endpoint = self.into_endpoint();
        let deadline = Instant::now() + timeout;
        while endpoint.coordinator.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match endpoint.events_rx.recv_timeout(deadline - now) {
                Ok(event) => endpoint.dispatch(event),
                Err(_) => return None,
            }
        }
        Some(endpoint)
    }

    /// Dials a listening coordinator and joins its cluster (elastic
    /// membership): sends the [`WireMessage::Join`] handshake, waits for the
    /// acknowledgement that assigns this worker's identity and epoch, and
    /// returns the endpoint for the session. `previous` names the identity
    /// of this daemon's previous incarnation when re-joining after a lost
    /// connection, so the coordinator can fence it off.
    pub fn join_coordinator(
        self,
        coordinator_addr: &str,
        previous: Option<(WorkerId, u64)>,
        timeout: Duration,
    ) -> Result<TcpWorkerEndpoint, TransportError> {
        let deadline = Instant::now() + timeout;
        // The handshake happens in blocking mode on the caller's thread;
        // only the established session is handed to the reactor. A frame
        // read reads exactly its own bytes, so anything the coordinator
        // sends after the ack is still in the socket for the reactor.
        let mut stream = dial_until(coordinator_addr, deadline)?;
        stream.set_nodelay(true).ok();
        crate::frame::write_frame(
            &mut stream,
            &WireMessage::Join {
                version: WIRE_VERSION,
                listen_addr: self.local_addr.to_string(),
                previous,
            },
        )
        .map_err(TransportError::from)?;
        stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .ok();
        let ack: WireMessage =
            crate::frame::read_frame(&mut stream).map_err(TransportError::from)?;
        stream.set_read_timeout(None).ok();
        let WireMessage::JoinAck {
            worker,
            epoch,
            peers,
            strategy,
        } = ack
        else {
            return Err(TransportError::Io(
                "coordinator answered the join with an unexpected frame".into(),
            ));
        };
        let mut endpoint = self.into_endpoint();
        endpoint.id = worker;
        endpoint.num_workers = peers.len();
        endpoint.peers = PeerTable::from_infos(&peers);
        endpoint.coordinator = Some(endpoint.handle.add_conn(stream));
        endpoint.worker_epoch = epoch;
        endpoint.assigned_strategy = strategy;
        Ok(endpoint)
    }
}

/// Worker endpoint over TCP.
pub struct TcpWorkerEndpoint {
    id: WorkerId,
    num_workers: usize,
    peers: PeerTable,
    /// The connection the coordinator speaks on (`None` until the first
    /// hello in the accept path).
    coordinator: Option<Token>,
    coordinator_down: bool,
    handle: ReactorHandle,
    events_rx: Receiver<ReactorEvent>,
    pending_control: VecDeque<(RunId, Control)>,
    pending_jobs: VecDeque<JobBatch>,
    pending_start: VecDeque<RunSpec>,
    worker_epoch: u64,
    assigned_strategy: StrategyKind,
    /// The armed heartbeat timer and its period, re-armed onto the new
    /// connection when a reconnecting coordinator replaces the old one.
    heartbeat: Option<(TimerId, Duration)>,
    _guard: ReactorGuard,
}

impl TcpWorkerEndpoint {
    /// Number of workers in the cluster, as announced by the coordinator.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// This worker's fencing epoch (assigned at join, or by the run spec).
    pub fn worker_epoch(&self) -> u64 {
        self.worker_epoch
    }

    /// The exploration strategy the coordinator's portfolio assigned at
    /// join time (informational until the run spec confirms it).
    pub fn assigned_strategy(&self) -> StrategyKind {
        self.assigned_strategy
    }

    /// Waits for the coordinator to begin a run.
    pub fn wait_start(&mut self, timeout: Duration) -> Option<RunSpec> {
        if let Some(spec) = self.pending_start.pop_front() {
            return Some(self.begin_run(spec));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(event) => {
                    self.dispatch(event);
                    if let Some(spec) = self.pending_start.pop_front() {
                        return Some(self.begin_run(spec));
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Adopts a run spec's worker-epoch assignment. Fencing between runs
    /// is no longer the endpoint's job: every control frame and job batch
    /// carries its [`RunId`], and the worker's run service drops frames
    /// addressed to runs it does not host.
    fn begin_run(&mut self, spec: RunSpec) -> RunSpec {
        self.worker_epoch = spec.worker_epoch;
        spec
    }

    fn dispatch(&mut self, event: ReactorEvent) {
        match event {
            ReactorEvent::Accepted { .. } => {
                // The connection identifies itself with its first frame
                // (hello from a coordinator, a job batch from a peer).
            }
            ReactorEvent::Frame { conn, payload } => {
                let Ok(msg) = bincode::deserialize::<WireMessage>(&payload) else {
                    self.handle.close(conn);
                    return;
                };
                self.dispatch_msg(conn, msg);
            }
            ReactorEvent::Closed { conn } => {
                if self.coordinator == Some(conn) {
                    self.coordinator_down = true;
                    if let Some((timer, _)) = self.heartbeat.take() {
                        self.handle.cancel_timer(timer);
                    }
                }
                self.peers.drop_token(conn);
            }
            ReactorEvent::Tick { .. } => {}
        }
    }

    fn dispatch_msg(&mut self, conn: Token, msg: WireMessage) {
        match msg {
            WireMessage::CoordinatorHello {
                version,
                worker,
                num_workers,
                peers,
            } => {
                if version != WIRE_VERSION {
                    // A coordinator speaking a different protocol version:
                    // drop the connection rather than mis-decode its frames.
                    self.handle.close(conn);
                    return;
                }
                // A reconnecting coordinator replaces the control channel.
                if let Some(old) = self.coordinator {
                    if old != conn {
                        self.handle.close(old);
                    }
                }
                self.id = worker;
                self.num_workers = num_workers as usize;
                self.peers = PeerTable::from_addrs(peers);
                self.coordinator = Some(conn);
                self.coordinator_down = false;
                if let Some((timer, period)) = self.heartbeat.take() {
                    self.handle.cancel_timer(timer);
                    self.arm_heartbeat(period);
                }
            }
            WireMessage::Start(spec) => self.pending_start.push_back(*spec),
            WireMessage::Control { run, msg } => self.pending_control.push_back((run, msg)),
            WireMessage::Jobs(batch) => self.pending_jobs.push_back(batch),
            // Everything else is coordinator-bound; a worker receiving one
            // indicates a confused peer. Ignore.
            WireMessage::Status(_)
            | WireMessage::Final(_)
            | WireMessage::Join { .. }
            | WireMessage::JoinAck { .. }
            | WireMessage::Heartbeat { .. }
            | WireMessage::Leave { .. } => {}
        }
    }

    fn pump(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            self.dispatch(event);
        }
    }

    fn coordinator_token(&self) -> Result<Token, TransportError> {
        if self.coordinator_down {
            return Err(TransportError::Disconnected);
        }
        self.coordinator.ok_or(TransportError::Disconnected)
    }

    fn send_to_coordinator(&mut self, msg: &WireMessage) -> Result<(), TransportError> {
        self.pump();
        let token = self.coordinator_token()?;
        self.handle.send(token, encode(msg)?);
        Ok(())
    }

    fn heartbeat_msg(&self) -> WireMessage {
        WireMessage::Heartbeat {
            worker: self.id,
            epoch: self.worker_epoch,
        }
    }

    fn arm_heartbeat(&mut self, interval: Duration) {
        let Ok(token) = self.coordinator_token() else {
            return;
        };
        let Ok(frame) = encode(&self.heartbeat_msg()) else {
            return;
        };
        let timer = self.handle.set_send_timer(token, interval, frame);
        self.heartbeat = Some((timer, interval));
    }

    /// Probes the coordinator connection by enqueueing a heartbeat frame.
    /// Returns false once the reactor has observed the connection's death
    /// (the first frame after a peer death may still land in the kernel
    /// buffer, so an idle daemon should probe periodically rather than
    /// once).
    pub fn probe_coordinator(&mut self) -> bool {
        self.send_to_coordinator(&self.heartbeat_msg()).is_ok()
    }
}

impl WorkerEndpoint for TcpWorkerEndpoint {
    fn id(&self) -> WorkerId {
        self.id
    }

    fn try_recv_control(&mut self) -> Option<(RunId, Control)> {
        self.pump();
        self.pending_control.pop_front()
    }

    fn try_recv_jobs(&mut self) -> Option<JobBatch> {
        self.pump();
        while let Some(batch) = self.pending_jobs.pop_front() {
            // Drop batches from a fenced-off previous incarnation of a
            // re-joined peer. Batches for runs this worker does not host
            // (stale, cancelled, not yet admitted) are the run service's
            // job to drop — the endpoint does not know the hosted run set.
            if batch.source_epoch < self.peers.epoch(batch.source) {
                continue;
            }
            return Some(batch);
        }
        None
    }

    fn try_recv_start(&mut self) -> Option<Box<RunSpec>> {
        self.pump();
        let spec = self.pending_start.pop_front()?;
        Some(Box::new(self.begin_run(spec)))
    }

    fn send_jobs(&mut self, destination: WorkerId, batch: JobBatch) -> Result<(), TransportError> {
        // Drain reactor events first so a peer death the reactor already
        // saw fails the send now (and triggers a fresh dial) instead of
        // dropping the batch into a dead write queue.
        self.pump();
        let frame = encode(&WireMessage::Jobs(batch))?;
        let token = self.peers.token(destination, &self.handle)?;
        self.handle.send(token, frame);
        Ok(())
    }

    fn send_status(&mut self, report: StatusReport) -> Result<(), TransportError> {
        self.send_to_coordinator(&WireMessage::Status(report))
    }

    fn send_final(&mut self, report: FinalReport) -> Result<(), TransportError> {
        self.send_to_coordinator(&WireMessage::Final(Box::new(report)))?;
        // A worker often exits right after its final report; flush so the
        // report is on the wire before the process (and its reactor) dies.
        let token = self.coordinator_token()?;
        if self.handle.flush(token, Duration::from_secs(5)) {
            Ok(())
        } else {
            Err(TransportError::Disconnected)
        }
    }

    fn update_peers(&mut self, peers: &[PeerInfo]) {
        self.peers.update(peers, Some(&self.handle));
        self.num_workers = self.num_workers.max(self.peers.len());
    }

    fn start_heartbeat(&mut self, interval: Duration) {
        if let Some((timer, _)) = self.heartbeat.take() {
            self.handle.cancel_timer(timer);
        }
        if interval.is_zero() {
            return;
        }
        self.arm_heartbeat(interval);
    }
}

/// Sends a graceful [`WireMessage::Leave`] for an endpoint, so the
/// coordinator reclaims this worker's jobs immediately instead of waiting
/// for the failure detector.
pub fn send_leave(endpoint: &TcpWorkerEndpoint) -> Result<(), TransportError> {
    let token = endpoint.coordinator_token()?;
    let frame = encode(&WireMessage::Leave {
        worker: endpoint.id,
        epoch: endpoint.worker_epoch,
    })?;
    endpoint.handle.send(token, frame);
    // Leave usually precedes process exit; flush so the frame beats the
    // reactor teardown out the door.
    endpoint.handle.flush(token, Duration::from_secs(2));
    Ok(())
}

/// A worker-initiated connection whose [`WireMessage::Join`] the
/// coordinator has seen but not yet decided on: parked with a deadline so
/// an abandoned handshake releases its socket.
struct PendingJoin {
    conn: Token,
    deadline: Instant,
    /// Frames the dialer sent after the join and before admission; replayed
    /// through normal routing once the connection is promoted.
    queued: Vec<WireMessage>,
}

/// Coordinator endpoint over TCP.
pub struct TcpCoordinatorEndpoint {
    handle: ReactorHandle,
    events_rx: Receiver<ReactorEvent>,
    /// Control/start channel of each worker, by worker index.
    writers: Vec<Option<Token>>,
    /// Established worker connections, for writer cleanup on close.
    conn_workers: HashMap<Token, WorkerId>,
    /// Accepted connections that have not sent their join frame yet.
    nursery: HashMap<Token, Instant>,
    /// Join handshakes awaiting the admission decision, by join token.
    pending_joins: HashMap<u64, PendingJoin>,
    pending_status: VecDeque<StatusReport>,
    pending_finals: VecDeque<FinalReport>,
    pending_events: VecDeque<MemberEvent>,
    pending_requests: VecDeque<JoinRequest>,
    listen_addr: Option<SocketAddr>,
    _guard: ReactorGuard,
}

impl TcpCoordinatorEndpoint {
    /// An endpoint with no connections yet: combine with
    /// [`TcpCoordinatorEndpoint::listen_on`] for a purely elastic cluster.
    pub fn detached() -> TcpCoordinatorEndpoint {
        let (handle, events_rx) = Reactor::spawn("coord").expect("coordinator reactor spawn");
        guard_fields(handle, events_rx)
    }

    /// Dials every worker in `addrs` (retrying each until `timeout`), sends
    /// the hello that assigns identities and the peer list, and registers
    /// the sessions with the reactor.
    pub fn connect(
        addrs: &[String],
        timeout: Duration,
    ) -> Result<TcpCoordinatorEndpoint, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut endpoint = TcpCoordinatorEndpoint::detached();
        for (i, addr) in addrs.iter().enumerate() {
            let stream = dial_until(addr, deadline)?;
            stream.set_nodelay(true).ok();
            let worker = WorkerId(i as u32);
            let token = endpoint.handle.add_conn(stream);
            endpoint.handle.send(
                token,
                encode(&WireMessage::CoordinatorHello {
                    version: WIRE_VERSION,
                    worker,
                    num_workers: addrs.len() as u32,
                    peers: addrs.to_vec(),
                })?,
            );
            endpoint.conn_workers.insert(token, worker);
            endpoint.writers.push(Some(token));
        }
        Ok(endpoint)
    }

    /// Creates an endpoint with no initial workers that accepts elastic
    /// joins on `addr`.
    pub fn listen(addr: &str) -> io::Result<TcpCoordinatorEndpoint> {
        let mut endpoint = TcpCoordinatorEndpoint::detached();
        endpoint.listen_on(addr)?;
        Ok(endpoint)
    }

    /// Starts accepting elastic joins on `addr` (usable together with a
    /// dialed static worker set). Returns the bound address.
    pub fn listen_on(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        self.handle.add_listener(listener);
        self.listen_addr = Some(local_addr);
        Ok(local_addr)
    }

    /// The join listener's address, when listening (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    /// Releases join handshakes that outlived [`JOIN_HANDSHAKE_TIMEOUT`]:
    /// connections that never sent their join frame, and surfaced joins the
    /// coordinator never decided on. Their sockets are closed so an
    /// abandoned dialer cannot pin coordinator resources.
    fn sweep_stale_joins(&mut self) {
        let now = Instant::now();
        let handle = &self.handle;
        self.nursery.retain(|&conn, &mut deadline| {
            if now >= deadline {
                handle.close(conn);
                false
            } else {
                true
            }
        });
        self.pending_joins.retain(|_, pending| {
            if now >= pending.deadline {
                handle.close(pending.conn);
                false
            } else {
                true
            }
        });
    }

    fn pump_one(&mut self, timeout: Duration) -> bool {
        self.sweep_stale_joins();
        let received = if timeout.is_zero() {
            self.events_rx.try_recv().ok()
        } else {
            self.events_rx.recv_timeout(timeout).ok()
        };
        let Some(event) = received else {
            return false;
        };
        match event {
            ReactorEvent::Accepted { conn, .. } => {
                self.nursery
                    .insert(conn, Instant::now() + JOIN_HANDSHAKE_TIMEOUT);
            }
            ReactorEvent::Frame { conn, payload } => {
                let Ok(msg) = bincode::deserialize::<WireMessage>(&payload) else {
                    self.drop_conn(conn);
                    return true;
                };
                self.route(conn, msg);
            }
            ReactorEvent::Closed { conn } => {
                self.nursery.remove(&conn);
                self.pending_joins.retain(|_, p| p.conn != conn);
                if let Some(worker) = self.conn_workers.remove(&conn) {
                    if let Some(slot) = self.writers.get_mut(worker.index()) {
                        if *slot == Some(conn) {
                            *slot = None;
                        }
                    }
                }
            }
            ReactorEvent::Tick { .. } => {}
        }
        true
    }

    fn route(&mut self, conn: Token, msg: WireMessage) {
        if self.nursery.remove(&conn).is_some() {
            // First frame of an accepted connection: it must be a join.
            let WireMessage::Join {
                version,
                listen_addr,
                previous,
            } = msg
            else {
                self.drop_conn(conn);
                return;
            };
            if version != WIRE_VERSION {
                // A worker speaking a different protocol version: drop the
                // half-open connection instead of admitting it.
                self.drop_conn(conn);
                return;
            }
            let token = conn.0;
            self.pending_joins.insert(
                token,
                PendingJoin {
                    conn,
                    deadline: Instant::now() + JOIN_HANDSHAKE_TIMEOUT,
                    queued: Vec::new(),
                },
            );
            self.pending_requests.push_back(JoinRequest {
                token,
                listen_addr,
                previous,
            });
            return;
        }
        if let Some(pending) = self.pending_joins.values_mut().find(|p| p.conn == conn) {
            // The dialer is already talking before the admission decision;
            // hold its frames for replay after the promotion.
            pending.queued.push(msg);
            return;
        }
        match msg {
            WireMessage::Status(report) => self.pending_status.push_back(report),
            WireMessage::Final(report) => self.pending_finals.push_back(*report),
            WireMessage::Heartbeat { worker, epoch } => self
                .pending_events
                .push_back(MemberEvent::Heartbeat { worker, epoch }),
            WireMessage::Leave { worker, epoch } => self
                .pending_events
                .push_back(MemberEvent::Leave { worker, epoch }),
            // Worker-bound frames arriving at the coordinator: a confused
            // peer. Ignore.
            _ => {}
        }
    }

    fn drop_conn(&mut self, conn: Token) {
        self.handle.close(conn);
        self.nursery.remove(&conn);
        self.pending_joins.retain(|_, p| p.conn != conn);
        if let Some(worker) = self.conn_workers.remove(&conn) {
            if let Some(slot) = self.writers.get_mut(worker.index()) {
                if *slot == Some(conn) {
                    *slot = None;
                }
            }
        }
    }

    fn writer(&mut self, destination: WorkerId) -> Result<Token, TransportError> {
        // Process queued closures first, so sends to a worker whose death
        // the reactor already observed fail promptly.
        while self.pump_one(Duration::ZERO) {}
        self.writers
            .get(destination.index())
            .copied()
            .flatten()
            .ok_or(TransportError::Disconnected)
    }
}

/// Builds the empty endpoint state around a freshly spawned reactor.
fn guard_fields(
    handle: ReactorHandle,
    events_rx: Receiver<ReactorEvent>,
) -> TcpCoordinatorEndpoint {
    TcpCoordinatorEndpoint {
        _guard: ReactorGuard(handle.clone()),
        handle,
        events_rx,
        writers: Vec::new(),
        conn_workers: HashMap::new(),
        nursery: HashMap::new(),
        pending_joins: HashMap::new(),
        pending_status: VecDeque::new(),
        pending_finals: VecDeque::new(),
        pending_events: VecDeque::new(),
        pending_requests: VecDeque::new(),
        listen_addr: None,
    }
}

fn dial_until(addr: &str, deadline: Instant) -> Result<TcpStream, TransportError> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Io(format!("dial {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

impl CoordinatorEndpoint for TcpCoordinatorEndpoint {
    fn num_workers(&self) -> usize {
        self.writers.len()
    }

    fn send_control(
        &mut self,
        destination: WorkerId,
        run: RunId,
        msg: Control,
    ) -> Result<(), TransportError> {
        let token = self.writer(destination)?;
        let frame = encode(&WireMessage::Control { run, msg })?;
        self.handle.send(token, frame);
        Ok(())
    }

    fn recv_status(&mut self, timeout: Duration) -> Option<StatusReport> {
        if let Some(report) = self.pending_status.pop_front() {
            return Some(report);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let step = if now >= deadline {
                Duration::ZERO
            } else {
                deadline - now
            };
            if !self.pump_one(step) {
                return None;
            }
            if let Some(report) = self.pending_status.pop_front() {
                return Some(report);
            }
            if step.is_zero() {
                return None;
            }
        }
    }

    fn recv_final(&mut self, timeout: Duration) -> Option<FinalReport> {
        if let Some(report) = self.pending_finals.pop_front() {
            return Some(report);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let step = if now >= deadline {
                Duration::ZERO
            } else {
                deadline - now
            };
            if !self.pump_one(step) {
                return None;
            }
            if let Some(report) = self.pending_finals.pop_front() {
                return Some(report);
            }
            if step.is_zero() {
                return None;
            }
        }
    }

    fn try_recv_event(&mut self) -> Option<MemberEvent> {
        loop {
            if let Some(event) = self.pending_events.pop_front() {
                return Some(event);
            }
            if !self.pump_one(Duration::ZERO) {
                return None;
            }
        }
    }

    fn try_recv_join(&mut self) -> Option<JoinRequest> {
        loop {
            if let Some(request) = self.pending_requests.pop_front() {
                return Some(request);
            }
            if !self.pump_one(Duration::ZERO) {
                return None;
            }
        }
    }

    fn admit(
        &mut self,
        token: u64,
        worker: WorkerId,
        epoch: u64,
        peers: Vec<PeerInfo>,
        strategy: StrategyKind,
    ) -> Result<(), TransportError> {
        let Some(pending) = self.pending_joins.remove(&token) else {
            // The handshake was swept or its connection died.
            return Err(TransportError::Disconnected);
        };
        let frame = encode(&WireMessage::JoinAck {
            worker,
            epoch,
            peers,
            strategy,
        })?;
        self.handle.send(pending.conn, frame);
        let idx = worker.index();
        if idx >= self.writers.len() {
            self.writers.resize_with(idx + 1, || None);
        }
        self.writers[idx] = Some(pending.conn);
        self.conn_workers.insert(pending.conn, worker);
        for msg in pending.queued {
            self.route(pending.conn, msg);
        }
        Ok(())
    }

    fn send_start(&mut self, destination: WorkerId, spec: RunSpec) -> Result<(), TransportError> {
        let token = self.writer(destination)?;
        let frame = encode(&WireMessage::Start(Box::new(spec)))?;
        self.handle.send(token, frame);
        Ok(())
    }
}

/// The TCP transport.
///
/// Two modes:
///
/// * [`TcpTransport::loopback`] hosts all N worker endpoints in the current
///   process, connected to the coordinator over real localhost sockets —
///   every byte crosses the kernel's TCP stack. Used by tests and the
///   transport benchmark, and by `Cluster::run_with_transport`.
/// * [`TcpTransport::connect`] dials already-running `c9-worker` daemons;
///   the returned endpoint set has no local workers.
pub struct TcpTransport {
    mode: TcpMode,
}

enum TcpMode {
    Loopback,
    Connect {
        addrs: Vec<String>,
        timeout: Duration,
    },
}

impl TcpTransport {
    /// All workers hosted in-process, joined over localhost TCP.
    pub fn loopback() -> TcpTransport {
        TcpTransport {
            mode: TcpMode::Loopback,
        }
    }

    /// Connect to remote worker daemons at `addrs`.
    pub fn connect(addrs: Vec<String>, timeout: Duration) -> TcpTransport {
        TcpTransport {
            mode: TcpMode::Connect { addrs, timeout },
        }
    }
}

impl Transport for TcpTransport {
    type WorkerEnd = TcpWorkerEndpoint;
    type CoordinatorEnd = TcpCoordinatorEndpoint;

    fn establish(
        self,
        num_workers: usize,
    ) -> Result<Endpoints<TcpCoordinatorEndpoint, TcpWorkerEndpoint>, TransportError> {
        match self.mode {
            TcpMode::Loopback => {
                let n = num_workers.max(1);
                let mut hosts = Vec::with_capacity(n);
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let host = TcpWorkerHost::bind("127.0.0.1:0").map_err(TransportError::from)?;
                    addrs.push(host.local_addr().to_string());
                    hosts.push(host);
                }
                let coordinator = TcpCoordinatorEndpoint::connect(&addrs, Duration::from_secs(10))?;
                let mut workers = Vec::with_capacity(n);
                for host in hosts {
                    let endpoint = host
                        .accept_coordinator(Duration::from_secs(10))
                        .ok_or(TransportError::Disconnected)?;
                    workers.push(endpoint);
                }
                Ok(Endpoints {
                    coordinator,
                    workers,
                })
            }
            TcpMode::Connect { addrs, timeout } => {
                if addrs.len() != num_workers {
                    return Err(TransportError::Io(format!(
                        "worker list has {} entries but the cluster needs {num_workers}",
                        addrs.len()
                    )));
                }
                let coordinator = TcpCoordinatorEndpoint::connect(&addrs, timeout)?;
                Ok(Endpoints {
                    coordinator,
                    workers: Vec::new(),
                })
            }
        }
    }
}
