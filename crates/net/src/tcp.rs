//! The TCP transport: a cluster of OS processes on a network.
//!
//! This is the paper's deployment (§3.3): every worker is a process hosting
//! one symbolic execution engine, listening on a socket; the coordinator
//! process runs the load balancer and drives the run. Job batches travel
//! directly between workers over lazily-dialed peer connections — the
//! coordinator only ever sees queue lengths and coverage bit vectors,
//! exactly as in the paper.
//!
//! Membership is elastic in both directions:
//!
//! * the coordinator can dial a fixed worker list
//!   ([`TcpCoordinatorEndpoint::connect`], the static deployment), and/or
//!   listen for workers that attach to a running cluster with a
//!   [`WireMessage::Join`] handshake ([`TcpCoordinatorEndpoint::listen`]);
//! * each worker's transport sends [`WireMessage::Heartbeat`] frames from a
//!   dedicated thread, so the coordinator's failure detector keeps working
//!   while the worker loop is deep inside a solver call;
//! * every worker carries a per-worker *epoch* assigned at join time; a
//!   re-joining worker gets a fresh epoch and peers drop both the stale
//!   cached connection and any frames stamped with the old epoch.
//!
//! Framing is length-prefixed bincode (see [`crate::frame`]). Accept loops
//! are reconnect-aware: a worker keeps accepting connections for its whole
//! lifetime, a new coordinator connection replaces the previous one, and a
//! failed peer connection is re-dialed on the next send.

use crate::frame::{read_frame, write_frame};
use crate::message::{
    Control, FinalReport, JobBatch, PeerInfo, RunSpec, StatusReport, WireMessage, WIRE_VERSION,
};
use crate::transport::{
    CoordinatorEndpoint, Endpoints, JoinRequest, MemberEvent, Transport, TransportError,
    WorkerEndpoint,
};
use crate::{RunId, WorkerId};
use c9_vm::StrategyKind;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Events surfaced by a worker's accept loop.
enum HostEvent {
    /// A coordinator introduced itself on a fresh connection.
    Hello {
        worker: WorkerId,
        num_workers: u32,
        peers: Vec<String>,
        writer: TcpStream,
    },
    /// The coordinator started (or admitted) a run.
    Start(Box<RunSpec>),
    /// A control message, stamped with the run it addresses.
    Control(RunId, Control),
    /// A job batch from a peer worker.
    Jobs(JobBatch),
}

/// Stops an accept loop (releasing the listener's port and thread) when
/// the owning host or endpoint is dropped.
struct ListenerGuard {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl Drop for ListenerGuard {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The peer table of one worker: listen address, fencing epoch, and the
/// lazily-dialed connection of every peer. A membership update that changes
/// a peer's address or epoch drops the cached connection — the old socket
/// either is dead or belongs to a fenced-off incarnation.
struct PeerTable {
    addrs: Vec<String>,
    epochs: Vec<u64>,
    conns: Vec<Option<TcpStream>>,
}

impl PeerTable {
    /// Builds a table from a bare address list (static deployments, where
    /// epochs are unknown and every batch is accepted).
    fn from_addrs(addrs: Vec<String>) -> PeerTable {
        let n = addrs.len();
        PeerTable {
            addrs,
            epochs: vec![0; n],
            conns: (0..n).map(|_| None).collect(),
        }
    }

    /// Builds a table from a full membership announcement.
    fn from_infos(peers: &[PeerInfo]) -> PeerTable {
        let mut table = PeerTable::from_addrs(Vec::new());
        table.update(peers);
        table
    }

    fn len(&self) -> usize {
        self.addrs.len()
    }

    /// The last announced epoch of a peer (0 = unknown, accept anything).
    fn epoch(&self, worker: WorkerId) -> u64 {
        self.epochs.get(worker.index()).copied().unwrap_or(0)
    }

    /// Applies a membership update, dropping stale connections.
    fn update(&mut self, peers: &[PeerInfo]) {
        for peer in peers {
            let idx = peer.worker.index();
            if idx >= self.addrs.len() {
                self.addrs.resize(idx + 1, String::new());
                self.epochs.resize(idx + 1, 0);
                self.conns.resize_with(idx + 1, || None);
            }
            if self.addrs[idx] != peer.addr || self.epochs[idx] != peer.epoch {
                // The satellite fix: a re-joined worker's old socket must
                // not linger in the map, or job batches would vanish into
                // the dead connection.
                self.conns[idx] = None;
            }
            self.addrs[idx] = peer.addr.clone();
            self.epochs[idx] = peer.epoch;
        }
    }

    fn drop_conn(&mut self, worker: WorkerId) {
        if let Some(slot) = self.conns.get_mut(worker.index()) {
            *slot = None;
        }
    }

    /// The connection to a peer, dialing it on first use.
    fn stream(&mut self, destination: WorkerId) -> Result<&mut TcpStream, TransportError> {
        let idx = destination.index();
        if idx >= self.addrs.len() || self.addrs[idx].is_empty() {
            return Err(TransportError::Io(format!(
                "unknown peer {destination} (cluster has {} workers)",
                self.addrs.len()
            )));
        }
        if self.conns[idx].is_none() {
            let stream = TcpStream::connect(&self.addrs[idx])?;
            stream.set_nodelay(true).ok();
            self.conns[idx] = Some(stream);
        }
        Ok(self.conns[idx].as_mut().expect("peer conn present"))
    }
}

/// A worker-side listener: accepts coordinator and peer connections and
/// demultiplexes their frames into one event queue.
pub struct TcpWorkerHost {
    local_addr: SocketAddr,
    events_tx: Sender<HostEvent>,
    events_rx: Receiver<HostEvent>,
    guard: ListenerGuard,
}

impl TcpWorkerHost {
    /// Binds the worker listener and starts the accept loop.
    pub fn bind(addr: &str) -> io::Result<TcpWorkerHost> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (events_tx, events_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = shutdown.clone();
        let accept_tx = events_tx.clone();
        std::thread::Builder::new()
            .name(format!("c9-accept-{local_addr}"))
            .spawn(move || accept_loop(&listener, &accept_tx, &accept_shutdown))?;
        Ok(TcpWorkerHost {
            local_addr,
            events_tx,
            events_rx,
            guard: ListenerGuard {
                addr: local_addr,
                shutdown,
            },
        })
    }

    /// The address the listener is bound to (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Waits for a coordinator to connect and introduce itself, returning
    /// the worker endpoint for the session. Control or job frames that race
    /// ahead of the hello are preserved for the endpoint.
    pub fn accept_coordinator(self, timeout: Duration) -> Option<TcpWorkerEndpoint> {
        let deadline = Instant::now() + timeout;
        let mut pending_control = VecDeque::new();
        let mut pending_jobs = VecDeque::new();
        let mut pending_start = VecDeque::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(HostEvent::Hello {
                    worker,
                    num_workers,
                    peers,
                    writer,
                }) => {
                    return Some(TcpWorkerEndpoint {
                        id: worker,
                        num_workers: num_workers as usize,
                        peers: PeerTable::from_addrs(peers),
                        coordinator: Arc::new(Mutex::new(writer)),
                        events_rx: self.events_rx,
                        pending_control,
                        pending_jobs,
                        pending_start,
                        worker_epoch: 0,
                        assigned_strategy: StrategyKind::default(),
                        hb_stop: None,
                        _guard: self.guard,
                    });
                }
                Ok(HostEvent::Control(run, c)) => pending_control.push_back((run, c)),
                Ok(HostEvent::Jobs(j)) => pending_jobs.push_back(j),
                Ok(HostEvent::Start(s)) => pending_start.push_back(*s),
                Err(_) => return None,
            }
        }
    }

    /// Dials a listening coordinator and joins its cluster (elastic
    /// membership): sends the [`WireMessage::Join`] handshake, waits for the
    /// acknowledgement that assigns this worker's identity and epoch, and
    /// returns the endpoint for the session. `previous` names the identity
    /// of this daemon's previous incarnation when re-joining after a lost
    /// connection, so the coordinator can fence it off.
    pub fn join_coordinator(
        self,
        coordinator_addr: &str,
        previous: Option<(WorkerId, u64)>,
        timeout: Duration,
    ) -> Result<TcpWorkerEndpoint, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut stream = dial_until(coordinator_addr, deadline)?;
        stream.set_nodelay(true).ok();
        write_frame(
            &mut stream,
            &WireMessage::Join {
                version: WIRE_VERSION,
                listen_addr: self.local_addr.to_string(),
                previous,
            },
        )
        .map_err(TransportError::from)?;
        stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .ok();
        let ack: WireMessage = read_frame(&mut stream).map_err(TransportError::from)?;
        stream.set_read_timeout(None).ok();
        let WireMessage::JoinAck {
            worker,
            epoch,
            peers,
            strategy,
        } = ack
        else {
            return Err(TransportError::Io(
                "coordinator answered the join with an unexpected frame".into(),
            ));
        };
        // Start/control frames for the run arrive on this same connection.
        let reader = stream.try_clone().map_err(TransportError::from)?;
        let events_tx = self.events_tx.clone();
        std::thread::Builder::new()
            .name("c9-conn-reader".into())
            .spawn(move || worker_conn_reader(reader, &events_tx))
            .map_err(TransportError::from)?;
        Ok(TcpWorkerEndpoint {
            id: worker,
            num_workers: peers.len(),
            peers: PeerTable::from_infos(&peers),
            coordinator: Arc::new(Mutex::new(stream)),
            events_rx: self.events_rx,
            pending_control: VecDeque::new(),
            pending_jobs: VecDeque::new(),
            pending_start: VecDeque::new(),
            worker_epoch: epoch,
            assigned_strategy: strategy,
            hb_stop: None,
            _guard: self.guard,
        })
    }
}

fn accept_loop(listener: &TcpListener, events_tx: &Sender<HostEvent>, shutdown: &AtomicBool) {
    // Runs until the owning endpoint is dropped: every new connection
    // (first coordinator, reconnecting coordinator, each peer) gets a
    // reader thread feeding the shared event queue.
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let events_tx = events_tx.clone();
        let _ = std::thread::Builder::new()
            .name("c9-conn-reader".into())
            .spawn(move || worker_conn_reader(stream, &events_tx));
    }
}

fn worker_conn_reader(mut stream: TcpStream, events_tx: &Sender<HostEvent>) {
    loop {
        let msg: WireMessage = match read_frame(&mut stream) {
            Ok(msg) => msg,
            Err(_) => return, // peer closed or sent garbage; drop the connection
        };
        let event = match msg {
            WireMessage::CoordinatorHello {
                version,
                worker,
                num_workers,
                peers,
            } => {
                if version != WIRE_VERSION {
                    // A coordinator speaking a different protocol version:
                    // drop the connection rather than mis-decode its frames.
                    return;
                }
                let Ok(writer) = stream.try_clone() else {
                    return;
                };
                HostEvent::Hello {
                    worker,
                    num_workers,
                    peers,
                    writer,
                }
            }
            WireMessage::Start(spec) => HostEvent::Start(spec),
            WireMessage::Control { run, msg } => HostEvent::Control(run, msg),
            WireMessage::Jobs(j) => HostEvent::Jobs(j),
            // Everything else is coordinator-bound; a worker receiving one
            // indicates a confused peer. Ignore.
            WireMessage::Status(_)
            | WireMessage::Final(_)
            | WireMessage::Join { .. }
            | WireMessage::JoinAck { .. }
            | WireMessage::Heartbeat { .. }
            | WireMessage::Leave { .. } => continue,
        };
        if events_tx.send(event).is_err() {
            return;
        }
    }
}

/// Worker endpoint over TCP.
pub struct TcpWorkerEndpoint {
    id: WorkerId,
    num_workers: usize,
    peers: PeerTable,
    coordinator: Arc<Mutex<TcpStream>>,
    events_rx: Receiver<HostEvent>,
    pending_control: VecDeque<(RunId, Control)>,
    pending_jobs: VecDeque<JobBatch>,
    pending_start: VecDeque<RunSpec>,
    worker_epoch: u64,
    assigned_strategy: StrategyKind,
    hb_stop: Option<Arc<AtomicBool>>,
    _guard: ListenerGuard,
}

impl Drop for TcpWorkerEndpoint {
    fn drop(&mut self) {
        if let Some(stop) = self.hb_stop.take() {
            stop.store(true, Ordering::Release);
        }
    }
}

impl TcpWorkerEndpoint {
    /// Number of workers in the cluster, as announced by the coordinator.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// This worker's fencing epoch (assigned at join, or by the run spec).
    pub fn worker_epoch(&self) -> u64 {
        self.worker_epoch
    }

    /// The exploration strategy the coordinator's portfolio assigned at
    /// join time (informational until the run spec confirms it).
    pub fn assigned_strategy(&self) -> StrategyKind {
        self.assigned_strategy
    }

    /// Waits for the coordinator to begin a run.
    pub fn wait_start(&mut self, timeout: Duration) -> Option<RunSpec> {
        if let Some(spec) = self.pending_start.pop_front() {
            return Some(self.begin_run(spec));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(event) => {
                    self.dispatch(event);
                    if let Some(spec) = self.pending_start.pop_front() {
                        return Some(self.begin_run(spec));
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Adopts a run spec's worker-epoch assignment. Fencing between runs
    /// is no longer the endpoint's job: every control frame and job batch
    /// carries its [`RunId`], and the worker's run service drops frames
    /// addressed to runs it does not host.
    fn begin_run(&mut self, spec: RunSpec) -> RunSpec {
        self.worker_epoch = spec.worker_epoch;
        spec
    }

    fn dispatch(&mut self, event: HostEvent) {
        match event {
            HostEvent::Hello {
                worker,
                num_workers,
                peers,
                writer,
            } => {
                // A reconnecting coordinator replaces the control channel.
                self.id = worker;
                self.num_workers = num_workers as usize;
                self.peers = PeerTable::from_addrs(peers);
                *self.coordinator.lock().expect("coordinator lock") = writer;
            }
            HostEvent::Start(spec) => self.pending_start.push_back(*spec),
            HostEvent::Control(run, c) => self.pending_control.push_back((run, c)),
            HostEvent::Jobs(j) => self.pending_jobs.push_back(j),
        }
    }

    fn pump(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            self.dispatch(event);
        }
    }

    fn write_to_coordinator(&self, msg: &WireMessage) -> Result<(), TransportError> {
        let mut stream = self.coordinator.lock().expect("coordinator lock");
        write_frame(&mut *stream, msg).map_err(TransportError::from)
    }

    /// Probes the coordinator connection by sending a heartbeat frame.
    /// Returns false once the connection is dead (the first write after a
    /// peer death may still land in the kernel buffer, so an idle daemon
    /// should probe periodically rather than once).
    pub fn probe_coordinator(&self) -> bool {
        self.write_to_coordinator(&WireMessage::Heartbeat {
            worker: self.id,
            epoch: self.worker_epoch,
        })
        .is_ok()
    }
}

impl WorkerEndpoint for TcpWorkerEndpoint {
    fn id(&self) -> WorkerId {
        self.id
    }

    fn try_recv_control(&mut self) -> Option<(RunId, Control)> {
        self.pump();
        self.pending_control.pop_front()
    }

    fn try_recv_jobs(&mut self) -> Option<JobBatch> {
        self.pump();
        while let Some(batch) = self.pending_jobs.pop_front() {
            // Drop batches from a fenced-off previous incarnation of a
            // re-joined peer. Batches for runs this worker does not host
            // (stale, cancelled, not yet admitted) are the run service's
            // job to drop — the endpoint does not know the hosted run set.
            if batch.source_epoch < self.peers.epoch(batch.source) {
                continue;
            }
            return Some(batch);
        }
        None
    }

    fn try_recv_start(&mut self) -> Option<Box<RunSpec>> {
        self.pump();
        let spec = self.pending_start.pop_front()?;
        Some(Box::new(self.begin_run(spec)))
    }

    fn send_jobs(&mut self, destination: WorkerId, batch: JobBatch) -> Result<(), TransportError> {
        let msg = WireMessage::Jobs(batch);
        // One reconnect attempt: a worker daemon that restarted keeps its
        // listen address, so re-dialing usually heals the path.
        let first = {
            let stream = self.peers.stream(destination)?;
            write_frame(stream, &msg)
        };
        if first.is_ok() {
            return Ok(());
        }
        self.peers.drop_conn(destination);
        let stream = self.peers.stream(destination)?;
        write_frame(stream, &msg).map_err(TransportError::from)
    }

    fn send_status(&mut self, report: StatusReport) -> Result<(), TransportError> {
        self.write_to_coordinator(&WireMessage::Status(report))
    }

    fn send_final(&mut self, report: FinalReport) -> Result<(), TransportError> {
        self.write_to_coordinator(&WireMessage::Final(Box::new(report)))
    }

    fn update_peers(&mut self, peers: &[PeerInfo]) {
        self.peers.update(peers);
        self.num_workers = self.num_workers.max(self.peers.len());
    }

    fn start_heartbeat(&mut self, interval: Duration) {
        if let Some(stop) = self.hb_stop.take() {
            stop.store(true, Ordering::Release);
        }
        if interval.is_zero() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let coordinator = self.coordinator.clone();
        let msg = WireMessage::Heartbeat {
            worker: self.id,
            epoch: self.worker_epoch,
        };
        let thread_stop = stop.clone();
        let _ = std::thread::Builder::new()
            .name(format!("c9-heartbeat-{}", self.id))
            .spawn(move || loop {
                std::thread::sleep(interval);
                if thread_stop.load(Ordering::Acquire) {
                    return;
                }
                // Send failures are ignored: either the coordinator is
                // reconnecting (the stream will be replaced under the same
                // mutex) or the endpoint is about to be dropped.
                let mut stream = coordinator.lock().expect("coordinator lock");
                let _ = write_frame(&mut *stream, &msg);
            });
        self.hb_stop = Some(stop);
    }
}

/// Sends a graceful [`WireMessage::Leave`] for an endpoint, so the
/// coordinator reclaims this worker's jobs immediately instead of waiting
/// for the failure detector.
pub fn send_leave(endpoint: &TcpWorkerEndpoint) -> Result<(), TransportError> {
    endpoint.write_to_coordinator(&WireMessage::Leave {
        worker: endpoint.id,
        epoch: endpoint.worker_epoch,
    })
}

/// Coordinator endpoint over TCP.
pub struct TcpCoordinatorEndpoint {
    writers: Vec<Option<TcpStream>>,
    inbox_tx: Sender<(WorkerId, WireMessage)>,
    inbox_rx: Receiver<(WorkerId, WireMessage)>,
    pending_status: VecDeque<StatusReport>,
    pending_finals: VecDeque<FinalReport>,
    pending_events: VecDeque<MemberEvent>,
    join_rx: Option<Receiver<JoinRequest>>,
    pending_joins: Arc<Mutex<HashMap<u64, TcpStream>>>,
    listen_addr: Option<SocketAddr>,
    _listen_guard: Option<ListenerGuard>,
}

impl TcpCoordinatorEndpoint {
    /// An endpoint with no connections yet: combine with
    /// [`TcpCoordinatorEndpoint::listen_on`] for a purely elastic cluster.
    pub fn detached() -> TcpCoordinatorEndpoint {
        let (inbox_tx, inbox_rx) = unbounded();
        TcpCoordinatorEndpoint {
            writers: Vec::new(),
            inbox_tx,
            inbox_rx,
            pending_status: VecDeque::new(),
            pending_finals: VecDeque::new(),
            pending_events: VecDeque::new(),
            join_rx: None,
            pending_joins: Arc::new(Mutex::new(HashMap::new())),
            listen_addr: None,
            _listen_guard: None,
        }
    }

    /// Dials every worker in `addrs` (retrying each until `timeout`), sends
    /// the hello that assigns identities and the peer list, and starts the
    /// reader threads.
    pub fn connect(
        addrs: &[String],
        timeout: Duration,
    ) -> Result<TcpCoordinatorEndpoint, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut endpoint = TcpCoordinatorEndpoint::detached();
        for (i, addr) in addrs.iter().enumerate() {
            let stream = dial_until(addr, deadline)?;
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().map_err(TransportError::from)?;
            write_frame(
                &mut writer,
                &WireMessage::CoordinatorHello {
                    version: WIRE_VERSION,
                    worker: WorkerId(i as u32),
                    num_workers: addrs.len() as u32,
                    peers: addrs.to_vec(),
                },
            )
            .map_err(TransportError::from)?;
            let inbox_tx = endpoint.inbox_tx.clone();
            let worker = WorkerId(i as u32);
            std::thread::Builder::new()
                .name(format!("c9-coord-reader-{worker}"))
                .spawn(move || coordinator_conn_reader(stream, worker, &inbox_tx))
                .map_err(TransportError::from)?;
            endpoint.writers.push(Some(writer));
        }
        Ok(endpoint)
    }

    /// Creates an endpoint with no initial workers that accepts elastic
    /// joins on `addr`.
    pub fn listen(addr: &str) -> io::Result<TcpCoordinatorEndpoint> {
        let mut endpoint = TcpCoordinatorEndpoint::detached();
        endpoint.listen_on(addr)?;
        Ok(endpoint)
    }

    /// Starts accepting elastic joins on `addr` (usable together with a
    /// dialed static worker set). Returns the bound address.
    pub fn listen_on(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (join_tx, join_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = shutdown.clone();
        let pending = self.pending_joins.clone();
        std::thread::Builder::new()
            .name(format!("c9-coord-accept-{local_addr}"))
            .spawn(move || {
                coordinator_accept_loop(&listener, &join_tx, &pending, &accept_shutdown);
            })?;
        self.join_rx = Some(join_rx);
        self.listen_addr = Some(local_addr);
        self._listen_guard = Some(ListenerGuard {
            addr: local_addr,
            shutdown,
        });
        Ok(local_addr)
    }

    /// The join listener's address, when listening (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    fn pump_one(&mut self, timeout: Duration) -> bool {
        let received = if timeout.is_zero() {
            self.inbox_rx.try_recv().ok()
        } else {
            self.inbox_rx.recv_timeout(timeout).ok()
        };
        match received {
            Some((_, WireMessage::Status(report))) => {
                self.pending_status.push_back(report);
                true
            }
            Some((_, WireMessage::Final(report))) => {
                self.pending_finals.push_back(*report);
                true
            }
            Some((_, WireMessage::Heartbeat { worker, epoch })) => {
                self.pending_events
                    .push_back(MemberEvent::Heartbeat { worker, epoch });
                true
            }
            Some((_, WireMessage::Leave { worker, epoch })) => {
                self.pending_events
                    .push_back(MemberEvent::Leave { worker, epoch });
                true
            }
            Some(_) => true, // ignore stray frames
            None => false,
        }
    }
}

fn dial_until(addr: &str, deadline: Instant) -> Result<TcpStream, TransportError> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Io(format!("dial {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Accepts worker-initiated connections on the coordinator's join listener.
/// Each connection's first frame must be a [`WireMessage::Join`]; the
/// half-open connection is parked under a token until the coordinator loop
/// decides on admission.
fn coordinator_accept_loop(
    listener: &TcpListener,
    join_tx: &Sender<JoinRequest>,
    pending: &Arc<Mutex<HashMap<u64, TcpStream>>>,
    shutdown: &AtomicBool,
) {
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let join_tx = join_tx.clone();
        let pending = pending.clone();
        let _ = std::thread::Builder::new()
            .name("c9-join-reader".into())
            .spawn(move || {
                // Bound the handshake so a silent connection cannot pin the
                // thread forever.
                stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
                let Ok(WireMessage::Join {
                    version,
                    listen_addr,
                    previous,
                }) = read_frame::<_, WireMessage>(&mut stream)
                else {
                    return;
                };
                if version != WIRE_VERSION {
                    // A worker speaking a different protocol version: drop
                    // the half-open connection instead of admitting it.
                    return;
                }
                stream.set_read_timeout(None).ok();
                stream.set_nodelay(true).ok();
                let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
                pending
                    .lock()
                    .expect("pending joins lock")
                    .insert(token, stream);
                let _ = join_tx.send(JoinRequest {
                    token,
                    listen_addr,
                    previous,
                });
            });
    }
}

fn coordinator_conn_reader(
    mut stream: TcpStream,
    worker: WorkerId,
    inbox_tx: &Sender<(WorkerId, WireMessage)>,
) {
    loop {
        match read_frame::<_, WireMessage>(&mut stream) {
            Ok(msg) => {
                if inbox_tx.send((worker, msg)).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

impl CoordinatorEndpoint for TcpCoordinatorEndpoint {
    fn num_workers(&self) -> usize {
        self.writers.len()
    }

    fn send_control(
        &mut self,
        destination: WorkerId,
        run: RunId,
        msg: Control,
    ) -> Result<(), TransportError> {
        let writer = self
            .writers
            .get_mut(destination.index())
            .and_then(Option::as_mut)
            .ok_or(TransportError::Disconnected)?;
        write_frame(writer, &WireMessage::Control { run, msg }).map_err(TransportError::from)
    }

    fn recv_status(&mut self, timeout: Duration) -> Option<StatusReport> {
        if let Some(report) = self.pending_status.pop_front() {
            return Some(report);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let step = if now >= deadline {
                Duration::ZERO
            } else {
                deadline - now
            };
            if !self.pump_one(step) {
                return None;
            }
            if let Some(report) = self.pending_status.pop_front() {
                return Some(report);
            }
            if step.is_zero() {
                return None;
            }
        }
    }

    fn recv_final(&mut self, timeout: Duration) -> Option<FinalReport> {
        if let Some(report) = self.pending_finals.pop_front() {
            return Some(report);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let step = if now >= deadline {
                Duration::ZERO
            } else {
                deadline - now
            };
            if !self.pump_one(step) {
                return None;
            }
            if let Some(report) = self.pending_finals.pop_front() {
                return Some(report);
            }
            if step.is_zero() {
                return None;
            }
        }
    }

    fn try_recv_event(&mut self) -> Option<MemberEvent> {
        loop {
            if let Some(event) = self.pending_events.pop_front() {
                return Some(event);
            }
            if !self.pump_one(Duration::ZERO) {
                return None;
            }
        }
    }

    fn try_recv_join(&mut self) -> Option<JoinRequest> {
        self.join_rx.as_ref()?.try_recv().ok()
    }

    fn admit(
        &mut self,
        token: u64,
        worker: WorkerId,
        epoch: u64,
        peers: Vec<PeerInfo>,
        strategy: StrategyKind,
    ) -> Result<(), TransportError> {
        let Some(stream) = self
            .pending_joins
            .lock()
            .expect("pending joins lock")
            .remove(&token)
        else {
            return Err(TransportError::Disconnected);
        };
        let mut writer = stream.try_clone().map_err(TransportError::from)?;
        write_frame(
            &mut writer,
            &WireMessage::JoinAck {
                worker,
                epoch,
                peers,
                strategy,
            },
        )
        .map_err(TransportError::from)?;
        let idx = worker.index();
        if idx >= self.writers.len() {
            self.writers.resize_with(idx + 1, || None);
        }
        self.writers[idx] = Some(writer);
        let inbox_tx = self.inbox_tx.clone();
        std::thread::Builder::new()
            .name(format!("c9-coord-reader-{worker}"))
            .spawn(move || coordinator_conn_reader(stream, worker, &inbox_tx))
            .map_err(TransportError::from)?;
        Ok(())
    }

    fn send_start(&mut self, destination: WorkerId, spec: RunSpec) -> Result<(), TransportError> {
        let writer = self
            .writers
            .get_mut(destination.index())
            .and_then(Option::as_mut)
            .ok_or(TransportError::Disconnected)?;
        write_frame(writer, &WireMessage::Start(Box::new(spec))).map_err(TransportError::from)
    }
}

/// The TCP transport.
///
/// Two modes:
///
/// * [`TcpTransport::loopback`] hosts all N worker endpoints in the current
///   process, connected to the coordinator over real localhost sockets —
///   every byte crosses the kernel's TCP stack. Used by tests and the
///   transport benchmark, and by `Cluster::run_with_transport`.
/// * [`TcpTransport::connect`] dials already-running `c9-worker` daemons;
///   the returned endpoint set has no local workers.
pub struct TcpTransport {
    mode: TcpMode,
}

enum TcpMode {
    Loopback,
    Connect {
        addrs: Vec<String>,
        timeout: Duration,
    },
}

impl TcpTransport {
    /// All workers hosted in-process, joined over localhost TCP.
    pub fn loopback() -> TcpTransport {
        TcpTransport {
            mode: TcpMode::Loopback,
        }
    }

    /// Connect to remote worker daemons at `addrs`.
    pub fn connect(addrs: Vec<String>, timeout: Duration) -> TcpTransport {
        TcpTransport {
            mode: TcpMode::Connect { addrs, timeout },
        }
    }
}

impl Transport for TcpTransport {
    type WorkerEnd = TcpWorkerEndpoint;
    type CoordinatorEnd = TcpCoordinatorEndpoint;

    fn establish(
        self,
        num_workers: usize,
    ) -> Result<Endpoints<TcpCoordinatorEndpoint, TcpWorkerEndpoint>, TransportError> {
        match self.mode {
            TcpMode::Loopback => {
                let n = num_workers.max(1);
                let mut hosts = Vec::with_capacity(n);
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let host = TcpWorkerHost::bind("127.0.0.1:0").map_err(TransportError::from)?;
                    addrs.push(host.local_addr().to_string());
                    hosts.push(host);
                }
                let coordinator = TcpCoordinatorEndpoint::connect(&addrs, Duration::from_secs(10))?;
                let mut workers = Vec::with_capacity(n);
                for host in hosts {
                    let endpoint = host
                        .accept_coordinator(Duration::from_secs(10))
                        .ok_or(TransportError::Disconnected)?;
                    workers.push(endpoint);
                }
                Ok(Endpoints {
                    coordinator,
                    workers,
                })
            }
            TcpMode::Connect { addrs, timeout } => {
                if addrs.len() != num_workers {
                    return Err(TransportError::Io(format!(
                        "worker list has {} entries but the cluster needs {num_workers}",
                        addrs.len()
                    )));
                }
                let coordinator = TcpCoordinatorEndpoint::connect(&addrs, timeout)?;
                Ok(Endpoints {
                    coordinator,
                    workers: Vec::new(),
                })
            }
        }
    }
}
