//! The TCP transport: a cluster of OS processes on a network.
//!
//! This is the paper's deployment (§3.3): every worker is a process hosting
//! one symbolic execution engine, listening on a socket; the coordinator
//! process runs the load balancer, dials every worker, and drives the run.
//! Job batches travel directly between workers over lazily-dialed peer
//! connections — the coordinator only ever sees queue lengths and coverage
//! bit vectors, exactly as in the paper.
//!
//! Framing is length-prefixed bincode (see [`crate::frame`]). Accept loops
//! are reconnect-aware: a worker keeps accepting connections for its whole
//! lifetime, a new coordinator connection replaces the previous one, and a
//! failed peer connection is re-dialed on the next send.

use crate::frame::{read_frame, write_frame};
use crate::message::{Control, FinalReport, JobBatch, RunSpec, StatusReport, WireMessage};
use crate::transport::{CoordinatorEndpoint, Endpoints, Transport, TransportError, WorkerEndpoint};
use crate::WorkerId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events surfaced by a worker's accept loop.
enum HostEvent {
    /// A coordinator introduced itself on a fresh connection.
    Hello {
        worker: WorkerId,
        num_workers: u32,
        peers: Vec<String>,
        writer: TcpStream,
    },
    /// The coordinator started a run.
    Start(Box<RunSpec>),
    /// A control message for the current run.
    Control(Control),
    /// A job batch from a peer worker.
    Jobs(JobBatch),
}

/// Stops the accept loop (releasing the listener's port and thread) when
/// the owning host or endpoint is dropped.
struct ListenerGuard {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl Drop for ListenerGuard {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A worker-side listener: accepts coordinator and peer connections and
/// demultiplexes their frames into one event queue.
pub struct TcpWorkerHost {
    local_addr: SocketAddr,
    events_rx: Receiver<HostEvent>,
    guard: ListenerGuard,
}

impl TcpWorkerHost {
    /// Binds the worker listener and starts the accept loop.
    pub fn bind(addr: &str) -> io::Result<TcpWorkerHost> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (events_tx, events_rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = shutdown.clone();
        std::thread::Builder::new()
            .name(format!("c9-accept-{local_addr}"))
            .spawn(move || accept_loop(&listener, &events_tx, &accept_shutdown))?;
        Ok(TcpWorkerHost {
            local_addr,
            events_rx,
            guard: ListenerGuard {
                addr: local_addr,
                shutdown,
            },
        })
    }

    /// The address the listener is bound to (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Waits for a coordinator to connect and introduce itself, returning
    /// the worker endpoint for the session. Control or job frames that race
    /// ahead of the hello are preserved for the endpoint.
    pub fn accept_coordinator(self, timeout: Duration) -> Option<TcpWorkerEndpoint> {
        let deadline = Instant::now() + timeout;
        let mut pending_control = VecDeque::new();
        let mut pending_jobs = VecDeque::new();
        let mut pending_start = VecDeque::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(HostEvent::Hello {
                    worker,
                    num_workers,
                    peers,
                    writer,
                }) => {
                    return Some(TcpWorkerEndpoint {
                        id: worker,
                        num_workers: num_workers as usize,
                        peers,
                        peer_conns: Vec::new(),
                        coordinator: writer,
                        events_rx: self.events_rx,
                        pending_control,
                        pending_jobs,
                        pending_start,
                        epoch: 0,
                        _guard: self.guard,
                    });
                }
                Ok(HostEvent::Control(c)) => pending_control.push_back(c),
                Ok(HostEvent::Jobs(j)) => pending_jobs.push_back(j),
                Ok(HostEvent::Start(s)) => pending_start.push_back(*s),
                Err(_) => return None,
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, events_tx: &Sender<HostEvent>, shutdown: &AtomicBool) {
    // Runs until the owning endpoint is dropped: every new connection
    // (first coordinator, reconnecting coordinator, each peer) gets a
    // reader thread feeding the shared event queue.
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let events_tx = events_tx.clone();
        let _ = std::thread::Builder::new()
            .name("c9-conn-reader".into())
            .spawn(move || worker_conn_reader(stream, &events_tx));
    }
}

fn worker_conn_reader(mut stream: TcpStream, events_tx: &Sender<HostEvent>) {
    loop {
        let msg: WireMessage = match read_frame(&mut stream) {
            Ok(msg) => msg,
            Err(_) => return, // peer closed or sent garbage; drop the connection
        };
        let event = match msg {
            WireMessage::CoordinatorHello {
                worker,
                num_workers,
                peers,
            } => {
                let Ok(writer) = stream.try_clone() else {
                    return;
                };
                HostEvent::Hello {
                    worker,
                    num_workers,
                    peers,
                    writer,
                }
            }
            WireMessage::Start(spec) => HostEvent::Start(spec),
            WireMessage::Control(c) => HostEvent::Control(c),
            WireMessage::Jobs(j) => HostEvent::Jobs(j),
            // Status/Final frames are coordinator-bound; a worker receiving
            // one indicates a confused peer. Ignore.
            WireMessage::Status(_) | WireMessage::Final(_) => continue,
        };
        if events_tx.send(event).is_err() {
            return;
        }
    }
}

/// Worker endpoint over TCP.
pub struct TcpWorkerEndpoint {
    id: WorkerId,
    num_workers: usize,
    peers: Vec<String>,
    peer_conns: Vec<Option<TcpStream>>,
    coordinator: TcpStream,
    events_rx: Receiver<HostEvent>,
    pending_control: VecDeque<Control>,
    pending_jobs: VecDeque<JobBatch>,
    pending_start: VecDeque<RunSpec>,
    epoch: u64,
    _guard: ListenerGuard,
}

impl TcpWorkerEndpoint {
    /// Number of workers in the cluster, as announced by the coordinator.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Waits for the coordinator to begin a run.
    pub fn wait_start(&mut self, timeout: Duration) -> Option<RunSpec> {
        if let Some(spec) = self.pending_start.pop_front() {
            return Some(self.begin_run(spec));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.events_rx.recv_timeout(deadline - now) {
                Ok(event) => {
                    self.dispatch(event);
                    if let Some(spec) = self.pending_start.pop_front() {
                        return Some(self.begin_run(spec));
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Fences a new run off from the previous one: control frames queued
    /// before this run's `Start` are from an earlier run (the coordinator
    /// connection is FIFO), and job batches are filtered by epoch in
    /// [`WorkerEndpoint::try_recv_jobs`].
    fn begin_run(&mut self, spec: RunSpec) -> RunSpec {
        self.epoch = spec.epoch;
        self.pending_control.clear();
        spec
    }

    fn dispatch(&mut self, event: HostEvent) {
        match event {
            HostEvent::Hello {
                worker,
                num_workers,
                peers,
                writer,
            } => {
                // A reconnecting coordinator replaces the control channel.
                self.id = worker;
                self.num_workers = num_workers as usize;
                self.peers = peers;
                self.peer_conns.clear();
                self.coordinator = writer;
            }
            HostEvent::Start(spec) => self.pending_start.push_back(*spec),
            HostEvent::Control(c) => self.pending_control.push_back(c),
            HostEvent::Jobs(j) => self.pending_jobs.push_back(j),
        }
    }

    fn pump(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            self.dispatch(event);
        }
    }

    fn peer_stream(&mut self, destination: WorkerId) -> Result<&mut TcpStream, TransportError> {
        let idx = destination.index();
        if idx >= self.peers.len() {
            return Err(TransportError::Io(format!(
                "unknown peer {destination} (cluster has {} workers)",
                self.peers.len()
            )));
        }
        if self.peer_conns.len() < self.peers.len() {
            self.peer_conns.resize_with(self.peers.len(), || None);
        }
        if self.peer_conns[idx].is_none() {
            let stream = TcpStream::connect(&self.peers[idx])?;
            stream.set_nodelay(true).ok();
            self.peer_conns[idx] = Some(stream);
        }
        Ok(self.peer_conns[idx].as_mut().expect("peer conn present"))
    }
}

impl WorkerEndpoint for TcpWorkerEndpoint {
    fn id(&self) -> WorkerId {
        self.id
    }

    fn try_recv_control(&mut self) -> Option<Control> {
        self.pump();
        self.pending_control.pop_front()
    }

    fn try_recv_jobs(&mut self) -> Option<JobBatch> {
        self.pump();
        // Drop batches from earlier runs that were still in flight when the
        // previous session stopped.
        while let Some(batch) = self.pending_jobs.pop_front() {
            if batch.epoch == self.epoch {
                return Some(batch);
            }
        }
        None
    }

    fn send_jobs(
        &mut self,
        destination: WorkerId,
        mut batch: JobBatch,
    ) -> Result<(), TransportError> {
        batch.epoch = self.epoch;
        let msg = WireMessage::Jobs(batch);
        // One reconnect attempt: a worker daemon that restarted keeps its
        // listen address, so re-dialing usually heals the path.
        let first = {
            let stream = self.peer_stream(destination)?;
            write_frame(stream, &msg)
        };
        if first.is_ok() {
            return Ok(());
        }
        self.peer_conns[destination.index()] = None;
        let stream = self.peer_stream(destination)?;
        write_frame(stream, &msg).map_err(TransportError::from)
    }

    fn send_status(&mut self, report: StatusReport) -> Result<(), TransportError> {
        write_frame(&mut self.coordinator, &WireMessage::Status(report))
            .map_err(TransportError::from)
    }

    fn send_final(&mut self, report: FinalReport) -> Result<(), TransportError> {
        write_frame(&mut self.coordinator, &WireMessage::Final(Box::new(report)))
            .map_err(TransportError::from)
    }
}

/// Coordinator endpoint over TCP.
pub struct TcpCoordinatorEndpoint {
    writers: Vec<TcpStream>,
    inbox_rx: Receiver<(WorkerId, WireMessage)>,
    pending_status: VecDeque<StatusReport>,
    pending_finals: VecDeque<FinalReport>,
}

impl TcpCoordinatorEndpoint {
    /// Dials every worker in `addrs` (retrying each until `timeout`), sends
    /// the hello that assigns identities and the peer list, and starts the
    /// reader threads.
    pub fn connect(
        addrs: &[String],
        timeout: Duration,
    ) -> Result<TcpCoordinatorEndpoint, TransportError> {
        let deadline = Instant::now() + timeout;
        let (inbox_tx, inbox_rx) = unbounded();
        let mut writers = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let stream = dial_until(addr, deadline)?;
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().map_err(TransportError::from)?;
            write_frame(
                &mut writer,
                &WireMessage::CoordinatorHello {
                    worker: WorkerId(i as u32),
                    num_workers: addrs.len() as u32,
                    peers: addrs.to_vec(),
                },
            )
            .map_err(TransportError::from)?;
            let inbox_tx = inbox_tx.clone();
            let worker = WorkerId(i as u32);
            std::thread::Builder::new()
                .name(format!("c9-coord-reader-{worker}"))
                .spawn(move || coordinator_conn_reader(stream, worker, &inbox_tx))
                .map_err(TransportError::from)?;
            writers.push(writer);
        }
        Ok(TcpCoordinatorEndpoint {
            writers,
            inbox_rx,
            pending_status: VecDeque::new(),
            pending_finals: VecDeque::new(),
        })
    }

    /// Sends the run spec produced by `spec_for` to every worker.
    pub fn broadcast_start(
        &mut self,
        mut spec_for: impl FnMut(WorkerId) -> RunSpec,
    ) -> Result<(), TransportError> {
        for i in 0..self.writers.len() {
            let spec = spec_for(WorkerId(i as u32));
            write_frame(&mut self.writers[i], &WireMessage::Start(Box::new(spec)))
                .map_err(TransportError::from)?;
        }
        Ok(())
    }

    fn pump_one(&mut self, timeout: Duration) -> bool {
        let received = if timeout.is_zero() {
            self.inbox_rx.try_recv().ok()
        } else {
            self.inbox_rx.recv_timeout(timeout).ok()
        };
        match received {
            Some((_, WireMessage::Status(report))) => {
                self.pending_status.push_back(report);
                true
            }
            Some((_, WireMessage::Final(report))) => {
                self.pending_finals.push_back(*report);
                true
            }
            Some(_) => true, // ignore stray frames
            None => false,
        }
    }
}

fn dial_until(addr: &str, deadline: Instant) -> Result<TcpStream, TransportError> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Io(format!("dial {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn coordinator_conn_reader(
    mut stream: TcpStream,
    worker: WorkerId,
    inbox_tx: &Sender<(WorkerId, WireMessage)>,
) {
    loop {
        match read_frame::<_, WireMessage>(&mut stream) {
            Ok(msg) => {
                if inbox_tx.send((worker, msg)).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

impl CoordinatorEndpoint for TcpCoordinatorEndpoint {
    fn num_workers(&self) -> usize {
        self.writers.len()
    }

    fn send_control(&mut self, destination: WorkerId, msg: Control) -> Result<(), TransportError> {
        let writer = self
            .writers
            .get_mut(destination.index())
            .ok_or(TransportError::Disconnected)?;
        write_frame(writer, &WireMessage::Control(msg)).map_err(TransportError::from)
    }

    fn recv_status(&mut self, timeout: Duration) -> Option<StatusReport> {
        if let Some(report) = self.pending_status.pop_front() {
            return Some(report);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let step = if now >= deadline {
                Duration::ZERO
            } else {
                deadline - now
            };
            if !self.pump_one(step) {
                return None;
            }
            if let Some(report) = self.pending_status.pop_front() {
                return Some(report);
            }
            if step.is_zero() {
                return None;
            }
        }
    }

    fn recv_final(&mut self, timeout: Duration) -> Option<FinalReport> {
        if let Some(report) = self.pending_finals.pop_front() {
            return Some(report);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let step = if now >= deadline {
                Duration::ZERO
            } else {
                deadline - now
            };
            if !self.pump_one(step) {
                return None;
            }
            if let Some(report) = self.pending_finals.pop_front() {
                return Some(report);
            }
            if step.is_zero() {
                return None;
            }
        }
    }
}

/// The TCP transport.
///
/// Two modes:
///
/// * [`TcpTransport::loopback`] hosts all N worker endpoints in the current
///   process, connected to the coordinator over real localhost sockets —
///   every byte crosses the kernel's TCP stack. Used by tests and the
///   transport benchmark, and by `Cluster::run_with_transport`.
/// * [`TcpTransport::connect`] dials already-running `c9-worker` daemons;
///   the returned endpoint set has no local workers.
pub struct TcpTransport {
    mode: TcpMode,
}

enum TcpMode {
    Loopback,
    Connect {
        addrs: Vec<String>,
        timeout: Duration,
    },
}

impl TcpTransport {
    /// All workers hosted in-process, joined over localhost TCP.
    pub fn loopback() -> TcpTransport {
        TcpTransport {
            mode: TcpMode::Loopback,
        }
    }

    /// Connect to remote worker daemons at `addrs`.
    pub fn connect(addrs: Vec<String>, timeout: Duration) -> TcpTransport {
        TcpTransport {
            mode: TcpMode::Connect { addrs, timeout },
        }
    }
}

impl Transport for TcpTransport {
    type WorkerEnd = TcpWorkerEndpoint;
    type CoordinatorEnd = TcpCoordinatorEndpoint;

    fn establish(
        self,
        num_workers: usize,
    ) -> Result<Endpoints<TcpCoordinatorEndpoint, TcpWorkerEndpoint>, TransportError> {
        match self.mode {
            TcpMode::Loopback => {
                let n = num_workers.max(1);
                let mut hosts = Vec::with_capacity(n);
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let host = TcpWorkerHost::bind("127.0.0.1:0").map_err(TransportError::from)?;
                    addrs.push(host.local_addr().to_string());
                    hosts.push(host);
                }
                let coordinator = TcpCoordinatorEndpoint::connect(&addrs, Duration::from_secs(10))?;
                let mut workers = Vec::with_capacity(n);
                for host in hosts {
                    let endpoint = host
                        .accept_coordinator(Duration::from_secs(10))
                        .ok_or(TransportError::Disconnected)?;
                    workers.push(endpoint);
                }
                Ok(Endpoints {
                    coordinator,
                    workers,
                })
            }
            TcpMode::Connect { addrs, timeout } => {
                if addrs.len() != num_workers {
                    return Err(TransportError::Io(format!(
                        "worker list has {} entries but the cluster needs {num_workers}",
                        addrs.len()
                    )));
                }
                let coordinator = TcpCoordinatorEndpoint::connect(&addrs, timeout)?;
                Ok(Endpoints {
                    coordinator,
                    workers: Vec::new(),
                })
            }
        }
    }
}
