//! The transport abstraction.
//!
//! A cluster run is one coordinator (hosting the load balancer) plus N
//! workers, connected by two message flows: coordinator ⇄ worker control
//! and status, and worker → worker job batches. The [`WorkerEndpoint`] and
//! [`CoordinatorEndpoint`] traits capture exactly those flows, so the worker
//! and balancer loops in `c9-core` are written once and run unchanged over
//! in-process channels ([`InProcTransport`](crate::InProcTransport)) or TCP
//! sockets spanning OS processes ([`TcpTransport`](crate::TcpTransport)) —
//! the deployment of §3.3 of the paper.

use crate::message::{Control, FinalReport, JobBatch, PeerInfo, RunSpec, StatusReport};
use crate::{RunId, WorkerId};
use c9_vm::StrategyKind;
use std::time::Duration;

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone and will not come back (channel closed, connection
    /// refused after retries).
    Disconnected,
    /// An I/O level failure, with context.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e.to_string())
    }
}

/// A membership event surfaced to the coordinator loop by the transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemberEvent {
    /// A worker's transport sent a liveness heartbeat.
    Heartbeat {
        /// The reporting worker.
        worker: WorkerId,
        /// The reporting worker's epoch.
        epoch: u64,
    },
    /// A worker announced a graceful departure.
    Leave {
        /// The departing worker.
        worker: WorkerId,
        /// The departing worker's epoch.
        epoch: u64,
    },
}

/// A worker asking to join a running cluster. The transport holds the
/// half-open connection under `token` until the coordinator decides and
/// calls [`CoordinatorEndpoint::admit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinRequest {
    /// Opaque handle to the pending connection, consumed by `admit`.
    pub token: u64,
    /// The listen address peers should dial for job transfers.
    pub listen_addr: String,
    /// The previous incarnation to fence off, for re-joins.
    pub previous: Option<(WorkerId, u64)>,
}

/// A worker's view of the cluster: receive control and job batches, send
/// status, final results, and job batches to peers.
pub trait WorkerEndpoint: Send {
    /// This endpoint's worker identity.
    fn id(&self) -> WorkerId;

    /// Receives one pending control message together with the run it
    /// addresses ([`RunId::SERVICE`] for daemon-level control), without
    /// blocking.
    fn try_recv_control(&mut self) -> Option<(RunId, Control)>;

    /// Receives one pending job batch, without blocking. The batch carries
    /// the run it belongs to in [`JobBatch::run`]; routing (and dropping
    /// batches for runs this worker does not host) is the caller's job.
    fn try_recv_jobs(&mut self) -> Option<JobBatch>;

    /// Receives one pending run spec (a newly admitted run), without
    /// blocking. Transports that start their workers out of band never
    /// produce any.
    fn try_recv_start(&mut self) -> Option<Box<RunSpec>> {
        None
    }

    /// Ships a job batch to a peer worker.
    fn send_jobs(&mut self, destination: WorkerId, batch: JobBatch) -> Result<(), TransportError>;

    /// Reports status to the coordinator.
    fn send_status(&mut self, report: StatusReport) -> Result<(), TransportError>;

    /// Reports final results to the coordinator at shutdown.
    fn send_final(&mut self, report: FinalReport) -> Result<(), TransportError>;

    /// Applies a membership update: refreshes peer addresses and epochs,
    /// dropping any cached connection to a peer whose address or epoch
    /// changed (its old socket is dead or belongs to a fenced incarnation).
    /// Transports whose peer set cannot change ignore this.
    fn update_peers(&mut self, peers: &[PeerInfo]) {
        let _ = peers;
    }

    /// Starts (or restarts) the transport-level heartbeat to the
    /// coordinator for the current run. A no-op on transports whose workers
    /// cannot die independently of the coordinator.
    fn start_heartbeat(&mut self, interval: Duration) {
        let _ = interval;
    }
}

/// The coordinator's view of the cluster: send control to any worker,
/// receive status and final reports, and (on elastic transports) admit
/// joining workers and observe liveness events.
pub trait CoordinatorEndpoint {
    /// Number of workers this endpoint is connected to.
    fn num_workers(&self) -> usize;

    /// Sends a control message for one run ([`RunId::SERVICE`] for
    /// daemon-level control) to one worker.
    fn send_control(
        &mut self,
        destination: WorkerId,
        run: RunId,
        msg: Control,
    ) -> Result<(), TransportError>;

    /// Receives one status report, waiting up to `timeout`. Final reports
    /// arriving early are buffered internally and never returned here.
    fn recv_status(&mut self, timeout: Duration) -> Option<StatusReport>;

    /// Receives one final report, waiting up to `timeout`.
    fn recv_final(&mut self, timeout: Duration) -> Option<FinalReport>;

    /// Receives one pending membership event (heartbeat or leave), without
    /// blocking. Transports without elastic membership never produce any.
    fn try_recv_event(&mut self) -> Option<MemberEvent> {
        None
    }

    /// Receives one pending join request, without blocking. Transports
    /// without elastic membership never produce any.
    fn try_recv_join(&mut self) -> Option<JoinRequest> {
        None
    }

    /// Completes a join: sends the acknowledgement carrying the assigned
    /// identity, epoch, peer table, and portfolio strategy, and wires the
    /// connection into the coordinator's receive path.
    fn admit(
        &mut self,
        token: u64,
        worker: WorkerId,
        epoch: u64,
        peers: Vec<PeerInfo>,
        strategy: StrategyKind,
    ) -> Result<(), TransportError> {
        let _ = (token, worker, epoch, peers, strategy);
        Err(TransportError::Io(
            "transport does not support elastic membership".into(),
        ))
    }

    /// Ships a run spec to one worker (remote transports only; transports
    /// that host their workers locally start them out of band).
    fn send_start(&mut self, destination: WorkerId, spec: RunSpec) -> Result<(), TransportError> {
        let _ = (destination, spec);
        Err(TransportError::Io(
            "transport does not support remote run start".into(),
        ))
    }
}

/// The two halves of an established cluster fabric.
///
/// `workers` holds the endpoints of the workers this process hosts. For a
/// fully local transport that is all N of them; when the workers are remote
/// daemons that own their endpoints (the multi-process TCP deployment), it
/// is empty.
pub struct Endpoints<C, W> {
    /// The coordinator endpoint.
    pub coordinator: C,
    /// Endpoints of locally hosted workers (possibly empty).
    pub workers: Vec<W>,
}

/// A way of wiring up a cluster of N workers and one coordinator.
///
/// # Examples
///
/// Establish an in-process fabric and move a status report from a worker
/// endpoint to the coordinator endpoint:
///
/// ```
/// use std::time::Duration;
/// use c9_net::{
///     CoordinatorEndpoint, InProcTransport, StatusReport, Transport, WorkerEndpoint, WorkerId,
/// };
///
/// let mut fabric = InProcTransport.establish(2).expect("in-proc fabric");
/// assert_eq!(fabric.workers.len(), 2);
///
/// let report = StatusReport {
///     run: c9_net::RunId(1),
///     worker: fabric.workers[0].id(),
///     epoch: 1,
///     queue_length: 3,
///     coverage: c9_vm::CoverageSet::new(8),
///     stats: c9_net::WorkerStats::default(),
///     idle: false,
///     strategy: c9_vm::StrategyKind::default(),
///     frontier: None,
///     new_bugs: Vec::new(),
///     transfers: Vec::new(),
///     gossip: None,
/// };
/// fabric.workers[0].send_status(report).expect("send status");
/// let received = fabric
///     .coordinator
///     .recv_status(Duration::from_secs(1))
///     .expect("status arrives");
/// assert_eq!(received.worker, WorkerId(0));
/// assert_eq!(received.queue_length, 3);
/// ```
pub trait Transport {
    /// The worker-side endpoint type.
    type WorkerEnd: WorkerEndpoint + 'static;
    /// The coordinator-side endpoint type.
    type CoordinatorEnd: CoordinatorEndpoint;

    /// Establishes the fabric for `num_workers` workers.
    fn establish(
        self,
        num_workers: usize,
    ) -> Result<Endpoints<Self::CoordinatorEnd, Self::WorkerEnd>, TransportError>;
}
