//! The transport abstraction.
//!
//! A cluster run is one coordinator (hosting the load balancer) plus N
//! workers, connected by two message flows: coordinator ⇄ worker control
//! and status, and worker → worker job batches. The [`WorkerEndpoint`] and
//! [`CoordinatorEndpoint`] traits capture exactly those flows, so the worker
//! and balancer loops in `c9-core` are written once and run unchanged over
//! in-process channels ([`InProcTransport`](crate::InProcTransport)) or TCP
//! sockets spanning OS processes ([`TcpTransport`](crate::TcpTransport)) —
//! the deployment of §3.3 of the paper.

use crate::message::{Control, FinalReport, JobBatch, StatusReport};
use crate::WorkerId;
use std::time::Duration;

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone and will not come back (channel closed, connection
    /// refused after retries).
    Disconnected,
    /// An I/O level failure, with context.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e.to_string())
    }
}

/// A worker's view of the cluster: receive control and job batches, send
/// status, final results, and job batches to peers.
pub trait WorkerEndpoint: Send {
    /// This endpoint's worker identity.
    fn id(&self) -> WorkerId;

    /// Receives one pending control message, without blocking.
    fn try_recv_control(&mut self) -> Option<Control>;

    /// Receives one pending job batch, without blocking.
    fn try_recv_jobs(&mut self) -> Option<JobBatch>;

    /// Ships a job batch to a peer worker.
    fn send_jobs(&mut self, destination: WorkerId, batch: JobBatch) -> Result<(), TransportError>;

    /// Reports status to the coordinator.
    fn send_status(&mut self, report: StatusReport) -> Result<(), TransportError>;

    /// Reports final results to the coordinator at shutdown.
    fn send_final(&mut self, report: FinalReport) -> Result<(), TransportError>;
}

/// The coordinator's view of the cluster: send control to any worker,
/// receive status and final reports.
pub trait CoordinatorEndpoint {
    /// Number of workers this endpoint is connected to.
    fn num_workers(&self) -> usize;

    /// Sends a control message to one worker.
    fn send_control(&mut self, destination: WorkerId, msg: Control) -> Result<(), TransportError>;

    /// Receives one status report, waiting up to `timeout`. Final reports
    /// arriving early are buffered internally and never returned here.
    fn recv_status(&mut self, timeout: Duration) -> Option<StatusReport>;

    /// Receives one final report, waiting up to `timeout`.
    fn recv_final(&mut self, timeout: Duration) -> Option<FinalReport>;
}

/// The two halves of an established cluster fabric.
///
/// `workers` holds the endpoints of the workers this process hosts. For a
/// fully local transport that is all N of them; when the workers are remote
/// daemons that own their endpoints (the multi-process TCP deployment), it
/// is empty.
pub struct Endpoints<C, W> {
    /// The coordinator endpoint.
    pub coordinator: C,
    /// Endpoints of locally hosted workers (possibly empty).
    pub workers: Vec<W>,
}

/// A way of wiring up a cluster of N workers and one coordinator.
pub trait Transport {
    /// The worker-side endpoint type.
    type WorkerEnd: WorkerEndpoint + 'static;
    /// The coordinator-side endpoint type.
    type CoordinatorEnd: CoordinatorEndpoint;

    /// Establishes the fabric for `num_workers` workers.
    fn establish(
        self,
        num_workers: usize,
    ) -> Result<Endpoints<Self::CoordinatorEnd, Self::WorkerEnd>, TransportError>;
}
